"""Mutation-parity suite: streaming deltas vs cold recomputation.

The streaming-update contract (`Session.apply_delta`) promises that a
live session that absorbs :class:`~repro.api.GraphDelta` edits by
*repairing* its cached world batches answers every query **bit-for-bit**
identically to a cold session built directly on the post-delta graph.
This suite pins that contract property-based (random graphs x random
edit sequences x random batch shapes), across every registry estimator,
and through the store-backed tier — plus the two metamorphic laws the
keyed coin scheme makes checkable:

* raising an edge probability never shrinks any world's reached set
  (nested coin thresholds + monotone reachability);
* deleting an edge and re-inserting it at the same probability restores
  that edge's exact coin rows (identity-keyed counters).

The suite must pass under plain pytest, under ``REPRO_SANITIZE=1``, and
under an ambient ``REPRO_FAULTS`` latency profile — when the
``session.delta.apply`` seam fires, the session falls back to
evict-and-recompute, which changes cost but never answers.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

np = pytest.importorskip(
    "numpy", reason="delta repair requires the vectorized engine (numpy)"
)

from repro.api import GraphDelta, ReliabilityQuery, Session, Workload
from repro.engine import (
    batch_reach,
    batch_to_words,
    coin_base,
    compile_plan,
    repair_batch,
    sample_worlds_keyed,
)
from repro.graph import UncertainGraph
from repro.reliability import estimator_names

from strategies import batch_shapes, edit_ops, resolve_delta, small_uncertain_graphs


def _query_values(session, samples, seed, estimator="mc"):
    """Exact values of a fixed fan-out workload on the session's graph."""
    nodes = sorted(session.graph.nodes())
    queries = [
        ReliabilityQuery(
            s, targets=tuple(t for t in nodes if t != s),
            estimator=estimator, samples=samples, seed=seed,
        )
        for s in nodes[:3]
    ]
    results = session.run(Workload(queries))
    return [value for r in results for (_, _), value in r.pairs]


class TestEditSequenceParity:
    """Random edit sequences through apply_delta == cold session."""

    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        graph=small_uncertain_graphs(max_nodes=6, directed=True),
        ops_seq=st.lists(edit_ops(max_node=7, max_ops=4), min_size=1, max_size=3),
        shape=batch_shapes(max_samples=256),
    )
    def test_bit_for_bit_vs_cold_session(self, graph, ops_seq, shape):
        samples, seed = shape
        warm = Session(graph.copy(), seed=3)
        _query_values(warm, samples, seed)  # populate batch + reach caches
        for ops in ops_seq:
            delta = resolve_delta(warm.graph, ops)
            if delta.num_edits == 0:
                continue
            report = warm.apply_delta(delta)
            assert report.strategy in ("repair", "evict")
            assert report.content_hash == warm.graph.content_hash()
            _query_values(warm, samples, seed)  # keep caches warm between edits
        cold = Session(warm.graph.copy(), seed=3)
        assert _query_values(warm, samples, seed) == _query_values(
            cold, samples, seed
        )

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        graph=small_uncertain_graphs(max_nodes=5),
        ops=edit_ops(max_node=6, max_ops=5),
    )
    def test_undirected_graphs_repair_exactly(self, graph, ops):
        delta = resolve_delta(graph, ops)
        if delta.num_edits == 0:
            return
        warm = Session(graph.copy(), seed=9)
        _query_values(warm, 192, 21)
        warm.apply_delta(delta)
        cold = Session(warm.graph.copy(), seed=9)
        assert _query_values(warm, 192, 21) == _query_values(cold, 192, 21)


class TestEstimatorParity:
    """The parity contract holds for every registered estimator."""

    @pytest.mark.filterwarnings(
        "ignore:estimator 'adaptive':UserWarning"
    )
    @pytest.mark.parametrize("estimator", estimator_names())
    def test_registry_estimator(self, estimator):
        graph = UncertainGraph.from_edges(
            [(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3), (2, 3, 0.6), (1, 3, 0.4)]
        )
        warm = Session(graph.copy(), seed=5)
        _query_values(warm, 128, 17, estimator=estimator)
        warm.apply_delta(GraphDelta(
            upserts=((0, 1, 0.95), (3, 4, 0.5)), deletes=((0, 2),)
        ))
        cold = Session(warm.graph.copy(), seed=5)
        assert _query_values(warm, 128, 17, estimator=estimator) == \
            _query_values(cold, 128, 17, estimator=estimator)


class TestStoreTierParity:
    """Repaired batches are rekeyed under the new content hash on disk."""

    def test_persist_back_and_warm_restart(self, tmp_path):
        from repro.index import IndexStore

        graph = UncertainGraph.from_edges(
            [(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3), (2, 3, 0.6)]
        )
        store = IndexStore(tmp_path / "idx")
        warm = Session(graph.copy(), seed=7, store=store)
        _query_values(warm, 256, 11)
        report = warm.apply_delta(GraphDelta(
            upserts=((1, 2, 0.9),), deletes=((0, 2),)
        ))
        assert report.strategy == "repair"
        assert report.repaired_batches >= 1
        assert report.persisted_batches == report.repaired_batches
        warm_values = _query_values(warm, 256, 11)
        final = warm.graph.copy()
        store.close()

        # A fresh session over the same store must find the repaired
        # batch filed under the *new* content hash and answer
        # identically ...
        restarted_store = IndexStore(tmp_path / "idx")
        assert any(
            row["graph_hash"] == final.content_hash()
            for row in restarted_store.list_batches()
        )
        restarted = Session(final.copy(), seed=7, store=restarted_store)
        restarted_values = _query_values(restarted, 256, 11)
        # A query no persisted *result* answers must load the repaired
        # batch from disk rather than resampling.
        fresh_query = [
            Session.run(restarted, Workload([ReliabilityQuery(
                3, targets=(0, 1, 2), samples=256, seed=11,
            )]))[0].pairs
        ]
        assert restarted_store.stats().counters.batch_hits >= 1
        restarted_store.close()
        # ... and to what a storeless cold session computes.
        cold = Session(final.copy(), seed=7)
        assert warm_values == restarted_values == _query_values(cold, 256, 11)
        assert fresh_query == [
            cold.run(Workload([ReliabilityQuery(
                3, targets=(0, 1, 2), samples=256, seed=11,
            )]))[0].pairs
        ]


class TestMetamorphic:
    """Structural laws of the identity-keyed coin scheme."""

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        graph=small_uncertain_graphs(max_nodes=6, directed=True),
        shape=batch_shapes(max_samples=192),
        raised=st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def test_raising_probability_never_shrinks_world_reach(
        self, graph, shape, raised, pick
    ):
        edges = list(graph.edges())
        if not edges:
            return
        samples, seed = shape
        u, v, p = edges[pick % len(edges)]
        new_p = max(p, raised)  # monotone-increasing edit by construction
        plan_old = compile_plan(graph)
        base = coin_base(np.random.default_rng(seed))
        batch_old = sample_worlds_keyed(plan_old, samples, base)
        bumped = graph.copy()
        bumped.set_probability(u, v, new_p)
        plan_new = compile_plan(bumped)
        batch_new, changes = repair_batch(plan_new, plan_old, batch_old, base)
        for change in changes:
            assert not change.removed.any()  # raised p: strict coin superset
        for node in sorted(graph.nodes()):
            reach_old = batch_reach(plan_old, batch_old,
                                    [plan_old.node_index(node)])
            reach_new = batch_reach(plan_new, batch_new,
                                    [plan_new.node_index(node)])
            assert not np.any(reach_old & ~reach_new)

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    @given(
        graph=small_uncertain_graphs(max_nodes=6),
        shape=batch_shapes(max_samples=192),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def test_delete_then_reinsert_restores_exact_coin_rows(
        self, graph, shape, pick
    ):
        edges = list(graph.edges())
        if not edges:
            return
        samples, seed = shape
        u, v, p = edges[pick % len(edges)]
        session = Session(graph.copy(), seed=13)
        _query_values(session, samples, seed)
        original = {
            key: batch_to_words(batch).copy()
            for key, (batch, _) in session._worlds.items()
        }
        session.apply_delta(GraphDelta(deletes=((u, v),)))
        session.apply_delta(GraphDelta(upserts=((u, v, p),)))
        assert session.graph.content_hash() == graph.content_hash()
        for key, words in original.items():
            cached = session._worlds.get(key)
            if cached is None:
                continue  # eviction fallback (e.g. fault seam fired)
            assert np.array_equal(batch_to_words(cached[0]), words)
