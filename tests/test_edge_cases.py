"""Cross-cutting edge cases and failure-injection tests."""

import pytest

from repro.graph import (
    UncertainGraph,
    assign_fixed,
    erdos_renyi,
    fixed_new_edge_probability,
    path_graph,
    powerlaw_cluster,
)
from repro.reliability import (
    BFSSharingIndex,
    ExactEstimator,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
)
from repro.core import (
    MultiSourceTargetMaximizer,
    ReliabilityMaximizer,
    eliminate_search_space,
    select_top_l_paths,
)
from repro.paths import most_reliable_path, top_l_most_reliable_paths


class TestDisconnectedQueries:
    """The solver must behave sensibly when s and t share no component."""

    @pytest.fixture
    def split_graph(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.8)
        g.add_edge(1, 2, 0.8)
        g.add_edge(10, 11, 0.8)
        g.add_edge(11, 12, 0.8)
        return g

    def test_be_bridges_components(self, split_graph):
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), r=6, l=5, evaluation_samples=2000
        )
        solution = solver.maximize(split_graph, 0, 12, k=1, zeta=0.9)
        assert solution.base_reliability == 0.0
        assert solution.new_reliability > 0.3
        # The single new edge must cross the component boundary.
        (u, v, _), = solution.edges
        assert (u < 10) != (v < 10)

    def test_mrp_method_bridges_too(self, split_graph):
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), r=6, l=5, evaluation_samples=2000
        )
        solution = solver.maximize(split_graph, 0, 12, k=2, zeta=0.9,
                                   method="mrp")
        assert solution.new_reliability > 0.0


class TestDegenerateGraphs:
    def test_two_isolated_nodes(self):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), r=4, l=3, evaluation_samples=500
        )
        solution = solver.maximize(g, 0, 1, k=1, zeta=0.7)
        assert [(u, v) for u, v, _ in solution.edges] == [(0, 1)]
        assert solution.new_reliability == pytest.approx(0.7, abs=0.05)

    def test_complete_graph_has_no_candidates(self):
        g = UncertainGraph()
        for u in range(4):
            for v in range(u + 1, 4):
                g.add_edge(u, v, 0.5)
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), r=4, l=5, evaluation_samples=500
        )
        solution = solver.maximize(g, 0, 3, k=2, zeta=0.9)
        assert solution.edges == []
        assert solution.gain == pytest.approx(0.0, abs=0.05)

    def test_all_zero_probability_graph(self):
        g = path_graph(4)
        assign_fixed(g, 0.0)
        assert MonteCarloEstimator(100, seed=0).reliability(g, 0, 3) == 0.0
        path, prob = most_reliable_path(g, 0, 3)
        assert path is None

    def test_probability_one_graph(self):
        g = path_graph(4)
        assign_fixed(g, 1.0)
        assert RecursiveStratifiedSampler(50, seed=0).reliability(g, 0, 3) == 1.0


class TestEliminationEdgeCases:
    def test_r_of_one_keeps_anchors(self):
        g = path_graph(5)
        assign_fixed(g, 0.5)
        space = eliminate_search_space(
            g, 0, 4, r=1,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        assert space.source_side == [0]
        assert space.target_side == [4]
        assert [(u, v) for u, v, _ in space.edges] == [(0, 4)]

    def test_r_larger_than_graph(self):
        g = path_graph(4)
        assign_fixed(g, 0.5)
        space = eliminate_search_space(
            g, 0, 3, r=100,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        pairs = {(u, v) for u, v, _ in space.edges}
        assert pairs == {(0, 2), (0, 3), (1, 3)}

    def test_top_l_with_l_one(self):
        g = path_graph(5)
        assign_fixed(g, 0.5)
        path_set = select_top_l_paths(g, 0, 4, l=1, candidates=[(0, 4, 0.9)])
        assert len(path_set.paths) == 1
        assert path_set.paths[0].nodes == [0, 4]


class TestDirectedAsymmetry:
    """Directed graphs: candidates and paths must respect orientation."""

    @pytest.fixture
    def one_way(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.9)
        g.add_edge(1, 2, 0.9)
        return g

    def test_candidates_directed(self, one_way):
        space = eliminate_search_space(
            one_way, 0, 2, r=3,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        pairs = {(u, v) for u, v, _ in space.edges}
        assert (0, 2) in pairs
        # (2, 0) would not help 0 -> 2 reachability and is a different
        # candidate; it is generated only if 2 has reliability from s.
        for u, v, _ in space.edges:
            assert not one_way.has_edge(u, v)

    def test_reverse_query_needs_reverse_edges(self, one_way):
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), r=3, l=5, evaluation_samples=500
        )
        solution = solver.maximize(one_way, 2, 0, k=1, zeta=0.8)
        assert solution.base_reliability == 0.0
        assert solution.new_reliability > 0.0

    def test_bfs_sharing_directed(self, one_way):
        index = BFSSharingIndex(one_way, num_samples=4000, seed=1)
        assert index.reliability(one_way, 0, 2) == pytest.approx(0.81, abs=0.03)
        assert index.reliability(one_way, 2, 0) == 0.0


class TestMultiEdgeCases:
    def test_single_pair_multi_equals_meaningful(self):
        g = path_graph(5)
        assign_fixed(g, 0.5)
        solver = MultiSourceTargetMaximizer(
            estimator=ExactEstimator(), r=5, l=5,
            evaluation_samples=2000, k1_fraction=1.0,
        )
        solution = solver.maximize(g, [0], [4], k=2, zeta=0.8,
                                   aggregate="average")
        assert solution.gain > 0.1

    def test_overlapping_sets_skip_trivial_pairs(self):
        g = path_graph(5)
        assign_fixed(g, 0.5)
        solver = MultiSourceTargetMaximizer(
            estimator=ExactEstimator(), r=5, l=5, evaluation_samples=500,
        )
        solution = solver.maximize(g, [0, 2], [2, 4], k=1, zeta=0.8,
                                   aggregate="average")
        assert (2, 2) not in solution.pair_base


class TestGeneratorDeterminismAcrossCalls:
    def test_powerlaw_cluster_deterministic(self):
        a = powerlaw_cluster(120, m=2, triad_probability=0.5, seed=3)
        b = powerlaw_cluster(120, m=2, triad_probability=0.5, seed=3)
        assert a.edge_set() == b.edge_set()

    def test_er_directed_gnp(self):
        g = erdos_renyi(40, p=0.08, seed=2, directed=True)
        assert g.directed
        assert g.num_edges > 0


class TestYenStress:
    def test_dense_graph_many_paths(self):
        g = UncertainGraph()
        for u in range(6):
            for v in range(u + 1, 6):
                g.add_edge(u, v, 0.5 + 0.01 * (u + v))
        paths = top_l_most_reliable_paths(g, 0, 5, 20)
        assert len(paths) == 20
        probs = [p for _, p in paths]
        assert probs == sorted(probs, reverse=True)
        assert len({tuple(p) for p, _ in paths}) == 20
