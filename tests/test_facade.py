"""Tests for the ReliabilityMaximizer facade."""

import pytest

from repro.graph import assign_fixed, fixed_new_edge_probability, path_graph
from repro.reliability import ExactEstimator
from repro.core import METHODS, ReliabilityMaximizer, Solution


@pytest.fixture
def chain():
    g = path_graph(6)
    assign_fixed(g, 0.5)
    return g


@pytest.fixture
def solver():
    return ReliabilityMaximizer(
        estimator=ExactEstimator(),
        evaluation_samples=2000,
        r=4,
        l=5,
    )


class TestMaximize:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_runs(self, solver, chain, method):
        if method == "exact":
            pytest.skip("covered separately with a bounded space")
        solution = solver.maximize(chain, 0, 5, k=2, zeta=0.5, method=method)
        assert isinstance(solution, Solution)
        assert len(solution.edges) <= 2
        assert 0.0 <= solution.base_reliability <= 1.0
        assert 0.0 <= solution.new_reliability <= 1.0

    def test_be_gain_positive_on_chain(self, solver, chain):
        solution = solver.maximize(chain, 0, 5, k=2, zeta=0.5, method="be")
        assert solution.gain > 0.1  # direct/2-hop shortcuts dwarf 0.5^5

    def test_exact_method_with_small_space(self, chain):
        solver = ReliabilityMaximizer(estimator=ExactEstimator(), r=3, l=5)
        solution = solver.maximize(chain, 0, 5, k=1, zeta=0.5, method="exact")
        assert len(solution.edges) == 1

    def test_unknown_method(self, solver, chain):
        with pytest.raises(ValueError, match="unknown method"):
            solver.maximize(chain, 0, 5, k=2, method="magic")

    def test_invalid_k(self, solver, chain):
        with pytest.raises(ValueError):
            solver.maximize(chain, 0, 5, k=0)

    def test_candidate_space_reuse(self, solver, chain):
        space = solver.candidates(
            chain, 0, 5, fixed_new_edge_probability(0.5)
        )
        a = solver.maximize(
            chain, 0, 5, k=2, method="be", candidate_space=space
        )
        b = solver.maximize(
            chain, 0, 5, k=2, method="be", candidate_space=space
        )
        assert {(u, v) for u, v, _ in a.edges} == {(u, v) for u, v, _ in b.edges}

    def test_no_elimination_uses_all_missing(self, chain):
        solver = ReliabilityMaximizer(estimator=ExactEstimator(), r=2, l=5)
        eliminated = solver.maximize(chain, 0, 5, k=1, method="be")
        full = solver.maximize(chain, 0, 5, k=1, method="be", eliminate=False)
        assert full.num_candidates >= eliminated.num_candidates

    def test_h_constraint_respected(self):
        g = path_graph(8)
        assign_fixed(g, 0.5)
        solver = ReliabilityMaximizer(estimator=ExactEstimator(), r=8, l=5, h=3)
        solution = solver.maximize(g, 0, 7, k=2, zeta=0.9, method="be")
        for u, v, _ in solution.edges:
            assert abs(u - v) <= 3

    def test_timings_recorded(self, solver, chain):
        solution = solver.maximize(chain, 0, 5, k=2, method="be")
        assert solution.selection_seconds > 0
        assert solution.elimination_seconds >= 0

    def test_observation4_direct_edge_selected(self, solver, chain):
        """The direct s-t edge is in BE's solution when addable (Obs. 4)."""
        solution = solver.maximize(chain, 0, 5, k=2, zeta=0.5, method="be")
        assert (0, 5) in {(u, v) for u, v, _ in solution.edges}

    def test_custom_new_edge_probabilities(self, solver, chain):
        from repro.graph import uniform_new_edge_probability

        model = uniform_new_edge_probability(0.3, 0.7, seed=5)
        solution = solver.maximize(
            chain, 0, 5, k=2, method="be", new_edge_prob=model
        )
        for u, v, p in solution.edges:
            assert p == model(u, v)


class TestSolutionDataclass:
    def test_gain_property(self):
        s = Solution(
            method="be", edges=[], base_reliability=0.2, new_reliability=0.5
        )
        assert s.gain == pytest.approx(0.3)

    def test_total_seconds(self):
        s = Solution(
            method="be", edges=[], base_reliability=0, new_reliability=0,
            elimination_seconds=1.0, selection_seconds=2.0,
        )
        assert s.total_seconds == pytest.approx(3.0)
