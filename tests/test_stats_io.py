"""Tests for graph statistics (Table 8 columns) and edge-list IO."""


import pytest

from repro.graph import (
    UncertainGraph,
    approximate_diameter,
    average_shortest_path_length,
    clustering_coefficient,
    path_graph,
    probability_summary,
    read_edge_list,
    summarize,
    write_edge_list,
)


class TestStats:
    def test_probability_summary(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.2)
        g.add_edge(1, 2, 0.4)
        g.add_edge(2, 3, 0.6)
        mean, std, quartiles = probability_summary(g)
        assert mean == pytest.approx(0.4)
        assert quartiles[1] == pytest.approx(0.4)

    def test_probability_summary_empty(self):
        g = UncertainGraph()
        mean, std, quartiles = probability_summary(g)
        assert mean == 0.0 and std == 0.0

    def test_average_shortest_path_on_path_graph(self):
        g = path_graph(5)
        # Exact mean over all ordered reachable pairs of P5 is 2.0.
        assert average_shortest_path_length(g, num_sources=5) == pytest.approx(2.0)

    def test_diameter_path_graph(self):
        g = path_graph(10)
        assert approximate_diameter(g) == 9

    def test_clustering_triangle(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.5)
        g.add_edge(0, 2, 0.5)
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_clustering_star_is_zero(self):
        g = UncertainGraph()
        for leaf in range(1, 5):
            g.add_edge(0, leaf, 0.5)
        assert clustering_coefficient(g) == 0.0

    def test_summarize_row(self):
        g = path_graph(4)
        summary = summarize(g)
        assert summary.num_nodes == 4
        assert summary.num_edges == 3
        assert summary.longest_shortest_path == 3
        row = summary.row()
        assert row[1] == "4"
        assert "Undirected" in row


class TestIO:
    def test_roundtrip_undirected(self, tmp_path, diamond):
        path = tmp_path / "g.edges"
        write_edge_list(diamond, path)
        loaded = read_edge_list(path)
        assert loaded.directed == diamond.directed
        assert loaded.edge_set() == diamond.edge_set()
        for u, v, p in diamond.edges():
            assert loaded.probability(u, v) == pytest.approx(p)

    def test_roundtrip_directed(self, tmp_path, directed_diamond):
        path = tmp_path / "g.edges"
        directed_diamond.name = "dd"
        write_edge_list(directed_diamond, path)
        loaded = read_edge_list(path)
        assert loaded.directed
        assert loaded.name == "dd"
        assert loaded.edge_set() == directed_diamond.edge_set()

    def test_roundtrip_isolated_nodes(self, tmp_path):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(9)
        path = tmp_path / "g.edges"
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.has_node(9)
        assert loaded.num_nodes == 3

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# a comment\n\n0 1 0.25\n")
        loaded = read_edge_list(path)
        assert loaded.probability(0, 1) == 0.25
