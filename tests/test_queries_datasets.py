"""Tests for query workloads and dataset builders."""

import math

import pytest

from repro import datasets
from repro.datasets import intel_lab
from repro.graph import UncertainGraph, path_graph
from repro.queries import (
    pairs_at_exact_distance,
    sample_multi_sets,
    sample_st_pair,
    sample_st_pairs,
)


@pytest.fixture(scope="module")
def lastfm():
    return datasets.load("lastfm", num_nodes=300, seed=1)


class TestQueries:
    def test_hop_range_respected(self, lastfm):
        pairs = sample_st_pairs(lastfm, 10, seed=2)
        for s, t in pairs:
            d = lastfm.hop_distances(s, max_hops=5).get(t)
            assert d is not None and 3 <= d <= 5

    def test_deterministic(self, lastfm):
        assert sample_st_pairs(lastfm, 5, seed=3) == sample_st_pairs(
            lastfm, 5, seed=3
        )

    def test_distinct_pairs(self, lastfm):
        pairs = sample_st_pairs(lastfm, 20, seed=4)
        assert len(set(pairs)) == 20

    def test_exact_distance(self, lastfm):
        pairs = pairs_at_exact_distance(lastfm, 4, 5, seed=5)
        for s, t in pairs:
            assert lastfm.hop_distances(s, max_hops=4).get(t) == 4

    def test_too_small_graph_raises(self):
        g = UncertainGraph()
        g.add_node(0)
        import random

        with pytest.raises(ValueError):
            sample_st_pair(g, random.Random(0))

    def test_impossible_distance_raises(self):
        g = path_graph(3)
        with pytest.raises(RuntimeError):
            pairs_at_exact_distance(g, 10, 1, seed=0)

    def test_multi_sets_disjoint(self, lastfm):
        sources, targets = sample_multi_sets(lastfm, 5, seed=6)
        assert len(sources) == 5 and len(targets) == 5
        assert not set(sources) & set(targets)

    def test_multi_sets_deterministic(self, lastfm):
        assert sample_multi_sets(lastfm, 3, seed=7) == sample_multi_sets(
            lastfm, 3, seed=7
        )


class TestRegistry:
    def test_all_names_build(self):
        for name in datasets.names():
            graph = datasets.load(name, num_nodes=120, seed=0)
            assert graph.num_nodes > 0
            assert graph.num_edges > 0
            for _, _, p in graph.edges():
                assert 0.0 < p <= 1.0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            datasets.load("facebook")

    def test_cache_shares_instances(self):
        a = datasets.load("dblp", num_nodes=150, seed=0)
        b = datasets.load("dblp", num_nodes=150, seed=0)
        assert a is b

    def test_copy_flag(self):
        a = datasets.load("dblp", num_nodes=150, seed=0)
        b = datasets.load("dblp", num_nodes=150, seed=0, copy=True)
        assert a is not b
        assert a.edge_set() == b.edge_set()

    def test_real_and_synthetic_listed(self):
        assert set(datasets.REAL_DATASETS) <= set(datasets.names())
        assert set(datasets.SYNTHETIC_DATASETS) <= set(datasets.names())

    def test_directedness_matches_table8(self):
        assert datasets.load("intel-lab").directed
        assert datasets.load("as-topology", num_nodes=150).directed
        assert not datasets.load("lastfm", num_nodes=150).directed
        assert not datasets.load("twitter", num_nodes=150).directed


class TestIntelLab:
    def test_54_sensors(self):
        graph = intel_lab.build()
        assert graph.num_nodes == 54
        assert graph.directed

    def test_positions_inside_lab(self):
        for x, y in intel_lab.sensor_positions().values():
            assert -2 <= x <= intel_lab.LAB_WIDTH + 2
            assert -2 <= y <= intel_lab.LAB_HEIGHT + 2

    def test_links_respect_cutoff(self):
        graph = intel_lab.build()
        positions = intel_lab.sensor_positions()
        for u, v, p in graph.edges():
            (x1, y1), (x2, y2) = positions[u], positions[v]
            assert math.hypot(x1 - x2, y1 - y2) <= intel_lab.LINK_CUTOFF
            assert p >= intel_lab.MIN_PROBABILITY

    def test_candidate_links_within_15m(self):
        graph = intel_lab.build()
        positions = intel_lab.sensor_positions()
        for u, v in intel_lab.candidate_links(graph, positions):
            (x1, y1), (x2, y2) = positions[u], positions[v]
            assert math.hypot(x1 - x2, y1 - y2) <= intel_lab.NEW_LINK_CUTOFF
            assert not graph.has_edge(u, v)

    def test_average_probability_near_paper(self):
        graph = intel_lab.build()
        avg = intel_lab.average_link_probability(graph)
        # Paper reports 0.33 for links with p >= 0.1.
        assert 0.2 <= avg <= 0.5

    def test_connected_with_weak_cross_lab_pairs(self):
        """The case study needs a connected net with improvable pairs."""
        graph = intel_lab.build()
        assert len(graph.connected_components()) == 1
        from repro.reliability import MonteCarloEstimator

        estimator = MonteCarloEstimator(400, seed=1)
        reach = estimator.reachability_from(graph, 15)
        # At least one cross-lab sensor is hard to reach: room to improve.
        far_values = [reach.get(v, 0.0) for v in range(38, 47)]
        assert min(far_values) < 0.9
