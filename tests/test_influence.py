"""Tests for the independent-cascade influence application."""

import random

import pytest

from repro.graph import UncertainGraph, assign_fixed, path_graph
from repro.reliability import exact_reliability
from repro.influence import (
    cascade_steps,
    influence_spread,
    maximize_targeted_influence,
    simulate_cascade,
)


@pytest.fixture
def funnel():
    """Sources 0,1 feed into 2; 2 reaches targets 3,4."""
    g = UncertainGraph(directed=True)
    g.add_edge(0, 2, 0.8)
    g.add_edge(1, 2, 0.8)
    g.add_edge(2, 3, 0.5)
    g.add_edge(2, 4, 0.5)
    return g


class TestCascade:
    def test_seeds_always_active(self, funnel):
        active = simulate_cascade(funnel, [0, 1], random.Random(0))
        assert {0, 1} <= active

    def test_certain_edges_propagate(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        active = simulate_cascade(g, [0], random.Random(0))
        assert active == {0, 1, 2}

    def test_zero_edges_block(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.0)
        active = simulate_cascade(g, [0], random.Random(0))
        assert active == {0}

    def test_extra_edges_participate(self):
        g = UncertainGraph(directed=True)
        g.add_node(0)
        g.add_node(1)
        active = simulate_cascade(
            g, [0], random.Random(0), extra_edges=[(0, 1, 1.0)]
        )
        assert active == {0, 1}

    def test_cascade_steps_rounds(self):
        g = path_graph(4)
        assign_fixed(g, 1.0)
        rounds = cascade_steps(g, [0], random.Random(0))
        assert rounds == [{0}, {1}, {2}, {3}]

    def test_missing_seed_ignored(self, funnel):
        active = simulate_cascade(funnel, [99], random.Random(0))
        assert active == set()


class TestSpread:
    def test_live_edge_equivalence_single_pair(self):
        """Spread from {s} into {t} equals R(s, t) (Eq. 13 vs Eq. 2)."""
        g = UncertainGraph.from_edges(
            [(0, 1, 0.8), (1, 3, 0.5), (0, 2, 0.6), (2, 3, 0.7)]
        )
        truth = exact_reliability(g, 0, 3)
        spread = influence_spread(g, [0], [3], num_samples=20000, seed=1)
        assert spread == pytest.approx(truth, abs=0.02)

    def test_untargeted_counts_everything(self, funnel):
        total = influence_spread(funnel, [0], num_samples=2000, seed=2)
        assert total >= 1.0  # at least the seed itself

    def test_spread_additivity_over_targets(self, funnel):
        both = influence_spread(funnel, [0], [3, 4], num_samples=20000, seed=3)
        t3 = influence_spread(funnel, [0], [3], num_samples=20000, seed=3)
        t4 = influence_spread(funnel, [0], [4], num_samples=20000, seed=3)
        assert both == pytest.approx(t3 + t4, abs=0.05)

    def test_invalid_samples(self, funnel):
        with pytest.raises(ValueError):
            influence_spread(funnel, [0], [3], num_samples=0)


class TestTargetedIM:
    def test_spread_improves(self):
        g = path_graph(6)
        assign_fixed(g, 0.3)
        solution = maximize_targeted_influence(
            g, [0], [4, 5], k=2, zeta=0.8, r=6, l=5, seed=1,
            spread_samples=3000,
        )
        assert len(solution.edges) <= 2
        assert solution.new_spread > solution.base_spread
        assert solution.gain == pytest.approx(
            solution.new_spread - solution.base_spread
        )

    def test_virtual_node_never_recommended(self):
        g = path_graph(6)
        assign_fixed(g, 0.3)
        solution = maximize_targeted_influence(
            g, [0, 1], [4, 5], k=2, zeta=0.8, r=6, l=5, seed=2,
            spread_samples=500,
        )
        real_nodes = set(g.nodes())
        for u, v, _ in solution.edges:
            assert u in real_nodes and v in real_nodes

    def test_invalid_k(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            maximize_targeted_influence(g, [0], [3], k=0)
