"""Store degradation and the circuit breaker, driven by the fault registry.

PR 6 defined the degradation contract (reads degrade to misses, writes
are dropped, ``save_failures`` counts the losses); these tests exercise
it through the seeded fault seams instead of monkeypatching, and pin
the breaker ladder on top: consecutive failures open it, open means
the store is not touched at all, a half-open probe closes it again.
"""

import pytest

from repro import faults
from repro.api import Session, Workload
from repro.graph import assign_uniform, erdos_renyi
from repro.index import CircuitBreaker, IndexStore


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def graph():
    g = erdos_renyi(40, num_edges=100, seed=5)
    return assign_uniform(g, 0.2, 0.8, seed=6)


@pytest.fixture
def store(tmp_path):
    with IndexStore(tmp_path / "store") as s:
        yield s


WORKLOAD_PAIRS = [(0, 39), (1, 38), (2, 37)]


def run_values(session):
    results = session.run(Workload.reliability(WORKLOAD_PAIRS, samples=400))
    return [r.values[0] for r in results]


class FakeClock:
    """Deterministic monotonic clock for driving breaker timeouts."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# degradation through the seams
# ----------------------------------------------------------------------

class TestSeamDegradation:
    def test_store_level_faults_degrade_to_fresh_sampling(self, graph, store):
        clean = run_values(Session(graph, seed=7))
        session = Session(graph, seed=7, store=store)
        with faults.inject("store.*", exclusive=True):
            values = run_values(session)
            fired = faults.fires()  # counters roll back when the block exits
        assert values == clean  # bit-for-bit despite a dead store
        assert store.counters.save_failures > 0
        assert fired > 0

    def test_session_wrapper_seams_cover_all_four_paths(self, graph, store):
        clean = run_values(Session(graph, seed=7))
        session = Session(graph, seed=7, store=store)
        with faults.inject("session.store.*", exclusive=True):
            values = run_values(session)
            report = faults.seam_report()
        assert values == clean
        # One run touches result-cache read, batch load, batch save and
        # result-cache write-back, in that order.
        assert set(report) == {
            "session.store.get_results",
            "session.store.load_batch",
            "session.store.save_batch",
            "session.store.put_results",
        }

    def test_catalog_seam_degrades_result_cache(self, graph, store):
        session = Session(graph, seed=7, store=store)
        clean = run_values(Session(graph, seed=7))
        with faults.inject("store.catalog", exclusive=True):
            assert run_values(session) == clean
        assert store.counters.save_failures > 0
        # Disarmed again, the store works and the cache fills.
        fresh = Session(graph, seed=7, store=store)
        assert run_values(fresh) == clean
        assert store.counters.result_stores > 0

    def test_read_degrades_to_miss_then_heals(self, graph, store):
        warm = Session(graph, seed=7, store=store)
        baseline = run_values(warm)
        hits_before = store.counters.result_hits
        # A flaky read is a miss: the session recomputes and still
        # answers correctly.
        degraded = Session(graph, seed=7, store=store)
        with faults.inject("session.store.get_results", exclusive=True):
            assert run_values(degraded) == baseline
        assert store.counters.result_hits == hits_before
        # Registry disarmed: the next session reads the cache again.
        healed = Session(graph, seed=7, store=store)
        assert run_values(healed) == baseline
        assert store.counters.result_hits > hits_before


# ----------------------------------------------------------------------
# breaker unit ladder
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=1.0,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats()["opens"] == 1
        assert breaker.stats()["skips"] == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)
        assert not breaker.allow()  # still inside the reset window
        clock.advance(0.6)
        assert breaker.allow()      # the half-open probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_doubles_backoff_up_to_cap(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 max_reset_timeout_s=3.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()    # probe fails: reopen, timeout 2.0
        assert breaker.state == "open"
        assert breaker.stats()["reset_timeout_s"] == 2.0
        clock.advance(1.1)
        assert not breaker.allow()  # 1.1 < 2.0: still open
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()    # capped at 3.0, not 4.0
        assert breaker.stats()["reset_timeout_s"] == 3.0
        # Success resets the backoff to the base timeout.
        clock.advance(3.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.stats()["reset_timeout_s"] == 1.0

    def test_half_open_race_admits_exactly_one_probe(self):
        """Two concurrent callers at backoff expiry: one probe, one skip.

        The open→half-open transition and the probe admission happen
        under one lock acquisition, so however many threads race
        ``allow()`` the moment the reset window expires, exactly one
        may touch the store; the rest are rejected open until the
        probe reports back.
        """
        import threading

        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(1.1)  # backoff expired: next allow() is the probe

        callers = 8
        barrier = threading.Barrier(callers)
        verdicts = [None] * callers

        def contend(i):
            barrier.wait()  # maximize the race window
            verdicts[i] = breaker.allow()

        threads = [threading.Thread(target=contend, args=(i,))
                   for i in range(callers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert verdicts.count(True) == 1, verdicts
        assert verdicts.count(False) == callers - 1
        assert breaker.state == "half_open"
        # The losers were counted as skips; the probe's outcome still
        # drives the state machine as usual.
        assert breaker.stats()["skips"] >= callers - 1
        breaker.record_success()
        assert breaker.state == "closed"

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout_s=0.0)


# ----------------------------------------------------------------------
# breaker integrated with the session wrappers
# ----------------------------------------------------------------------

class TestBreakerIntegration:
    def test_open_breaker_stops_touching_the_store(self, graph, store):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0,
                                 clock=clock)
        session = Session(graph, seed=7, store=store, store_breaker=breaker)
        clean = run_values(Session(graph, seed=7))
        with faults.inject("session.store.*", exclusive=True):
            assert run_values(session) == clean
            assert breaker.state == "open"
            fires_at_open = faults.fires()
            # Breaker open: further queries never reach the seams (or
            # the store behind them) yet still serve correct answers.
            assert run_values(session) == clean
            assert faults.fires() == fires_at_open
        assert breaker.stats()["skips"] > 0

    def test_half_open_probe_recovers_after_outage(self, graph, store):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0,
                                 clock=clock)
        session = Session(graph, seed=7, store=store, store_breaker=breaker)
        clean = run_values(Session(graph, seed=7))
        with faults.inject("session.store.*", exclusive=True):
            assert run_values(session) == clean
        assert breaker.state == "open"
        # Outage over (faults disarmed) but the window has not elapsed:
        # the store is still skipped.
        assert run_values(session) == clean
        assert breaker.state == "open"
        clock.advance(1.5)
        # The next store call is the probe; it succeeds and closes.
        assert run_values(session) == clean
        assert breaker.state == "closed"
        # Closed again: persistence actually resumed.
        before = store.counters.result_stores
        Session(graph, seed=8, store=store, store_breaker=breaker).run(
            Workload.reliability(WORKLOAD_PAIRS, samples=400)
        )
        assert store.counters.result_stores > before

    def test_store_stats_reports_breaker_state(self, graph, store):
        session = Session(graph, seed=7, store=store)
        stats = session.store_stats()
        assert stats["breaker"]["state"] == "closed"
        assert stats["breaker"]["failure_threshold"] == 5
        # A session without a store reports no stats at all.
        assert Session(graph, seed=7).store_stats() is None

    def test_default_breaker_attached_with_store(self, graph, store):
        assert Session(graph, seed=7, store=store).store_breaker is not None
        assert Session(graph, seed=7).store_breaker is None
