"""Deeper semantics tests for the batch-selection machinery."""

from typing import ClassVar

from repro.graph import UncertainGraph, fixed_new_edge_probability
from repro.reliability import ExactEstimator, make_estimator
from repro.core import (
    batch_selection,
    build_path_batches,
    individual_path_selection,
    select_top_l_paths,
)
from repro.baselines import hill_climbing, individual_top_k

S, T = 0, 99


class TestActivationChains:
    def test_subset_batches_activate_transitively(self):
        """Selecting a 2-edge batch activates every subset-label batch."""
        g = UncertainGraph(directed=True)
        g.add_node(S)
        # Intermediate chain nodes.
        g.add_edge(1, 2, 0.9)
        # Candidates: a=(S,1), b=(2,T), c=(S,T? no) -- design paths:
        #   S -a-> 1 -> 2 -b-> T        label {a, b}
        #   S -a-> 1 -> 2 ... (shorter) label {a} needs direct 1->T edge
        g.add_edge(1, T, 0.3)
        candidates = [(S, 1, 0.5), (2, T, 0.5)]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        labels = set(build_path_batches(path_set.paths))
        assert frozenset({(S, 1)}) in labels            # S-1-T
        assert frozenset({(S, 1), (2, T)}) in labels    # S-1-2-T
        edges = batch_selection(g, S, T, 2, path_set, ExactEstimator())
        # Both candidate edges fit the budget; the single-edge batch is
        # activated for free alongside the 2-edge batch.
        assert {(u, v) for u, v, _ in edges} == {(S, 1), (2, T)}

    def test_free_batches_claimed_between_rounds(self):
        """A batch whose label is already covered joins without cost."""
        g = UncertainGraph(directed=True)
        g.add_node(S)
        g.add_edge(1, T, 0.6)
        g.add_edge(1, 2, 0.9)
        g.add_edge(2, T, 0.6)
        candidates = [(S, 1, 0.5)]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        batches = build_path_batches(path_set.paths)
        # Two distinct paths share the single-candidate label.
        assert len(batches[frozenset({(S, 1)})]) == 2
        edges = batch_selection(g, S, T, 1, path_set, ExactEstimator())
        assert [(u, v) for u, v, _ in edges] == [(S, 1)]


class TestIpBeEquivalence:
    def test_equal_when_paths_have_single_candidates(self):
        """With one candidate per path, normalization is a no-op and the
        two selectors agree."""
        g = UncertainGraph(directed=True)
        g.add_node(S)
        for i, p in ((1, 0.9), (2, 0.7), (3, 0.5)):
            g.add_edge(i, T, p)
        candidates = [(S, 1, 0.5), (S, 2, 0.5), (S, 3, 0.5)]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        ip = individual_path_selection(g, S, T, 2, path_set, ExactEstimator())
        be = batch_selection(g, S, T, 2, path_set, ExactEstimator())
        assert {(u, v) for u, v, _ in ip} == {(u, v) for u, v, _ in be}
        # Both take the two strongest branches.
        assert {(u, v) for u, v, _ in be} == {(S, 1), (S, 2)}


class TestBudgetBoundary:
    def test_oversized_batches_skipped(self):
        """A batch needing more edges than the remaining budget is
        skipped even if it has the best raw gain."""
        g = UncertainGraph(directed=True)
        g.add_node(S)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        # Path A: S->4->T needs 2 candidates but weak (0.3 legs).
        g.add_edge(4, T, 0.3)
        candidates = [
            (S, 1, 0.9), (3, T, 0.9),   # strong 2-candidate path
            (S, 4, 0.9),                 # weak 1-candidate path
        ]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        edges = batch_selection(g, S, T, 1, path_set, ExactEstimator())
        # Budget 1 cannot afford the 2-candidate batch.
        assert {(u, v) for u, v, _ in edges} == {(S, 4)}

    def test_zero_gain_batches_still_spend_budget(self):
        """The greedy keeps selecting while feasible batches remain."""
        g = UncertainGraph(directed=True)
        g.add_node(S)
        g.add_edge(1, T, 0.8)
        g.add_edge(2, T, 0.0001)  # nearly-useless second branch
        candidates = [(S, 1, 0.9), (S, 2, 0.9)]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        edges = batch_selection(g, S, T, 2, path_set, ExactEstimator())
        assert len(edges) == 2


def two_chain_graph():
    """0-1-2   3-4-5 with certain edges: candidate (2, 3) has gain
    exactly 1.0, every later round has all-zero gains — so selection
    order is fully deterministic on every path, sampling included."""
    g = UncertainGraph()
    for u, v in ((0, 1), (1, 2), (3, 4), (4, 5)):
        g.add_edge(u, v, 1.0)
    return g


class TestGreedyTieBreakParity:
    """The documented tie-break: lowest candidate index on equal gain.

    The scalar greedy keeps the *first* maximum of its scan; the
    vectorized kernel's argmax (and the top-k stable sort) must match,
    and duplicated candidates must tie exactly on the kernel (they draw
    identical coin rows by construction).
    """

    CANDIDATES: ClassVar = [(2, 3), (0, 5), (1, 4)]

    def custom_prob(self, u, v):
        return {(2, 3): 1.0, (0, 5): 0.5, (1, 4): 0.25}[(u, v)]

    def selection_order(self, estimator, **kwargs):
        g = two_chain_graph()
        edges = hill_climbing(
            g, 0, 5, 3, self.CANDIDATES, self.custom_prob, estimator,
            **kwargs,
        )
        return [(u, v) for u, v, _ in edges]

    def test_scalar_and_vectorized_agree(self):
        # Round 1: (2, 3) wins structurally (gain exactly 1.0).  Later
        # rounds: all gains zero -> lowest remaining index, on both
        # paths, independent of sampling noise.
        expected = [(2, 3), (0, 5), (1, 4)]
        scalar = self.selection_order(
            make_estimator("mc", 200, seed=1), vectorized=False
        )
        vectorized = self.selection_order(make_estimator("mc", 200, seed=1))
        exact = self.selection_order(ExactEstimator())
        assert scalar == vectorized == exact == expected

    def test_duplicate_candidates_pick_lowest_index(self):
        g = two_chain_graph()
        zeta = fixed_new_edge_probability(1.0)
        candidates = [(2, 3), (2, 3), (2, 3)]
        for estimator, kwargs in (
            (ExactEstimator(), {}),
            (make_estimator("mc", 128, seed=0), {}),
            (make_estimator("mc", 128, seed=0), {"vectorized": False}),
        ):
            edges = hill_climbing(
                g, 0, 5, 2, candidates, zeta, estimator, **kwargs
            )
            # All three duplicates tie exactly; rounds pop the lowest
            # index first, so the first two duplicates are selected.
            assert [(u, v) for u, v, _ in edges] == [(2, 3), (2, 3)]

    def test_topk_stable_order_on_ties(self):
        g = two_chain_graph()
        zeta = fixed_new_edge_probability(1.0)
        # (2, 3) and its duplicate both gain exactly 1.0; stable sort
        # must keep candidate order among the tied maxima.
        candidates = [(2, 3), (2, 3), (0, 5)]
        for estimator in (ExactEstimator(), make_estimator("mc", 128, seed=2)):
            edges = individual_top_k(g, 0, 5, 2, candidates, zeta, estimator)
            assert [(u, v) for u, v, _ in edges] == [(2, 3), (2, 3)]

    def test_session_dispatch_matches_direct_call(self):
        from repro.api import MaximizeQuery, Session
        from repro.core.search_space import CandidateSpace

        g = two_chain_graph()
        space = CandidateSpace(
            source_side=[], target_side=[],
            edges=[(u, v, self.custom_prob(u, v)) for u, v in self.CANDIDATES],
            elapsed_seconds=0.0,
        )
        session = Session(g, seed=0, estimator="mc", selection_samples=200)
        result = session.maximize(
            MaximizeQuery(
                0, 5, k=3, method="hc", candidate_space=space,
                new_edge_prob=self.custom_prob,
            )
        )
        assert [(u, v) for u, v, _ in result.solution.edges] == [
            (2, 3), (0, 5), (1, 4),
        ]


class TestPathSetHygiene:
    def test_duplicate_candidate_orientations_collapse(self):
        g = UncertainGraph()  # undirected
        g.add_node(S)
        g.add_edge(1, T, 0.7)
        path_set = select_top_l_paths(
            g, S, T, l=3, candidates=[(1, S, 0.5)]  # reversed orientation
        )
        assert len(path_set.surviving_candidates) == 1
        edges = batch_selection(g, S, T, 1, path_set, ExactEstimator())
        assert len(edges) == 1
