"""Tests for the synthetic graph generators."""

import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    node_sampled_subgraph,
    path_graph,
    powerlaw_cluster,
    random_regular,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi(100, num_edges=250, seed=1)
        assert g.num_nodes == 100
        assert g.num_edges == 250

    def test_gnp_variant(self):
        g = erdos_renyi(60, p=0.1, seed=1)
        assert g.num_nodes == 60
        # Binomial(1770, 0.1): far away from 0 and from the max.
        assert 100 < g.num_edges < 260

    def test_deterministic(self):
        a = erdos_renyi(50, num_edges=100, seed=42)
        b = erdos_renyi(50, num_edges=100, seed=42)
        assert a.edge_set() == b.edge_set()

    def test_seed_changes_graph(self):
        a = erdos_renyi(50, num_edges=100, seed=1)
        b = erdos_renyi(50, num_edges=100, seed=2)
        assert a.edge_set() != b.edge_set()

    def test_requires_exactly_one_density_arg(self):
        with pytest.raises(ValueError):
            erdos_renyi(10)
        with pytest.raises(ValueError):
            erdos_renyi(10, num_edges=5, p=0.5)

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi(4, num_edges=100, seed=0)

    def test_directed(self):
        g = erdos_renyi(30, num_edges=80, seed=3, directed=True)
        assert g.directed
        assert g.num_edges == 80


class TestRandomRegular:
    def test_degrees_all_equal(self):
        g = random_regular(40, 4, seed=5)
        assert all(g.degree(u) == 4 for u in g.nodes())

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            random_regular(5, 3)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_regular(4, 4)

    def test_deterministic(self):
        a = random_regular(30, 4, seed=9)
        b = random_regular(30, 4, seed=9)
        assert a.edge_set() == b.edge_set()


class TestWattsStrogatz:
    def test_size(self):
        g = watts_strogatz(100, k=6, beta=0.3, seed=2)
        assert g.num_nodes == 100
        # Ring lattice gives n*k/2 edges; rewiring preserves the count
        # approximately (collisions may drop a handful).
        assert abs(g.num_edges - 300) <= 15

    def test_no_rewiring_is_lattice(self):
        g = watts_strogatz(20, k=4, beta=0.0, seed=0)
        for u in range(20):
            assert g.has_edge(u, (u + 1) % 20)
            assert g.has_edge(u, (u + 2) % 20)

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(5, k=5)

    def test_deterministic(self):
        a = watts_strogatz(50, k=4, beta=0.5, seed=11)
        b = watts_strogatz(50, k=4, beta=0.5, seed=11)
        assert a.edge_set() == b.edge_set()


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(200, m=3, seed=1)
        assert g.num_nodes == 200
        # seed clique C(4,2)=6 edges + 196 * 3
        assert g.num_edges == 6 + 196 * 3

    def test_hub_formation(self):
        g = barabasi_albert(300, m=2, seed=1)
        degrees = sorted((g.degree(u) for u in g.nodes()), reverse=True)
        # Scale-free: the top hub should greatly exceed the median.
        assert degrees[0] >= 5 * degrees[len(degrees) // 2]

    def test_m_schedule(self):
        g = barabasi_albert(101, m_schedule=[2, 3], seed=1)
        # Alternating 2/3 averages 2.5 per new node.
        grown = g.num_edges - 6  # minus seed clique (m_max=3 -> K4)
        assert abs(grown - 2.5 * (101 - 4)) <= 25

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, m=0)
        with pytest.raises(ValueError):
            barabasi_albert(3, m=5)


class TestPowerlawCluster:
    def test_size(self):
        g = powerlaw_cluster(150, m=2, triad_probability=0.6, seed=4)
        assert g.num_nodes == 150
        assert g.num_edges == 3 + (150 - 3) * 2

    def test_triads_raise_clustering(self):
        from repro.graph import clustering_coefficient

        flat = barabasi_albert(300, m=2, seed=7)
        clustered = powerlaw_cluster(300, m=2, triad_probability=0.9, seed=7)
        assert clustering_coefficient(clustered) > clustering_coefficient(flat)


class TestGridAndPath:
    def test_grid_edges(self):
        g = grid_2d(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_diagonal(self):
        g = grid_2d(2, 2, diagonal=True)
        assert g.has_edge(0, 3)

    def test_path_graph(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.hop_distances(0)[4] == 4


class TestNodeSampledSubgraph:
    def test_subsampling(self):
        g = erdos_renyi(100, num_edges=300, seed=0)
        sub = node_sampled_subgraph(g, 40, seed=1)
        assert sub.num_nodes == 40
        assert sub.num_edges <= g.num_edges

    def test_oversampling_returns_copy(self):
        g = erdos_renyi(10, num_edges=20, seed=0)
        sub = node_sampled_subgraph(g, 100, seed=1)
        assert sub.num_nodes == 10
        assert sub is not g
