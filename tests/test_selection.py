"""Tests for IP (Algorithm 5) and BE (Algorithm 6) edge selection.

Includes the paper's run-through Example 2/3 (Figure 4): with candidates
{sB, sC, Bt}, individual path selection picks {sB, Bt} while batch
selection finds the better {sC, Bt}.
"""

import pytest

from repro.graph import UncertainGraph
from repro.reliability import ExactEstimator, exact_reliability
from repro.core import (
    batch_selection,
    build_path_batches,
    individual_path_selection,
    select_top_l_paths,
)

S, B, C, T = 0, 1, 2, 3


@pytest.fixture
def figure4_graph():
    """Figure 4(c)'s essentials: existing CB = 0.9, Ct = 0.3 (directed)."""
    g = UncertainGraph(directed=True)
    g.add_node(S)
    g.add_edge(C, B, 0.9)
    g.add_edge(C, T, 0.3)
    return g


@pytest.fixture
def figure4_candidates():
    """Candidates {sB, sC, Bt}, each with zeta = 0.5."""
    return [(S, B, 0.5), (S, C, 0.5), (B, T, 0.5)]


def figure4_paths(graph, candidates, l=3):
    return select_top_l_paths(graph, S, T, l=l, candidates=candidates)


class TestExample2PathOrder:
    def test_top3_paths_in_paper_order(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        nodes = [p.nodes for p in path_set.paths]
        probs = [p.probability for p in path_set.paths]
        assert nodes == [[S, B, T], [S, C, B, T], [S, C, T]]
        assert probs[0] == pytest.approx(0.25)    # sBt
        assert probs[1] == pytest.approx(0.225)   # sCBt
        assert probs[2] == pytest.approx(0.15)    # sCt


class TestExample3Selection:
    def test_ip_picks_sB_Bt(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        edges = individual_path_selection(
            figure4_graph, S, T, 2, path_set, ExactEstimator()
        )
        assert {(u, v) for u, v, _ in edges} == {(S, B), (B, T)}

    def test_be_picks_sC_Bt(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        edges = batch_selection(
            figure4_graph, S, T, 2, path_set, ExactEstimator()
        )
        assert {(u, v) for u, v, _ in edges} == {(S, C), (B, T)}

    def test_be_solution_value_matches_paper(self, figure4_graph):
        # Subgraph induced by {sCBt, sCt}: R = 0.5 * (1 - 0.7 * 0.55).
        value = exact_reliability(
            figure4_graph, S, T, [(S, C, 0.5), (B, T, 0.5)]
        )
        assert value == pytest.approx(0.3075)

    def test_be_beats_ip_here(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        ip = individual_path_selection(
            figure4_graph, S, T, 2, path_set, ExactEstimator()
        )
        be = batch_selection(
            figure4_graph, S, T, 2, path_set, ExactEstimator()
        )
        r_ip = exact_reliability(figure4_graph, S, T, ip)
        r_be = exact_reliability(figure4_graph, S, T, be)
        assert r_be > r_ip


class TestBudgetsAndEdgeCases:
    def test_budget_respected(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        for k in (1, 2, 3):
            for select in (individual_path_selection, batch_selection):
                edges = select(
                    figure4_graph, S, T, k, path_set, ExactEstimator()
                )
                assert len(edges) <= k

    def test_invalid_k(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        with pytest.raises(ValueError):
            individual_path_selection(
                figure4_graph, S, T, 0, path_set, ExactEstimator()
            )
        with pytest.raises(ValueError):
            batch_selection(figure4_graph, S, T, 0, path_set, ExactEstimator())

    def test_no_candidate_paths(self, diamond):
        path_set = select_top_l_paths(diamond, 0, 3, l=3, candidates=[])
        assert individual_path_selection(
            diamond, 0, 3, 2, path_set, ExactEstimator()
        ) == []
        assert batch_selection(
            diamond, 0, 3, 2, path_set, ExactEstimator()
        ) == []

    def test_k1_selects_single_best_batch(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        edges = batch_selection(
            figure4_graph, S, T, 1, path_set, ExactEstimator()
        )
        # Only the 1-edge batch {sC} fits: it activates path sCt.
        assert {(u, v) for u, v, _ in edges} == {(S, C)}

    def test_batches_grouped_by_label(self, figure4_graph, figure4_candidates):
        path_set = figure4_paths(figure4_graph, figure4_candidates)
        batches = build_path_batches(path_set.paths)
        labels = set(batches)
        assert frozenset({(S, B), (B, T)}) in labels
        assert frozenset({(S, C), (B, T)}) in labels
        assert frozenset({(S, C)}) in labels

    def test_shared_label_paths_batched_together(self):
        g = UncertainGraph(directed=True)
        g.add_node(S)
        # Two parallel mid sections sharing the same candidate edges.
        g.add_edge(10, 11, 0.9)
        g.add_edge(10, 12, 0.8)
        g.add_edge(11, T, 0.9)
        g.add_edge(12, T, 0.8)
        candidates = [(S, 10, 0.5)]
        path_set = select_top_l_paths(g, S, T, l=5, candidates=candidates)
        batches = build_path_batches(path_set.paths)
        label = frozenset({(S, 10)})
        assert len(batches[label]) == 2
