"""Parity tests: the vectorized engine vs the legacy scalar samplers.

Vectorized and scalar paths consume different PRNG streams, so parity is
asserted within Monte Carlo tolerance at large Z (and against exact
values where the fixture graphs permit), never bit-for-bit.
"""

import pytest

from repro.engine import (
    VectorizedSamplingEngine,
    build_query_plan,
    compile_plan,
    extend_with_overlay,
    num_words,
    pack_bool_matrix,
    popcount,
    valid_sample_mask,
)
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.reliability import (
    BFSSharingIndex,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    exact_reliability,
)

import numpy as np


@pytest.fixture
def medium_graph():
    g = erdos_renyi(30, num_edges=60, seed=3)
    return assign_uniform(g, 0.1, 0.9, seed=4)


class TestKernelPrimitives:
    def test_num_words(self):
        assert num_words(1) == 1
        assert num_words(64) == 1
        assert num_words(65) == 2
        assert num_words(1000) == 16

    def test_pack_roundtrip_via_popcount(self):
        rng = np.random.default_rng(0)
        for z in (1, 7, 64, 100, 129):
            bools = rng.random((5, z)) < 0.5
            words = pack_bool_matrix(bools, z)
            assert words.shape == (5, num_words(z))
            counts = popcount(words).sum(axis=1)
            assert counts.tolist() == bools.sum(axis=1).tolist()

    def test_valid_mask_counts_z_bits(self):
        for z in (1, 63, 64, 65, 1000):
            assert int(popcount(valid_sample_mask(z)).sum()) == z

    def test_pad_bits_are_zero(self):
        words = pack_bool_matrix(np.ones((1, 70), dtype=bool), 70)
        assert int(popcount(words).sum()) == 70


class TestCSRCompilation:
    def test_cache_hit_until_mutation(self, diamond):
        first = compile_plan(diamond)
        assert compile_plan(diamond) is first
        diamond.add_edge(1, 2, 0.5)
        second = compile_plan(diamond)
        assert second is not first
        assert second.num_edges == first.num_edges + 1

    def test_version_bumps_on_mutations(self, diamond):
        v = diamond.version
        diamond.add_node(99)
        assert diamond.version > v
        v = diamond.version
        diamond.set_probability(0, 1, 0.9)
        assert diamond.version > v
        v = diamond.version
        diamond.remove_edge(0, 1)
        assert diamond.version > v

    def test_undirected_edges_share_one_coin_id(self, diamond):
        plan = compile_plan(diamond)
        assert plan.num_edges == 4
        assert plan.arc_src.shape[0] == 8  # two arcs per undirected edge
        assert plan.edge_index[(0, 1)] == (0,)

    def test_overlay_extends_without_touching_base(self, diamond):
        base = compile_plan(diamond)
        merged = extend_with_overlay(base, [(0, 3, 0.5), (3, 77, 0.2)])
        assert base.num_edges == 4
        assert merged.num_edges == 6
        assert merged.num_nodes == base.num_nodes + 1  # node 77 interned
        assert merged.node_index(77) is not None
        assert base.node_index(77) is None
        # base stays cached and untouched
        assert compile_plan(diamond) is base

    def test_empty_overlay_returns_base(self, diamond):
        base = compile_plan(diamond)
        assert build_query_plan(diamond, None) is base
        assert build_query_plan(diamond, []) is base


class TestEngineAgainstExact:
    def test_diamond(self, diamond):
        truth = exact_reliability(diamond, 0, 3)
        est = VectorizedSamplingEngine(seed=1).reliability(diamond, 0, 3, 8000)
        assert est == pytest.approx(truth, abs=0.03)

    def test_directed(self, directed_diamond):
        truth = exact_reliability(directed_diamond, 0, 3)
        eng = VectorizedSamplingEngine(seed=2)
        assert eng.reliability(directed_diamond, 0, 3, 8000) == pytest.approx(
            truth, abs=0.03
        )
        assert eng.reliability(directed_diamond, 3, 0, 2000) == 0.0

    def test_deterministic_given_seed(self, medium_graph):
        a = VectorizedSamplingEngine(seed=7).reliability(medium_graph, 0, 29, 300)
        b = VectorizedSamplingEngine(seed=7).reliability(medium_graph, 0, 29, 300)
        assert a == b

    def test_z_not_word_aligned(self, diamond):
        truth = exact_reliability(diamond, 0, 3)
        est = VectorizedSamplingEngine(seed=3).reliability(diamond, 0, 3, 7001)
        assert est == pytest.approx(truth, abs=0.03)


class TestScalarParity:
    """Vectorized estimates agree with the legacy scalar path."""

    def test_mc_single_pair(self, medium_graph):
        vec = MonteCarloEstimator(6000, seed=1, vectorized=True)
        scalar = MonteCarloEstimator(6000, seed=1, vectorized=False)
        assert vec.reliability(medium_graph, 0, 29) == pytest.approx(
            scalar.reliability(medium_graph, 0, 29), abs=0.04
        )

    def test_mc_reachability_vector(self, diamond):
        vec = MonteCarloEstimator(8000, seed=2).reachability_from(diamond, 0)
        scalar = MonteCarloEstimator(
            8000, seed=2, vectorized=False
        ).reachability_from(diamond, 0)
        assert set(vec) == set(scalar)
        for node, value in scalar.items():
            assert vec[node] == pytest.approx(value, abs=0.04)

    def test_mc_reliability_many(self, medium_graph):
        pairs = [(0, 10), (0, 20), (5, 25), (7, 7)]
        vec = MonteCarloEstimator(6000, seed=3).reliability_many(
            medium_graph, pairs
        )
        scalar = MonteCarloEstimator(
            6000, seed=4, vectorized=False
        ).reliability_many(medium_graph, pairs)
        assert len(vec) == len(pairs)
        assert vec[3] == scalar[3] == 1.0  # s == t
        for a, b in zip(vec, scalar, strict=True):
            assert a == pytest.approx(b, abs=0.05)

    def test_mc_multi_source(self, diamond):
        vec = MonteCarloEstimator(8000, seed=5).multi_source_reachability(
            diamond, [0, 3]
        )
        scalar = MonteCarloEstimator(
            8000, seed=6, vectorized=False
        ).multi_source_reachability(diamond, [0, 3])
        assert vec[0] == vec[3] == 1.0
        for node, value in scalar.items():
            assert vec[node] == pytest.approx(value, abs=0.04)

    def test_rss_parity(self, medium_graph):
        truth = MonteCarloEstimator(20000, seed=99).reliability(
            medium_graph, 0, 29
        )
        vec = RecursiveStratifiedSampler(1000, seed=1, vectorized=True)
        scalar = RecursiveStratifiedSampler(1000, seed=1, vectorized=False)
        assert vec.reliability(medium_graph, 0, 29) == pytest.approx(
            truth, abs=0.05
        )
        assert vec.reliability(medium_graph, 0, 29) == pytest.approx(
            scalar.reliability(medium_graph, 0, 29), abs=0.05
        )

    def test_rss_reachability_parity(self, diamond):
        vec = RecursiveStratifiedSampler(
            2000, seed=2, vectorized=True
        ).reachability_from(diamond, 0)
        for node in (1, 2, 3):
            truth = exact_reliability(diamond, 0, node)
            assert vec[node] == pytest.approx(truth, abs=0.05)

    def test_bfs_sharing_parity(self, diamond):
        truth = exact_reliability(diamond, 0, 3)
        vec = BFSSharingIndex(diamond, num_samples=8000, seed=1)
        scalar = BFSSharingIndex(
            diamond, num_samples=8000, seed=1, vectorized=False
        )
        assert vec.reliability(diamond, 0, 3) == pytest.approx(truth, abs=0.03)
        assert vec.reliability(diamond, 0, 3) == pytest.approx(
            scalar.reliability(diamond, 0, 3), abs=0.04
        )

    def test_bfs_sharing_node_added_after_build(self, diamond):
        # Nodes added after the snapshot are isolated in every stored
        # world; both paths must degrade gracefully, not crash.
        vec = BFSSharingIndex(diamond, num_samples=100, seed=3)
        scalar = BFSSharingIndex(
            diamond, num_samples=100, seed=3, vectorized=False
        )
        diamond.add_node(7)
        for index in (vec, scalar):
            assert index.reliability(diamond, 7, 3) == 0.0
            assert index.reliability(diamond, 0, 7) == 0.0
            assert index.reachability_from(diamond, 7) == {7: 1.0}
            assert index.pair_reliabilities(diamond, [(7, 3), (0, 7)]) == {
                (7, 3): 0.0,
                (0, 7): 0.0,
            }

    def test_bfs_sharing_overlay_deterministic(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=2000, seed=2)
        overlay = [(0, 3, 0.5)]
        first = index.reliability(diamond, 0, 3, overlay)
        assert index.reliability(diamond, 0, 3, overlay) == first
        base = index.reliability(diamond, 0, 3)
        expected = base + (1 - base) * 0.5
        assert first == pytest.approx(expected, abs=0.04)


class TestOverlayAndEdgeCases:
    @pytest.fixture
    def engine(self):
        return VectorizedSamplingEngine(seed=11)

    def test_overlay_edge_counted(self, engine):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        est = engine.reliability(g, 0, 1, 8000, [(0, 1, 0.4)])
        assert est == pytest.approx(0.4, abs=0.03)

    def test_overlay_undirected_semantics(self, engine):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        g.add_node(2)
        # Overlay edge (1, 0) must also carry 0 -> 1 traffic.
        est = engine.reliability(g, 0, 2, 8000, [(1, 0, 0.8), (1, 2, 0.8)])
        assert est == pytest.approx(0.64, abs=0.03)

    def test_overlay_through_unknown_node(self, engine):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        # Node 99 exists only in the overlay but may relay traffic.
        est = engine.reliability(g, 0, 1, 8000, [(0, 99, 0.8), (99, 1, 0.8)])
        assert est == pytest.approx(0.64, abs=0.03)

    def test_source_equals_target(self, engine, diamond):
        assert engine.reliability(diamond, 1, 1, 10) == 1.0

    def test_missing_nodes(self, engine, diamond):
        assert engine.reliability(diamond, 0, 42, 10) == 0.0
        assert engine.reliability(diamond, 42, 0, 10) == 0.0

    def test_disconnected(self, engine):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.9)
        g.add_edge(2, 3, 0.9)
        assert engine.reliability(g, 0, 3, 500) == 0.0

    def test_certain_and_impossible_edges(self, engine):
        certain = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert engine.reliability(certain, 0, 2, 50) == 1.0
        impossible = UncertainGraph.from_edges([(0, 1, 0.0)])
        assert engine.reliability(impossible, 0, 1, 200) == 0.0

    def test_edgeless_graph(self, engine):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        assert engine.reliability(g, 0, 1, 100) == 0.0
        assert engine.reachability_from(g, 0, 100) == {0: 1.0}

    def test_reachability_missing_source(self, engine, diamond):
        assert engine.reachability_from(diamond, 42, 10) == {}

    def test_reliability_many_empty(self, engine, diamond):
        assert engine.reliability_many(diamond, [], 10) == []

    def test_reliability_many_with_overlay(self, engine, diamond):
        pairs = [(0, 3), (1, 2)]
        with_edge = engine.reliability_many(diamond, pairs, 8000, [(0, 3, 1.0)])
        assert with_edge[0] == 1.0  # certain overlay edge closes the pair
        without = engine.reliability_many(diamond, pairs, 8000)
        assert without[0] == pytest.approx(
            exact_reliability(diamond, 0, 3), abs=0.03
        )


class TestEstimatorFlagPlumbing:
    def test_vectorized_flag_exposed(self):
        assert MonteCarloEstimator(10).vectorized is True
        assert MonteCarloEstimator(10, vectorized=False).vectorized is False
        assert RecursiveStratifiedSampler(10, vectorized=False).vectorized is False

    def test_facade_reliability_many(self, diamond):
        from repro.core.facade import ReliabilityMaximizer

        solver = ReliabilityMaximizer(evaluation_samples=6000)
        pairs = [(0, 3), (0, 1)]
        values = solver.reliability_many(diamond, pairs)
        assert len(values) == 2
        assert values[0] == pytest.approx(
            exact_reliability(diamond, 0, 3), abs=0.03
        )


class TestMultiSourceFusedSweep:
    """batch_reach_multi: S independent BFS sweeps fused into one pass."""

    @pytest.mark.parametrize("z", [17, 64, 256, 1000])
    def test_bitwise_parity_with_per_source_sweeps(self, medium_graph, z):
        from repro.engine import batch_reach, batch_reach_multi, sample_worlds

        plan = compile_plan(medium_graph)
        batch = sample_worlds(plan, z, np.random.default_rng(5))
        sources = [0, 7, 13, 29]
        fused = batch_reach_multi(plan, batch, sources)
        assert fused.shape == (plan.num_nodes, len(sources), num_words(z))
        for i, src in enumerate(sources):
            single = batch_reach(plan, batch, [src])
            assert np.array_equal(fused[:, i], single)

    def test_empty_sources(self, medium_graph):
        from repro.engine import batch_reach_multi, sample_worlds

        plan = compile_plan(medium_graph)
        batch = sample_worlds(plan, 64, np.random.default_rng(5))
        assert batch_reach_multi(plan, batch, []).shape == (plan.num_nodes, 0, 1)

    def test_edgeless_graph(self):
        from repro.engine import batch_reach_multi, sample_worlds

        g = UncertainGraph()
        for node in range(4):
            g.add_node(node)
        plan = compile_plan(g)
        batch = sample_worlds(plan, 64, np.random.default_rng(5))
        reached = batch_reach_multi(plan, batch, [0, 2])
        assert int(popcount(reached[0, 0]).sum()) == 64  # own source row
        assert int(popcount(reached[1, 0]).sum()) == 0

    @pytest.mark.parametrize("z", [64, 256, 1024, 4096])
    def test_bitwise_parity_across_widths_and_gating(self, medium_graph, z):
        """Gated, ungated-fused and per-source sweeps agree bit for bit
        across the full width range (W = 1 .. 64)."""
        from repro.engine import batch_reach, batch_reach_multi, sample_worlds

        plan = compile_plan(medium_graph)
        batch = sample_worlds(plan, z, np.random.default_rng(11))
        sources = [0, 3, 7, 13, 21, 29]
        gated = batch_reach_multi(plan, batch, sources, gated=True)
        ungated = batch_reach_multi(plan, batch, sources, gated=False)
        auto = batch_reach_multi(plan, batch, sources)
        for i, src in enumerate(sources):
            single = batch_reach(plan, batch, [src])
            assert np.array_equal(gated[:, i], single), (z, src)
            assert np.array_equal(ungated[:, i], single), (z, src)
            assert np.array_equal(auto[:, i], single), (z, src)

    @pytest.mark.parametrize("z", [64, 1000])
    @pytest.mark.parametrize("fuse_max_words", [0, 1, None])
    def test_pair_hit_fractions_same_on_every_dispatch_path(
        self, medium_graph, z, fuse_max_words
    ):
        # fuse_max_words=0 forces per-source sweeps, 1 fuses only
        # single-word batches, None uses the measured default (fused on
        # both widths here); all paths must agree with independent
        # single-pair answers.
        from repro.engine import pair_hit_fractions, sample_worlds

        plan = compile_plan(medium_graph)
        batch = sample_worlds(plan, z, np.random.default_rng(6))
        pairs = [(0, 10), (7, 20), (13, 5), (0, 25), (2, 2), (0, 999)]
        values = pair_hit_fractions(
            plan, batch, pairs, z, fuse_max_words=fuse_max_words
        )
        assert values[(2, 2)] == 1.0
        assert values[(0, 999)] == 0.0
        for pair in [(0, 10), (7, 20), (13, 5), (0, 25)]:
            solo = pair_hit_fractions(plan, batch, [pair], z)
            assert values[pair] == solo[pair], (pair, fuse_max_words)
