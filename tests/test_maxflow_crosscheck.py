"""Cross-validation of the Dinic max-flow against scipy's solver."""

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import maximum_flow

from repro.paths import DinicMaxFlow


def _random_capacity_graph(rng, n, m):
    edges = set()
    while len(edges) < m:
        u, v = rng.integers(0, n, size=2).tolist()
        if u != v:
            edges.add((u, v))
    return [(u, v, int(rng.integers(1, 20))) for u, v in edges]


@pytest.mark.parametrize("seed", range(10))
def test_dinic_matches_scipy(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 12))
    m = int(rng.integers(n, 3 * n))
    edges = _random_capacity_graph(rng, n, m)

    dinic = DinicMaxFlow()
    dense = np.zeros((n, n), dtype=np.int64)
    for u, v, cap in edges:
        dinic.add_edge(u, v, float(cap), meta=(u, v))
        dense[u, v] += cap
    ours = dinic.max_flow(0, n - 1)
    theirs = maximum_flow(csr_matrix(dense), 0, n - 1).flow_value
    assert ours == pytest.approx(float(theirs))


@pytest.mark.parametrize("seed", range(5))
def test_min_cut_value_equals_flow(seed):
    """Max-flow/min-cut duality: cut capacities must sum to the flow."""
    rng = np.random.default_rng(100 + seed)
    n = int(rng.integers(4, 10))
    edges = _random_capacity_graph(rng, n, 2 * n)

    dinic = DinicMaxFlow()
    capacity = {}
    for u, v, cap in edges:
        dinic.add_edge(u, v, float(cap), meta=(u, v))
        capacity[(u, v)] = capacity.get((u, v), 0) + cap
    flow = dinic.max_flow(0, n - 1)
    cut = dinic.min_cut_edges(0, n - 1)
    cut_value = sum(capacity[edge] for edge in set(cut))
    assert cut_value == pytest.approx(flow)
