"""Fixture-driven self-tests for the repro-check lint pass.

Each REPxxx rule is exercised against minimal violating and conforming
sources, plus the suppression mechanism, path scoping, and the CLI
surface (exit codes, --list-rules, unknown paths).
"""

import subprocess
import sys

import pytest

from repro.analysis import ALL_RULES, check_source
from repro.analysis.checker import check_paths, main, suppressed_lines


def codes(source, path="src/repro/example.py", package_path=None, select=None):
    return [
        d.code
        for d in check_source(
            source, path, package_path=package_path, select=select
        )
    ]


# ----------------------------------------------------------------------
# REP001 — unseeded / module-level RNG
# ----------------------------------------------------------------------

@pytest.mark.parametrize("source", [
    "import numpy as np\nx = np.random.rand(3)\n",
    "import numpy as np\nnp.random.seed(0)\n",
    "import numpy as np\nrng = np.random.default_rng()\n",
    "import numpy.random as npr\nx = npr.random()\n",
    "from numpy import random\nx = random.standard_normal()\n",
    "import random\nx = random.random()\n",
    "import random\nx = random.randint(0, 5)\n",
    "import random as _random\nrng = _random.Random()\n",
    "from random import random\nx = random()\n",
])
def test_rep001_flags_unseeded_rng(source):
    assert codes(source) == ["REP001"]


@pytest.mark.parametrize("source", [
    "import numpy as np\nrng = np.random.default_rng(7)\n",
    "import numpy as np\nrng = np.random.default_rng(seed)\n",
    "import numpy as np\ng = np.random.Generator(np.random.PCG64(3))\n",
    "import random\nrng = random.Random(42)\n",
    # A *local* name shadowing `random` is not the module.
    "def f(random):\n    return random.random()\n",
    # Methods on a generator instance are fine — it carries its seed.
    "import random\nx = random.Random(3).random()\n",
])
def test_rep001_allows_seeded_rng(source):
    assert codes(source) == []


# ----------------------------------------------------------------------
# REP002 — UncertainGraph mutators must bump version
# ----------------------------------------------------------------------

REP002_VIOLATION = """
class UncertainGraph:
    def clear_edges(self):
        self._succ = {}
        self._pred = {}
"""

REP002_SUBSCRIPT_VIOLATION = """
class UncertainGraph:
    def poke(self, u, v, p):
        self._succ[u][v] = p
"""

REP002_DELETE_VIOLATION = """
class UncertainGraph:
    def drop(self, u, v):
        del self._succ[u][v]
"""

REP002_OK_DIRECT_BUMP = """
class UncertainGraph:
    def clear_edges(self):
        self._succ = {}
        self._pred = {}
        self._version += 1
"""

REP002_OK_DELEGATED = """
class UncertainGraph:
    def set_probability(self, u, v, p):
        self.add_edge(u, v, p)
"""

REP002_OK_FOREIGN_TARGET = """
class UncertainGraph:
    def copy(self):
        clone = UncertainGraph()
        clone._succ = {}
        clone._num_edges = 0
        return clone
"""


def test_rep002_flags_unbumped_state_writes():
    assert codes(REP002_VIOLATION) == ["REP002"]
    assert codes(REP002_SUBSCRIPT_VIOLATION) == ["REP002"]
    assert codes(REP002_DELETE_VIOLATION) == ["REP002"]


def test_rep002_accepts_bumping_and_delegating_methods():
    assert codes(REP002_OK_DIRECT_BUMP) == []
    assert codes(REP002_OK_DELEGATED) == []
    # Writes to *another* object's state (copy()) are not this graph's.
    assert codes(REP002_OK_FOREIGN_TARGET) == []


def test_rep002_ignores_other_classes():
    source = "class Other:\n    def f(self):\n        self._succ = {}\n"
    assert codes(source) == []


# ----------------------------------------------------------------------
# REP003 — no .version in the disk tier
# ----------------------------------------------------------------------

def test_rep003_flags_version_in_index_package():
    source = "def key(graph):\n    return graph.version\n"
    assert codes(source, package_path=("index", "store.py")) == ["REP003"]


def test_rep003_scoped_to_index_only():
    source = "def key(graph):\n    return graph.version\n"
    assert codes(source, package_path=("engine", "csr.py")) == []
    # schema_version is a different attribute.
    ok = "def v(meta):\n    return meta.schema_version\n"
    assert codes(ok, package_path=("index", "schema.py")) == []


def test_rep003_real_path_scoping(tmp_path):
    pkg = tmp_path / "repro" / "index"
    pkg.mkdir(parents=True)
    bad = pkg / "cache.py"
    bad.write_text("def key(g):\n    return g.version\n")
    assert [d.code for d in check_paths([str(bad)])] == ["REP003"]


# ----------------------------------------------------------------------
# REP004 — WorldBatch arrays immutable outside the kernel
# ----------------------------------------------------------------------

@pytest.mark.parametrize("source", [
    "def f(batch, row):\n    batch.alive[0] = row\n",
    "def f(batch, mask):\n    batch.alive |= mask\n",
    "def f(batch, mask):\n    batch.valid[2:] = mask\n",
    "def f(batch, words):\n    batch.words = words\n",
    "import numpy as np\ndef f(batch, row):\n    np.copyto(batch.alive, row)\n",
    "import numpy as np\ndef f(b, row):\n    np.copyto(b.alive[3], row)\n",
])
def test_rep004_flags_batch_mutation(source):
    assert codes(source) == ["REP004"]


def test_rep004_exempts_kernel_and_reads():
    mutation = "def f(batch, row):\n    batch.alive[0] = row\n"
    assert codes(mutation, package_path=("engine", "kernel.py")) == []
    reads = "def f(batch):\n    return batch.alive[0] & batch.valid\n"
    assert codes(reads) == []
    # Freezing a batch is not mutation of the array contents.
    freeze = "def f(batch):\n    batch.alive.flags.writeable = False\n"
    assert codes(freeze) == []


# ----------------------------------------------------------------------
# REP005 — wall clock
# ----------------------------------------------------------------------

def test_rep005_flags_wall_clock():
    source = "import time\nstart = time.time()\n"
    assert codes(source) == ["REP005"]
    aliased = "import time as clock\nstart = clock.time()\n"
    assert codes(aliased) == ["REP005"]
    from_import = "from time import time\nstart = time()\n"
    assert codes(from_import) == ["REP005"]


def test_rep005_allows_perf_counter():
    source = "import time\nstart = time.perf_counter()\n"
    assert codes(source) == []


# ----------------------------------------------------------------------
# REP006 — fault seams are literal, allocation-free, armed-gated
# ----------------------------------------------------------------------

@pytest.mark.parametrize("source", [
    # dynamic seam name: the seam table stops being enumerable
    "from repro.faults import fault_point\n"
    "name = 'store.catalog'\n"
    "fault_point(name)\n",
    # f-string seam name allocates on every disarmed call
    "from repro.faults import fault_point\n"
    "op = 'catalog'\n"
    "fault_point(f'store.{op}')\n",
    # not a dotted lowercase identifier
    "from repro.faults import fault_point\n"
    "fault_point('store.*')\n",
    "from repro.faults import fault_point\n"
    "fault_point('Store.Catalog')\n",
    # error= must be a bare class reference, not an expression
    "from repro.faults import fault_point\n"
    "fault_point('store.catalog', type('E', (Exception,), {}))\n",
    "from repro.faults import fault_point\n"
    "fault_point('store.catalog', error=RuntimeError('boom'))\n",
    # wrong arity / unexpected keywords
    "from repro.faults import fault_point\n"
    "fault_point('store.catalog', RuntimeError, 3)\n",
    "from repro.faults import fault_point\n"
    "fault_point('store.catalog', p=0.5)\n",
    # bypassing the registry entirely
    "from repro.faults import FaultError\n"
    "def f():\n"
    "    raise FaultError('store.catalog')\n",
])
def test_rep006_flags_unsafe_seams(source):
    assert codes(source) == ["REP006"]


def test_rep006_accepts_literal_allocation_free_seams():
    source = (
        "from repro.faults import fault_point\n"
        "from repro.index.store import StoreError\n"
        "fault_point('store.catalog')\n"
        "fault_point('store.catalog', StoreError)\n"
        "fault_point('serve.http.read', error=ConnectionError)\n"
    )
    assert codes(source) == []


def test_rep006_exempts_the_faults_package_itself():
    source = (
        "def fault_point(name, error=None):\n"
        "    raise FaultError(name)\n"
    )
    assert codes(source, package_path=("faults", "registry.py")) == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

def test_inline_suppression_silences_one_rule():
    source = "import time\nnow = time.time()  # repro-check: disable=REP005\n"
    assert codes(source) == []


def test_suppression_is_rule_specific():
    source = "import time\nnow = time.time()  # repro-check: disable=REP001\n"
    assert codes(source) == ["REP005"]


def test_suppression_disable_all():
    source = "import time\nnow = time.time()  # repro-check: disable=all\n"
    assert codes(source) == []


def test_suppression_parsing():
    lines = suppressed_lines(
        "x = 1\ny = 2  # repro-check: disable=REP001, REP004\n"
    )
    assert lines == {2: {"REP001", "REP004"}}


# ----------------------------------------------------------------------
# driver / CLI surface
# ----------------------------------------------------------------------

def test_select_restricts_rules():
    source = "import time\nimport random\nx = random.random()\nt = time.time()\n"
    assert codes(source, select=["REP005"]) == ["REP005"]
    assert sorted(codes(source)) == ["REP001", "REP005"]


def test_syntax_error_becomes_diagnostic():
    assert codes("def broken(:\n") == ["REP000"]


def test_main_clean_tree_exits_zero(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("import time\nstart = time.perf_counter()\n")
    assert main([str(tmp_path)]) == 0


def test_main_violations_exit_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nstart = time.time()\n")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REP005" in out and "bad.py:2" in out


def test_main_missing_path_exits_two(tmp_path):
    assert main([str(tmp_path / "nope")]) == 2


def test_main_unknown_rule_code_exits_two(tmp_path):
    assert main(["--select", "REP999", str(tmp_path)]) == 2


def test_main_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.code in out
    assert len(ALL_RULES) == 6


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--list-rules"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0
    assert "REP001" in proc.stdout


def test_repo_source_tree_is_clean():
    # The acceptance gate, runnable locally: all six rules, zero
    # findings over the shipped package.
    import repro
    from pathlib import Path

    package_dir = Path(repro.__file__).parent
    assert check_paths([str(package_dir)]) == []
