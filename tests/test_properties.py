"""Property-based tests (hypothesis) for the core invariants.

Invariants pinned here:

* exact factoring == brute-force enumeration on arbitrary small graphs;
* reliability is monotone under edge addition and under probability
  increase (the foundation of the whole maximization problem);
* the most reliable path's probability lower-bounds the reliability;
* top-l paths are simple, descending, and consistent with Dijkstra;
* edge-list IO round-trips arbitrary graphs;
* selection never exceeds the budget and only uses offered candidates.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph import fixed_new_edge_probability
from repro.reliability import (
    MonteCarloEstimator,
    exact_reliability,
    exact_reliability_by_enumeration,
)
from repro.paths import most_reliable_path, top_l_most_reliable_paths
from repro.core import improve_most_reliable_path

from strategies import small_uncertain_graphs

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(graph=small_uncertain_graphs(max_nodes=5, directed=True))
@settings(max_examples=60, **COMMON)
def test_factoring_matches_enumeration(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    assert exact_reliability(graph, s, t) == (
        exact_reliability_by_enumeration(graph, s, t)
    ) or abs(
        exact_reliability(graph, s, t)
        - exact_reliability_by_enumeration(graph, s, t)
    ) < 1e-9


@given(
    graph=small_uncertain_graphs(max_nodes=5),
    p=st.floats(min_value=0.05, max_value=1.0),
)
@settings(max_examples=40, **COMMON)
def test_reliability_monotone_under_edge_addition(graph, p):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    missing = [e for e in graph.missing_edges()]
    base = exact_reliability(graph, s, t)
    for u, v in missing[:3]:
        augmented = exact_reliability(graph, s, t, [(u, v, p)])
        assert augmented >= base - 1e-12


@given(graph=small_uncertain_graphs(max_nodes=5))
@settings(max_examples=40, **COMMON)
def test_reliability_monotone_under_probability_increase(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    base = exact_reliability(graph, s, t)
    boosted = graph.copy()
    for u, v, p in list(boosted.edges()):
        boosted.set_probability(u, v, min(1.0, p * 1.3))
    assert exact_reliability(boosted, s, t) >= base - 1e-12


@given(graph=small_uncertain_graphs(max_nodes=5))
@settings(max_examples=40, **COMMON)
def test_reliability_within_unit_interval(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    value = exact_reliability(graph, s, t)
    assert 0.0 <= value <= 1.0 + 1e-12


@given(graph=small_uncertain_graphs(max_nodes=5))
@settings(max_examples=40, **COMMON)
def test_mrp_lower_bounds_reliability(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    _, prob = most_reliable_path(graph, s, t)
    reliability = exact_reliability(graph, s, t)
    assert prob <= reliability + 1e-9


@given(graph=small_uncertain_graphs(max_nodes=6))
@settings(max_examples=40, **COMMON)
def test_top_l_paths_descending_and_simple(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    paths = top_l_most_reliable_paths(graph, s, t, 8)
    probs = [pr for _, pr in paths]
    assert probs == sorted(probs, reverse=True)
    for path, prob in paths:
        assert len(path) == len(set(path))
        assert 0.0 < prob <= 1.0
    if paths:
        _, best = most_reliable_path(graph, s, t)
        assert paths[0][1] == best or abs(paths[0][1] - best) < 1e-12


@given(graph=small_uncertain_graphs(max_nodes=6, directed=True))
@settings(max_examples=30, **COMMON)
def test_io_roundtrip(graph, tmp_path_factory):
    from repro.graph import read_edge_list, write_edge_list

    path = tmp_path_factory.mktemp("io") / "g.edges"
    write_edge_list(graph, path)
    loaded = read_edge_list(path)
    assert loaded.directed == graph.directed
    assert loaded.edge_set() == graph.edge_set()
    assert loaded.num_nodes == graph.num_nodes
    for u, v, p in graph.edges():
        assert math.isclose(loaded.probability(u, v), p, rel_tol=1e-9)


@given(
    graph=small_uncertain_graphs(max_nodes=5),
    k=st.integers(min_value=1, max_value=3),
    zeta=st.floats(min_value=0.1, max_value=0.95),
)
@settings(max_examples=30, **COMMON)
def test_mrp_improvement_budget_and_optimality(graph, k, zeta):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    solution = improve_most_reliable_path(
        graph, s, t, k, fixed_new_edge_probability(zeta)
    )
    assert len(solution.edges) <= k
    assert solution.new_probability >= solution.old_probability - 1e-12
    # Every chosen edge must be a genuinely missing pair.
    for u, v, p in solution.edges:
        assert not graph.has_edge(u, v)
        assert p == zeta


@given(graph=small_uncertain_graphs(max_nodes=5))
@settings(max_examples=20, **COMMON)
def test_sampler_within_tolerance_of_exact(graph):
    nodes = sorted(graph.nodes())
    s, t = nodes[0], nodes[-1]
    truth = exact_reliability(graph, s, t)
    estimate = MonteCarloEstimator(3000, seed=7).reliability(graph, s, t)
    assert abs(estimate - truth) < 0.06
