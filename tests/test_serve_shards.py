"""Self-healing shard pool: routing, crash replay, two-phase swap.

The headline contract under test: a shard death mid-burst yields
**zero failed responses**, and every answer — original or replayed —
is bit-for-bit what a one-off ``Session.run`` returns, because the
stack below the session is deterministic in ``(graph content,
estimator, Z, seed)``.  The supervisor must also respawn the dead
worker under its doubling backoff, survive all shards dying at once
(requests park until a respawn), detect hung workers by heartbeat,
and keep graph swaps atomic across the pool.

Workers are real ``spawn``-context processes; tests that need requests
pinned in flight at kill time slow the workers down by exporting a
latency-only ``REPRO_FAULTS`` profile — the child processes arm it at
import, the parent registry stays disarmed.
"""

import asyncio
import os
import signal
import time

import pytest

from repro import faults
from repro.api import MaximizeQuery, ReliabilityQuery, Session, Workload
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.serve import (
    OverloadedError,
    SessionClosedError,
    ShardCrashError,
    ShardSupervisor,
    route_key,
    shard_index,
)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="shard pool tests use POSIX signals"
)

#: Latency-only chaos for the *worker* processes: batches take ~300ms,
#: long enough for a test to SIGKILL a shard while requests are in
#: flight.  ``fail=0`` keeps answers bit-for-bit clean.
SLOW_WORKER_PROFILE = "serve.worker:latency_ms=300,fail=0"

#: Fast supervision knobs so death detection and respawn complete in
#: test time (production defaults are 1s/5s).
FAST = dict(
    heartbeat_interval_s=0.1,
    heartbeat_timeout_s=0.8,
    respawn_backoff_s=0.05,
    respawn_backoff_ceiling_s=0.5,
)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def graph():
    g = erdos_renyi(30, num_edges=70, seed=3)
    return assign_uniform(g, 0.2, 0.9, seed=4)


def one_off(graph, queries, **session_kwargs):
    session = Session(graph, **session_kwargs)
    return [session.run(Workload([q]))[0] for q in queries]


def burst_queries(n, samples=500):
    # Distinct seeds spread the burst across shards (distinct routing
    # keys) while staying deterministic.
    return [
        ReliabilityQuery(source=i % 5, target=29 - (i % 7), samples=samples, seed=100 + i)
        for i in range(n)
    ]


async def wait_until(predicate, timeout_s=30.0, message="condition"):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        await asyncio.sleep(0.05)


async def wait_all_live(supervisor, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        rows = supervisor.describe()["shards"]
        if all(row["live"] for row in rows):
            return rows
        await asyncio.sleep(0.05)
    raise AssertionError(f"shards not all live: {supervisor.describe()['shards']}")


def shard_pids(supervisor):
    return [row["pid"] for row in supervisor.describe()["shards"]]


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------


def test_route_key_matches_coalescing_key():
    q = ReliabilityQuery(source=0, target=1, samples=400, seed=None)
    # seed=None resolves to the session seed, exactly as Session.run
    # groups batches — so both spellings land on the same shard.
    assert route_key(q, 7) == ("mc", 400, 7)
    explicit = ReliabilityQuery(source=3, target=4, samples=400, seed=7)
    assert route_key(explicit, 7) == route_key(q, 7)
    # Maximize queries collapse onto one key (their base evaluations
    # batch together regardless of configuration).
    m = MaximizeQuery(source=0, target=1, k=2)
    assert route_key(m, 7) == ("maximize", 0, None)


def test_shard_index_is_stable_and_in_range():
    key = ("mc", 400, 7)
    first = shard_index(key, 4)
    assert 0 <= first < 4
    assert all(shard_index(key, 4) == first for _ in range(100))
    # Different keys spread: over many seeds every shard gets traffic.
    homes = {shard_index(("mc", 400, s), 4) for s in range(64)}
    assert homes == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# parity (healthy pool)
# ----------------------------------------------------------------------


def test_burst_parity_across_shards(graph):
    queries = burst_queries(16)
    expected = [r.values for r in one_off(graph, queries)]

    async def run():
        async with ShardSupervisor(graph, num_shards=4, **FAST) as sup:
            results = await asyncio.gather(*(sup.submit(q) for q in queries))
            return [r.values for r in results]

    assert asyncio.run(run()) == expected


def test_maximize_parity_through_pool(graph):
    query = MaximizeQuery(source=0, target=29, k=2, samples=100)
    expected = one_off(graph, [query])[0]

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            return await sup.submit(query)

    got = asyncio.run(run())
    assert got.edges == expected.edges
    assert got.new_reliability == expected.new_reliability


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------


def test_sigkill_mid_burst_replays_bit_for_bit(graph, monkeypatch):
    """The chaos parity gate: SIGKILL one of 4 workers mid-burst."""
    monkeypatch.setenv("REPRO_FAULTS", SLOW_WORKER_PROFILE)
    queries = burst_queries(12, samples=2000)
    expected = [r.values for r in one_off(graph, queries)]

    async def run():
        async with ShardSupervisor(graph, num_shards=4, **FAST) as sup:
            pids = shard_pids(sup)
            burst = asyncio.ensure_future(
                asyncio.gather(*(sup.submit(q) for q in queries))
            )
            await asyncio.sleep(0.15)  # inside the 300ms injected batch
            os.kill(pids[0], signal.SIGKILL)
            results = await burst  # zero failed responses
            await wait_until(lambda: sup.stats.deaths >= 1, message="death")
            stats = sup.stats.as_dict()
            rows = await wait_all_live(sup)
            return [r.values for r in results], stats, pids, rows

    values, stats, old_pids, rows = asyncio.run(run())
    assert values == expected
    assert stats["deaths"] >= 1
    # The respawned worker is a fresh process on the same shard slot.
    assert rows[0]["pid"] != old_pids[0]


def test_all_shards_killed_parks_until_respawn(graph, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", SLOW_WORKER_PROFILE)
    queries = burst_queries(8, samples=2000)
    expected = [r.values for r in one_off(graph, queries)]

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            pids = shard_pids(sup)
            burst = asyncio.ensure_future(
                asyncio.gather(*(sup.submit(q) for q in queries))
            )
            await asyncio.sleep(0.15)
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            results = await burst
            return [r.values for r in results], sup.stats.as_dict()

    values, stats = asyncio.run(run())
    assert values == expected
    assert stats["deaths"] == 2
    assert stats["replays"] >= len(queries)
    assert stats["crashed"] == 0


def test_heartbeat_detects_hung_worker(graph):
    """SIGSTOP (no EOF!) must be caught by heartbeat staleness."""

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            victim = shard_pids(sup)[0]
            os.kill(victim, signal.SIGSTOP)
            try:
                deadline = time.monotonic() + 30.0
                while sup.stats.heartbeat_timeouts == 0:
                    assert time.monotonic() < deadline, "heartbeat never fired"
                    await asyncio.sleep(0.05)
                rows = await wait_all_live(sup)
                assert rows[0]["pid"] != victim
                # The pool still answers after the hang.
                q = ReliabilityQuery(source=0, target=29, samples=300, seed=1)
                result = await sup.submit(q)
                return result.values
            finally:
                try:
                    os.kill(victim, signal.SIGCONT)
                except ProcessLookupError:
                    pass  # already SIGKILLed and reaped

    values = asyncio.run(run())
    q = ReliabilityQuery(source=0, target=29, samples=300, seed=1)
    assert values == one_off(graph, [q])[0].values


def test_replay_budget_exhaustion_fails_typed(graph, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", SLOW_WORKER_PROFILE)

    async def run():
        sup = ShardSupervisor(graph, num_shards=2, replay_budget=0, **FAST)
        async with sup:
            q = ReliabilityQuery(source=0, target=29, samples=2000, seed=5)
            pending = asyncio.ensure_future(sup.submit(q))
            await asyncio.sleep(0.15)
            home = shard_index(route_key(q, 0), 2)
            os.kill(shard_pids(sup)[home], signal.SIGKILL)
            with pytest.raises(ShardCrashError):
                await pending
            assert sup.stats.crashed == 1

    asyncio.run(run())


def test_spawn_fault_backs_off_then_recovers(graph):
    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            # The next spawn attempt fails once; the doubling backoff
            # retries and the shard comes back anyway.
            with faults.inject("shard.spawn", count=1):
                os.kill(shard_pids(sup)[0], signal.SIGKILL)
                await wait_until(lambda: sup.stats.deaths >= 1, message="death")
                await wait_until(
                    lambda: sup.stats.spawn_failures >= 1, message="failed spawn"
                )
                await wait_all_live(sup)
            assert sup.stats.respawns >= 1

    asyncio.run(run())


def test_ipc_write_fault_is_a_death_signal(graph):
    q = ReliabilityQuery(source=0, target=29, samples=400, seed=9)
    expected = one_off(graph, [q])[0].values

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            with faults.inject("shard.ipc.write", count=1):
                # Whichever write trips first (request or ping), the
                # supervisor treats the shard as dead and the request
                # still completes on a healthy worker.
                result = await sup.submit(q)
            await wait_all_live(sup)
            assert sup.stats.deaths >= 1
            return result.values

    assert asyncio.run(run()) == expected


# ----------------------------------------------------------------------
# two-phase graph swap
# ----------------------------------------------------------------------


def swapped_graph(graph):
    edges = [(u, v, min(1.0, p + 0.03)) for u, v, p in graph.edges()]
    return UncertainGraph.from_edges(edges, directed=graph.directed, name="swapped")


def test_two_phase_swap_parity(graph):
    new = swapped_graph(graph)
    q = ReliabilityQuery(source=0, target=29, samples=500, seed=2)
    expected = one_off(new, [q])[0].values

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            version = await sup.swap_graph(new)
            assert version == new.version
            assert sup.graph is new
            result = await sup.submit(q)
            assert sup.stats.graph_swaps == 1
            return result.values

    assert asyncio.run(run()) == expected


def test_swap_with_dead_shard_completes_on_new_graph(graph):
    """A shard dying mid-swap restarts directly on the new graph."""
    new = swapped_graph(graph)
    q = ReliabilityQuery(source=1, target=28, samples=500, seed=3)
    expected = one_off(new, [q])[0].values

    async def run():
        async with ShardSupervisor(graph, num_shards=2, **FAST) as sup:
            os.kill(shard_pids(sup)[0], signal.SIGKILL)
            # Swap immediately: phase one must wait out the respawn,
            # which starts the worker on the pending graph.
            version = await sup.swap_graph(new)
            assert version == new.version
            rows = await wait_all_live(sup)
            generation = sup.describe()["shards"][0]["generation"]
            assert all(row["generation"] >= 1 for row in rows), rows
            result = await sup.submit(q)
            return generation, result.values

    generation, values = asyncio.run(run())
    assert generation >= 1
    assert values == expected


# ----------------------------------------------------------------------
# lifecycle and admission
# ----------------------------------------------------------------------


def test_close_is_idempotent_and_submissions_fail_typed(graph):
    async def run():
        sup = ShardSupervisor(graph, num_shards=2, **FAST)
        await sup.start()
        await sup.close()
        await sup.close()  # idempotent
        with pytest.raises(SessionClosedError):
            await sup.submit(ReliabilityQuery(source=0, target=1, samples=100))

    asyncio.run(run())


def test_submit_before_start_is_an_error(graph):
    async def run():
        sup = ShardSupervisor(graph, num_shards=2, **FAST)
        with pytest.raises(RuntimeError):
            await sup.submit(ReliabilityQuery(source=0, target=1, samples=100))

    asyncio.run(run())


def test_admission_shed_is_pool_wide(graph, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", SLOW_WORKER_PROFILE)

    async def run():
        sup = ShardSupervisor(graph, num_shards=2, max_pending=2, **FAST)
        async with sup:
            queries = burst_queries(8, samples=1000)
            outcomes = await asyncio.gather(
                *(sup.submit(q) for q in queries), return_exceptions=True
            )
            shed = [o for o in outcomes if isinstance(o, OverloadedError)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert len(shed) + len(served) == len(queries)
            assert shed, "max_pending=2 under an 8-burst must shed"
            assert sup.stats.shed == len(shed)

    asyncio.run(run())


def test_constructor_validation(graph):
    with pytest.raises(ValueError):
        ShardSupervisor(graph, num_shards=0)
    with pytest.raises(ValueError):
        ShardSupervisor(graph, replay_budget=-1)
    with pytest.raises(ValueError):
        ShardSupervisor(graph, heartbeat_interval_s=1.0, heartbeat_timeout_s=0.5)


def test_shared_store_across_shards(graph, tmp_path):
    """All workers share one IndexStore directory (flock-guarded)."""
    store_dir = str(tmp_path / "store")
    queries = burst_queries(6)
    expected = [r.values for r in one_off(graph, queries)]

    async def run(values_out):
        sup = ShardSupervisor(graph, num_shards=2, store_path=store_dir, **FAST)
        async with sup:
            results = await asyncio.gather(*(sup.submit(q) for q in queries))
            values_out.extend(r.values for r in results)
            stats = await sup.shard_stats()
            assert any(s is not None and "store" in s for s in stats)

    first: list = []
    asyncio.run(run(first))
    assert first == expected
    # A second pool warm-starts from the same directory and agrees.
    second: list = []
    asyncio.run(run(second))
    assert second == expected


# ----------------------------------------------------------------------
# HTTP front end over the pool
# ----------------------------------------------------------------------


def test_http_server_over_shard_pool(graph):
    """ReliabilityServer fronts the pool: healthz, parity, hot swap."""
    import json
    import urllib.request

    from repro.serve import ReliabilityServer

    new = swapped_graph(graph)
    q = ReliabilityQuery(source=0, target=29, samples=400, seed=6)
    expected_old = one_off(graph, [q])[0]
    expected_new = one_off(new, [q])[0]

    def call(host, port, method, path, payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data, method=method
        )
        with urllib.request.urlopen(req, timeout=30) as response:
            return json.loads(response.read())

    async def run():
        sup = ShardSupervisor(graph, num_shards=2, **FAST)
        server = ReliabilityServer(sup)
        host, port = await server.start()  # starts the pool too
        loop = asyncio.get_running_loop()
        try:
            health = await loop.run_in_executor(
                None, call, host, port, "GET", "/healthz"
            )
            body = {"source": 0, "target": 29, "samples": 400, "seed": 6}
            served = await loop.run_in_executor(
                None, call, host, port, "POST", "/reliability", body
            )
            swap = await loop.run_in_executor(
                None, call, host, port, "POST", "/graph",
                {"edges": [list(e) for e in new.edges()],
                 "directed": new.directed, "name": "swapped"},
            )
            after = await loop.run_in_executor(
                None, call, host, port, "POST", "/reliability", body
            )
            return health, served, swap, after
        finally:
            await server.stop()
            await sup.close()

    health, served, swap, after = asyncio.run(run())
    assert "supervisor" in health and "coalescer" not in health
    assert health["supervisor"]["num_shards"] == 2
    assert [row["live"] for row in health["supervisor"]["shards"]] == [True, True]
    assert served["results"][0]["value"] == expected_old.value
    assert swap["status"] == "swapped"
    assert after["results"][0]["value"] == expected_new.value
