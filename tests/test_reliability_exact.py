"""Tests for exact reliability (factoring + enumeration)."""

import pytest

from repro.graph import UncertainGraph, path_graph, assign_fixed
from repro.reliability import (
    ExactEstimator,
    exact_reliability,
    exact_reliability_by_enumeration,
)


class TestHandComputedCases:
    def test_single_edge(self):
        g = UncertainGraph.from_edges([(0, 1, 0.3)])
        assert exact_reliability(g, 0, 1) == pytest.approx(0.3)

    def test_series(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.4)])
        assert exact_reliability(g, 0, 2) == pytest.approx(0.2)

    def test_parallel_paths(self):
        # Two disjoint 2-hop routes: R = 1 - (1 - 0.25)(1 - 0.25).
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.5), (2, 3, 0.5)]
        )
        assert exact_reliability(g, 0, 3) == pytest.approx(1 - 0.75 * 0.75)

    def test_diamond(self, diamond):
        expected = 1 - (1 - 0.8 * 0.5) * (1 - 0.6 * 0.7)
        assert exact_reliability(diamond, 0, 3) == pytest.approx(expected)

    def test_source_equals_target(self, diamond):
        assert exact_reliability(diamond, 2, 2) == 1.0

    def test_disconnected(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.9)
        g.add_node(5)
        assert exact_reliability(g, 0, 5) == 0.0

    def test_node_not_in_graph(self, diamond):
        assert exact_reliability(diamond, 0, 99) == 0.0

    def test_certain_path_short_circuits(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.5)])
        assert exact_reliability(g, 0, 2) == 1.0

    def test_zero_probability_edge_ignored(self):
        g = UncertainGraph.from_edges([(0, 1, 0.0)])
        assert exact_reliability(g, 0, 1) == 0.0

    def test_directed_respects_orientation(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.5)
        assert exact_reliability(g, 0, 1) == pytest.approx(0.5)
        assert exact_reliability(g, 1, 0) == 0.0

    def test_bridge_graph(self):
        # Classic Wheatstone bridge with all p = 0.5: R = 0.5.
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]
        )
        assert exact_reliability(g, 0, 3) == pytest.approx(0.5)


class TestExtraEdges:
    def test_overlay_edge_included(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        g.add_node(2)
        assert exact_reliability(g, 0, 2, [(1, 2, 0.5)]) == pytest.approx(0.25)

    def test_overlay_does_not_mutate(self, diamond):
        before = diamond.num_edges
        exact_reliability(diamond, 0, 3, [(0, 3, 0.9)])
        assert diamond.num_edges == before

    def test_direct_overlay_edge(self, diamond):
        base = exact_reliability(diamond, 0, 3)
        with_direct = exact_reliability(diamond, 0, 3, [(0, 3, 0.9)])
        assert with_direct == pytest.approx(1 - (1 - base) * (1 - 0.9))


class TestFactoringMatchesEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_small_graphs(self, seed):
        import random

        rng = random.Random(seed)
        g = UncertainGraph(directed=bool(seed % 2))
        n = rng.randint(3, 6)
        for _ in range(rng.randint(2, 10)):
            u, v = rng.sample(range(n), 2)
            g.add_edge(u, v, round(rng.uniform(0.1, 0.95), 2))
        s, t = 0, n - 1
        g.add_node(s)
        g.add_node(t)
        assert exact_reliability(g, s, t) == pytest.approx(
            exact_reliability_by_enumeration(g, s, t), abs=1e-12
        )

    def test_max_edges_guard(self):
        g = path_graph(80)
        assign_fixed(g, 0.5)
        with pytest.raises(ValueError, match="factoring"):
            exact_reliability(g, 0, 79, max_edges=10)


class TestExactEstimator:
    def test_reliability_protocol(self, diamond):
        estimator = ExactEstimator()
        assert estimator.reliability(diamond, 0, 3) == pytest.approx(
            exact_reliability(diamond, 0, 3)
        )

    def test_reachability_from(self, diamond):
        estimator = ExactEstimator()
        reach = estimator.reachability_from(diamond, 0)
        assert reach[0] == 1.0
        # Direct edge 0.8 plus the 0-2-3-1 detour can only help.
        assert reach[1] >= 0.8
        assert set(reach) == {0, 1, 2, 3}

    def test_reachability_to_undirected(self, diamond):
        estimator = ExactEstimator()
        reach = estimator.reachability_to(diamond, 3)
        assert reach[3] == 1.0
        assert 0 in reach
