"""The stdlib HTTP endpoint: routing, parsing, hot-swap, coalescing.

Each test spins up a real :class:`repro.serve.ReliabilityServer` on a
free loopback port and talks to it with ``urllib`` from worker threads,
so the full parse → coalesce → execute → respond path is exercised.
"""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import ReliabilityQuery, Session, Workload
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.serve import (
    HttpError,
    ReliabilityServer,
    parse_graph,
    parse_maximize_query,
    parse_reliability_query,
)


def build_graph(num_nodes=40, num_edges=100, seed=5):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.3, 0.9, seed=seed + 1)


def serve(graph_or_session, coroutine_factory, **server_kwargs):
    """Start a server, run ``coroutine_factory(host, port)``, stop."""

    async def _main():
        server = ReliabilityServer(graph_or_session, **server_kwargs)
        host, port = await server.start()
        try:
            return await coroutine_factory(host, port)
        finally:
            await server.stop()

    return asyncio.run(_main())


async def request(method, host, port, path, payload=None):
    """One HTTP request from a worker thread; returns (status, body)."""

    def _call():
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    return await asyncio.get_running_loop().run_in_executor(None, _call)


def test_healthz_reports_graph_and_coalescer():
    graph = build_graph()
    graph.name = "http-test"

    async def scenario(host, port):
        return await request("GET", host, port, "/healthz")

    status, body = serve(graph, scenario, seed=3)
    assert status == 200
    assert body["status"] == "ok"
    assert body["graph"]["name"] == "http-test"
    assert body["graph"]["num_nodes"] == graph.num_nodes
    assert body["graph"]["num_edges"] == graph.num_edges
    assert body["graph"]["version"] == graph.version
    assert body["coalescer"]["requests"] == 0
    assert body["coalescer"]["max_batch"] == 64


def test_reliability_endpoint_matches_session_run():
    graph = build_graph()

    async def scenario(host, port):
        single = await request("POST", host, port, "/reliability",
                               {"source": 0, "target": 30, "samples": 500})
        fanout = await request("POST", host, port, "/reliability",
                               {"source": 0, "targets": [10, 30],
                                "samples": 500, "estimator": "mc"})
        return single, fanout

    (s1, single), (s2, fanout) = serve(graph, scenario, seed=9)
    assert s1 == s2 == 200

    session = Session(graph, seed=9)
    expected = session.run(Workload([
        ReliabilityQuery(0, target=30, samples=500)
    ]))[0]
    assert single["results"] == [{"target": 30, "value": expected.value}]
    assert single["provenance"]["estimator"] == "mc"
    assert single["provenance"]["samples"] == 500
    assert single["provenance"]["seed"] == 9

    assert [r["target"] for r in fanout["results"]] == [10, 30]
    # Multi-target queries answer every target inside the same worlds,
    # so the single-target value reappears exactly.
    assert fanout["results"][1]["value"] == expected.value


def test_maximize_endpoint_returns_solution():
    graph = build_graph(num_nodes=20, num_edges=50)

    async def scenario(host, port):
        return await request("POST", host, port, "/maximize",
                             {"source": 0, "target": 15, "k": 2,
                              "zeta": 0.5, "method": "hc"})

    status, body = serve(graph, scenario, seed=2, r=12, l=8)
    assert status == 200
    assert body["method"] == "hc"
    assert len(body["edges"]) <= 2
    assert body["gain"] == pytest.approx(
        body["new_reliability"] - body["base_reliability"]
    )
    assert body["provenance"]["estimator"] == "rss"


def test_graph_hot_swap_changes_answers_and_version():
    graph = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)],
                                      name="before")

    async def scenario(host, port):
        before = await request("POST", host, port, "/reliability",
                               {"source": 0, "target": 2, "samples": 1000})
        swap = await request("POST", host, port, "/graph",
                             {"edges": [[0, 1, 1.0], [1, 2, 1.0]],
                              "name": "after"})
        after = await request("POST", host, port, "/reliability",
                              {"source": 0, "target": 2, "samples": 1000})
        health = await request("GET", host, port, "/healthz")
        return before, swap, after, health

    (_, before), (swap_status, swap), (_, after), (_, health) = serve(
        graph, scenario, seed=4
    )
    assert before["results"][0]["value"] < 1.0
    assert swap_status == 200
    assert swap["status"] == "swapped"
    assert swap["graph"]["name"] == "after"
    assert after["results"][0]["value"] == 1.0
    assert health["graph"]["name"] == "after"
    assert health["coalescer"]["graph_swaps"] == 1


def test_concurrent_http_clients_coalesce_into_shared_worlds():
    graph = build_graph()
    num_clients = 6

    async def scenario(host, port):
        barrier = threading.Barrier(num_clients)

        def fire(target):
            barrier.wait()  # all clients hit the window together
            data = json.dumps({"source": 0, "target": target,
                               "samples": 400}).encode()
            with urllib.request.urlopen(
                f"http://{host}:{port}/reliability", data=data, timeout=10
            ) as response:
                return json.loads(response.read())

        loop = asyncio.get_running_loop()
        # A dedicated pool: the loop's default executor may have fewer
        # workers than clients (cpu-count dependent), which would
        # deadlock the barrier.
        from concurrent.futures import ThreadPoolExecutor
        with ThreadPoolExecutor(max_workers=num_clients) as pool:
            bodies = await asyncio.gather(*(
                loop.run_in_executor(pool, fire, 10 + i)
                for i in range(num_clients)
            ))
        _, health = await request("GET", host, port, "/healthz")
        return bodies, health

    bodies, health = serve(graph, scenario, seed=6, max_wait_ms=300.0)
    stats = health["coalescer"]
    assert stats["requests"] == num_clients
    assert stats["batches"] < num_clients  # coalescing actually happened
    # Members of a multi-query group carry the shared-world provenance
    # the quickstart example prints.
    assert any(b["provenance"]["shared_worlds"] for b in bodies)
    # Responses are bit-for-bit one-off session results regardless.
    session = Session(graph, seed=6)
    for i, body in enumerate(bodies):
        expected = session.run(Workload([
            ReliabilityQuery(0, target=10 + i, samples=400)
        ]))[0]
        assert body["results"][0]["value"] == expected.value


def test_error_statuses():
    graph = build_graph(num_nodes=10, num_edges=20)

    async def scenario(host, port):
        unknown = await request("GET", host, port, "/nope")
        wrong_method = await request("GET", host, port, "/reliability")
        missing_body = await request("POST", host, port, "/reliability")
        bad_estimator = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 1, "estimator": "definitely-not-real"},
        )
        both_targets = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 1, "targets": [2, 3]},
        )
        bad_graph = await request("POST", host, port, "/graph",
                                  {"edges": []})
        bad_method = await request(
            "POST", host, port, "/maximize",
            {"source": 0, "target": 1, "method": "not-a-method"},
        )
        bad_zeta = await request(
            "POST", host, port, "/maximize",
            {"source": 0, "target": 1, "zeta": 1.5},
        )
        return (unknown, wrong_method, missing_body, bad_estimator,
                both_targets, bad_graph, bad_method, bad_zeta)

    results = serve(graph, scenario)
    statuses = [status for status, _ in results]
    assert statuses == [404, 405, 400, 400, 400, 400, 400, 400]
    for _, body in results:
        assert "error" in body


def test_malformed_content_length_gets_400_not_dropped_connection():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        async def raw(payload: bytes) -> bytes:
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(payload)
            await writer.drain()
            response = await asyncio.wait_for(reader.read(4096), timeout=10)
            writer.close()
            return response

        bad_length = await raw(
            b"POST /reliability HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
        )
        negative = await raw(
            b"POST /reliability HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        )
        garbage_line = await raw(b"garbage\r\n\r\n")
        return bad_length, negative, garbage_line

    responses = serve(graph, scenario)
    for response in responses:
        assert response.startswith(b"HTTP/1.1 400")
        assert b"error" in response


def test_targets_as_json_string_gets_400():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        # A buggy client sending "12" must not be served nodes 1 and 2.
        return await request(
            "POST", host, port, "/reliability",
            {"source": 0, "targets": "12", "samples": 100},
        )

    status, body = serve(graph, scenario)
    assert status == 400
    assert "targets" in body["error"]


def test_idle_connection_is_closed_by_read_timeout():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        # Send nothing: the slow-loris guard must close on us instead
        # of pinning a server task forever.
        data = await asyncio.wait_for(reader.read(100), timeout=10)
        writer.close()
        return data

    data = serve(graph, scenario, read_timeout_s=0.2)
    assert data == b""  # server closed the idle connection


def test_query_string_is_ignored_in_routing():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        # Health checkers append cache-busting params.
        return await request("GET", host, port, "/healthz?probe=1")

    status, body = serve(graph, scenario)
    assert status == 200
    assert body["status"] == "ok"


def test_negative_seed_and_zero_samples_get_400_at_the_door():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        bad_seed = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 1, "seed": -1},
        )
        zero_samples = await request(
            "POST", host, port, "/maximize",
            {"source": 0, "target": 1, "samples": 0},
        )
        bad_zeta_range = await request(
            "POST", host, port, "/maximize",
            {"source": 0, "target": 1, "zeta": 1.5},
        )
        return bad_seed, zero_samples, bad_zeta_range

    results = serve(graph, scenario)
    assert [status for status, _ in results] == [400, 400, 400]
    # The same constraints hold at query construction, so direct
    # AsyncSession callers fail before entering a shared batch too.
    with pytest.raises(ValueError, match="seed"):
        ReliabilityQuery(0, target=1, seed=-1)
    from repro.api import MaximizeQuery
    with pytest.raises(ValueError, match="samples"):
        MaximizeQuery(0, 1, samples=0)
    with pytest.raises(ValueError, match="zeta"):
        MaximizeQuery(0, 1, zeta=1.5)


def test_transfer_encoding_is_rejected_not_desynced():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        # A chunked body whose content is a valid request line: if the
        # server ignored Transfer-Encoding it would execute /healthz as
        # a request the client never sent (request smuggling).
        writer.write(
            b"POST /reliability HTTP/1.1\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n"
            b"11\r\nGET /healthz HTTP/1.1\r\n0\r\n\r\n"
        )
        await writer.drain()
        response = await asyncio.wait_for(reader.read(8192), timeout=10)
        writer.close()
        return response

    response = serve(graph, scenario)
    assert response.startswith(b"HTTP/1.1 400")
    assert b"Transfer-Encoding" in response
    # The connection was closed — the smuggled line was never answered.
    assert response.count(b"HTTP/1.1") == 1


def test_float_and_bool_node_ids_get_400():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        truncating = await request(
            "POST", host, port, "/reliability",
            {"source": 0.9, "target": 5, "samples": 100},
        )
        boolean = await request(
            "POST", host, port, "/reliability",
            {"source": True, "target": 5, "samples": 100},
        )
        float_target_list = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "targets": [1.5, 2], "samples": 100},
        )
        bad_k = await request(
            "POST", host, port, "/maximize",
            {"source": 0, "target": 5, "k": 1.5},
        )
        bad_edge = await request(
            "POST", host, port, "/graph",
            {"edges": [[0.5, 1, 0.5]]},
        )
        return truncating, boolean, float_target_list, bad_k, bad_edge

    results = serve(graph, scenario)
    assert [status for status, _ in results] == [400] * 5


def test_parse_helpers_reject_bad_payloads():
    with pytest.raises(HttpError) as excinfo:
        parse_reliability_query({"target": 1})
    assert excinfo.value.status == 400

    with pytest.raises(HttpError):
        parse_reliability_query({"source": 0, "target": 1, "samples": 0})

    with pytest.raises(HttpError):
        parse_maximize_query({"source": 0, "target": 1, "k": 0})

    with pytest.raises(HttpError):
        parse_graph({"edges": [[0, 0, 0.5]]})  # self-loop

    query = parse_reliability_query(
        {"source": 0, "targets": [1, 2], "samples": 64, "seed": 5}
    )
    assert query.targets == (1, 2)
    assert query.seed == 5

    graph = parse_graph({"edges": [[0, 1, 0.5]], "directed": True})
    assert graph.directed
    assert graph.num_edges == 1


def test_server_over_existing_async_session_rejects_kwargs():
    graph = build_graph(num_nodes=8, num_edges=12)
    session = Session(graph, seed=1)
    with pytest.raises(TypeError):
        from repro.serve import AsyncSession
        ReliabilityServer(AsyncSession(session), seed=2)


def test_null_target_with_targets_and_duplicate_targets():
    graph = build_graph()

    async def scenario(host, port):
        # Clients serializing their full request struct send explicit
        # nulls for unused fields — that must parse like an absent key.
        null_target = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": None, "targets": [10, 30],
             "samples": 300, "seed": None},
        )
        # Duplicate targets must come back positionally aligned.
        duplicates = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "targets": [30, 30, 10], "samples": 300},
        )
        return null_target, duplicates

    (s1, null_target), (s2, duplicates) = serve(graph, scenario, seed=9)
    assert s1 == s2 == 200
    assert [r["target"] for r in null_target["results"]] == [10, 30]
    assert [r["target"] for r in duplicates["results"]] == [30, 30, 10]
    assert (duplicates["results"][0]["value"]
            == duplicates["results"][1]["value"])


def test_unbounded_header_stream_gets_400():
    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario(host, port):
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b"GET /healthz HTTP/1.1\r\n")
        # Stream far more header lines than the cap; the server must
        # answer 400 instead of buffering forever.
        for i in range(1000):
            writer.write(f"x-flood-{i}: junk\r\n".encode())
        try:
            await writer.drain()
        except ConnectionError:
            pass  # server already answered 400 and closed on us
        response = await asyncio.wait_for(reader.read(4096), timeout=10)
        writer.close()
        return response

    response = serve(graph, scenario)
    assert response.startswith(b"HTTP/1.1 400")


def test_retry_after_derives_from_coalescing_window():
    from repro.serve import retry_after_seconds

    # RFC 9110: integer delay-seconds, rounded up from window + beat,
    # never below one second.
    assert retry_after_seconds(2.0) == 1          # default window
    assert retry_after_seconds(400.0) == 1
    assert retry_after_seconds(1000.0) == 2       # 1.0s + beat rounds up
    assert retry_after_seconds(1500.0) == 2
    assert retry_after_seconds(2500.0) == 3
    assert retry_after_seconds(0.0) == 1


def test_shed_retry_after_tracks_configured_window():
    """A server with a long window advertises a matching Retry-After."""
    graph = build_graph(num_nodes=10, num_edges=20)

    async def scenario(host, port):
        def _call():
            req = urllib.request.Request(
                f"http://{host}:{port}/reliability",
                data=json.dumps({"source": 0, "target": 5,
                                 "samples": 200}).encode(),
                method="POST",
            )
            try:
                with urllib.request.urlopen(req, timeout=10) as response:
                    return response.status, dict(response.headers)
            except urllib.error.HTTPError as error:
                return error.code, dict(error.headers)

        loop = asyncio.get_running_loop()
        first = asyncio.ensure_future(loop.run_in_executor(None, _call))
        await asyncio.sleep(0.1)  # first request now occupies max_pending
        shed_status, shed_headers = await loop.run_in_executor(None, _call)
        await first
        return shed_status, shed_headers

    status, headers = serve(
        graph, scenario, max_pending=1, max_wait_ms=1200.0
    )
    assert status == 503
    # ceil(1.2s window + 0.1s beat) = 2, not the old hard-coded 1.
    assert headers["Retry-After"] == "2"


def test_drain_time_503_carries_retry_after():
    """SessionClosedError 503s advertise Retry-After too, not just sheds."""
    from repro.serve import AsyncSession

    graph = build_graph(num_nodes=10, num_edges=20)

    async def scenario():
        serving = AsyncSession(graph, max_wait_ms=1.0)
        server = ReliabilityServer(serving)
        host, port = await server.start()
        await serving.close()  # the pool behind the server went away
        status, headers = await asyncio.get_running_loop().run_in_executor(
            None, lambda: _raw_status_headers(host, port)
        )
        await server.stop()
        return status, headers

    def _raw_status_headers(host, port):
        req = urllib.request.Request(
            f"http://{host}:{port}/reliability",
            data=json.dumps({"source": 0, "target": 5,
                             "samples": 100}).encode(),
            method="POST",
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers)

    status, headers = asyncio.run(scenario())
    assert status == 503
    assert headers["Retry-After"] == "1"


def test_stop_leaves_caller_provided_async_session_open():
    from repro.serve import AsyncSession

    graph = build_graph(num_nodes=8, num_edges=12)

    async def scenario():
        serving = AsyncSession(graph, max_wait_ms=1.0)
        server = ReliabilityServer(serving)
        await server.start()
        await server.stop()
        # The caller's coalescer must survive the HTTP front end.
        result = await serving.reliability(0, target=3, samples=200)
        await serving.close()
        return result

    result = asyncio.run(scenario())
    assert len(result.values) == 1
