"""Tests for the convergence diagnostics (index of dispersion)."""

import pytest

from repro.graph import assign_uniform, erdos_renyi
from repro.reliability import (
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    estimator_bias_check,
    exact_reliability,
    index_of_dispersion,
    required_samples,
)


@pytest.fixture(scope="module")
def graph():
    g = erdos_renyi(25, num_edges=50, seed=1)
    return assign_uniform(g, 0.2, 0.8, seed=2)


@pytest.fixture(scope="module")
def queries(graph):
    return [(0, 20), (3, 15), (5, 24)]


def mc_factory(z, s):
    return MonteCarloEstimator(z, seed=s)


def rss_factory(z, s):
    return RecursiveStratifiedSampler(z, seed=s)


class TestIndexOfDispersion:
    def test_decreases_with_samples(self, graph, queries):
        rho_small = index_of_dispersion(mc_factory, graph, queries, 30, repeats=8)
        rho_large = index_of_dispersion(mc_factory, graph, queries, 600, repeats=8)
        assert rho_large < rho_small

    def test_requires_two_repeats(self, graph, queries):
        with pytest.raises(ValueError):
            index_of_dispersion(mc_factory, graph, queries, 50, repeats=1)

    def test_rss_disperses_no_worse(self, graph, queries):
        """The Table 6/7 claim: RSS converges with fewer samples."""
        z = 100
        rho_mc = index_of_dispersion(mc_factory, graph, queries, z, repeats=12)
        rho_rss = index_of_dispersion(rss_factory, graph, queries, z, repeats=12)
        assert rho_rss <= rho_mc * 1.2  # allow sampling noise


class TestRequiredSamples:
    def test_returns_converged_size(self, graph, queries):
        z, history = required_samples(
            mc_factory, graph, queries,
            candidate_sizes=(50, 200, 800, 3200),
            rho_threshold=5e-3,
            repeats=6,
        )
        assert z in history
        assert history[z] < 5e-3 or z == 3200

    def test_history_monotone_tendency(self, graph, queries):
        _, history = required_samples(
            mc_factory, graph, queries,
            candidate_sizes=(50, 800),
            rho_threshold=1e-9,  # force both to run
            repeats=6,
        )
        assert history[800] < history[50]


class TestBiasCheck:
    def test_mc_unbiased_on_diamond(self, diamond):
        truth = exact_reliability(diamond, 0, 3)
        mean, bias = estimator_bias_check(
            mc_factory, diamond, (0, 3), truth, num_samples=1500, repeats=10
        )
        assert bias < 0.02
