"""Run the library's embedded doctest examples."""

import doctest

import repro.graph.uncertain_graph


def test_uncertain_graph_doctests():
    results = doctest.testmod(repro.graph.uncertain_graph, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 3  # the class example actually ran


def test_readme_quickstart_snippet():
    """The README session quickstart must stay executable."""
    from repro import MaximizeQuery, ReliabilityQuery, Session, Workload
    from repro.graph import UncertainGraph

    g = UncertainGraph.from_edges([(0, 1, 0.4), (1, 2, 0.5), (0, 2, 0.1)])
    session = Session(g, seed=7)
    workload = Workload([
        ReliabilityQuery(0, target=2, samples=2000),
        ReliabilityQuery(0, targets=(1, 2), estimator="mc", samples=2000),
        ReliabilityQuery(1, target=2, estimator="rss", samples=500),
    ])
    results = session.run(workload)
    assert len(results) == 3
    assert "mc" in results[0].provenance.describe()

    result = session.maximize(MaximizeQuery(0, 2, k=2, zeta=0.5, method="be"))
    assert len(result.edges) <= 2
    assert result.gain >= 0


def test_readme_streaming_delta_snippet():
    """The README streaming-update (PATCH /edges) snippet stays true."""
    from repro.api import GraphDelta, ReliabilityQuery, Session, Workload
    from repro.graph import UncertainGraph

    g = UncertainGraph.from_edges([(0, 1, 0.4), (1, 2, 0.5), (0, 2, 0.1)])
    session = Session(g, seed=7)
    session.run(Workload([ReliabilityQuery(0, target=2, samples=2000)]))

    report = session.apply_delta(GraphDelta(
        upserts=((0, 1, 0.9), (2, 3, 0.5)),   # raise an edge, insert one
        deletes=((0, 2),),
    ))
    assert report.strategy == "repair"        # caches patched, not dropped

    # ... and the bit-for-bit claim the snippet makes below it.
    workload = Workload([ReliabilityQuery(0, target=2, samples=2000)])
    cold = Session(session.graph.copy(), seed=7)
    assert [r.values for r in session.run(workload)] == \
        [r.values for r in cold.run(workload)]


def test_readme_legacy_facade_snippet():
    """The legacy facade shim from the migration table keeps working."""
    from repro import ReliabilityMaximizer, UncertainGraph

    g = UncertainGraph()
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 2, 0.4)
    g.add_edge(2, 3, 0.7)

    solver = ReliabilityMaximizer(r=20, l=20)
    solution = solver.maximize(g, 0, 3, k=2, zeta=0.5)
    assert len(solution.edges) == 2
    assert solution.gain > 0


def test_api_module_doctests():
    import repro.api

    results = doctest.testmod(repro.api, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 3  # the workload example actually ran


def test_public_surface_docstring_examples():
    """Every example on the documented public surface stays runnable.

    The docs CI job keeps docstring *coverage* from regressing (ruff
    pydocstyle D1xx on repro.api / repro.serve); this test keeps the
    docstring *examples* truthful.
    """
    import repro.api.queries
    import repro.api.results
    import repro.api.session
    import repro.index.store
    import repro.reliability.registry
    import repro.serve.async_session
    import repro.serve.http

    for module, min_examples in [
        (repro.api.queries, 4),
        (repro.api.results, 4),
        (repro.api.session, 6),
        (repro.index.store, 4),
        (repro.reliability.registry, 4),
        (repro.serve.async_session, 6),
        (repro.serve.http, 5),
    ]:
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failure in {module.__name__}"
        assert results.attempted >= min_examples, (
            f"{module.__name__} lost its runnable examples "
            f"({results.attempted} < {min_examples})"
        )
