"""Run the library's embedded doctest examples."""

import doctest

import repro.graph.uncertain_graph


def test_uncertain_graph_doctests():
    results = doctest.testmod(repro.graph.uncertain_graph, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 3  # the class example actually ran


def test_readme_quickstart_snippet():
    """The README quickstart must stay executable."""
    from repro import ReliabilityMaximizer, UncertainGraph

    g = UncertainGraph()
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 2, 0.4)
    g.add_edge(2, 3, 0.7)

    solver = ReliabilityMaximizer(r=20, l=20)
    solution = solver.maximize(g, 0, 3, k=2, zeta=0.5)
    assert len(solution.edges) == 2
    assert solution.gain > 0
