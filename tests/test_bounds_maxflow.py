"""Tests for max-flow/min-cut and the analytic reliability bounds."""

import math

import pytest
from hypothesis import HealthCheck, given, settings

from repro.graph import UncertainGraph, assign_fixed, path_graph
from repro.paths import DinicMaxFlow, min_cut
from repro.reliability import (
    exact_reliability,
    reliability_bounds,
    reliability_lower_bound,
    reliability_upper_bound,
)

from strategies import small_uncertain_graphs


class TestDinic:
    def test_single_path_flow(self):
        flow = DinicMaxFlow()
        flow.add_edge(0, 1, 3.0)
        flow.add_edge(1, 2, 2.0)
        assert flow.max_flow(0, 2) == pytest.approx(2.0)

    def test_parallel_paths_add(self):
        flow = DinicMaxFlow()
        flow.add_edge(0, 1, 1.0)
        flow.add_edge(1, 3, 1.0)
        flow.add_edge(0, 2, 2.0)
        flow.add_edge(2, 3, 2.0)
        assert flow.max_flow(0, 3) == pytest.approx(3.0)

    def test_classic_bottleneck(self):
        flow = DinicMaxFlow()
        flow.add_edge(0, 1, 10.0)
        flow.add_edge(0, 2, 10.0)
        flow.add_edge(1, 2, 1.0)
        flow.add_edge(1, 3, 4.0)
        flow.add_edge(2, 3, 9.0)
        assert flow.max_flow(0, 3) == pytest.approx(13.0)

    def test_disconnected(self):
        flow = DinicMaxFlow()
        flow.add_edge(0, 1, 5.0)
        flow.add_edge(2, 3, 5.0)
        assert flow.max_flow(0, 3) == 0.0

    def test_source_equals_sink(self):
        flow = DinicMaxFlow()
        flow.add_edge(0, 1, 1.0)
        assert flow.max_flow(0, 0) == math.inf

    def test_negative_capacity_rejected(self):
        flow = DinicMaxFlow()
        with pytest.raises(ValueError):
            flow.add_edge(0, 1, -1.0)

    def test_min_cut_edges_identified(self):
        value, cut = min_cut(
            [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0)], 0, 3
        )
        assert value == pytest.approx(1.0)
        assert cut == [(1, 2)]

    def test_min_cut_undirected(self):
        value, cut = min_cut(
            [(0, 1, 2.0), (1, 2, 2.0), (0, 2, 1.0)], 0, 2, directed=False
        )
        assert value == pytest.approx(3.0)
        assert len(cut) == 2


class TestUpperBound:
    def test_series_graph_cut(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.4)])
        upper, cut = reliability_upper_bound(g, 0, 2)
        # Tightest single cut: the 0.4 edge -> bound 0.4.
        assert upper == pytest.approx(0.4)
        assert cut == [(1, 2)]

    def test_parallel_edges_cut(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.5), (2, 3, 0.5)]
        )
        upper, cut = reliability_upper_bound(g, 0, 3)
        # Both sides must be cut: 1 - 0.25 = 0.75.
        assert upper == pytest.approx(0.75)
        assert len(cut) == 2

    def test_certain_edge_infinite_capacity(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0)])
        upper, _ = reliability_upper_bound(g, 0, 1)
        assert upper == 1.0

    def test_disconnected_zero(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.9)
        g.add_node(5)
        upper, cut = reliability_upper_bound(g, 0, 5)
        assert upper == 0.0
        assert cut == []

    def test_upper_dominates_exact(self, diamond):
        upper, _ = reliability_upper_bound(diamond, 0, 3)
        assert upper >= exact_reliability(diamond, 0, 3) - 1e-12


class TestLowerBound:
    def test_single_path(self):
        g = path_graph(4)
        assign_fixed(g, 0.5)
        lower, paths = reliability_lower_bound(g, 0, 3)
        assert lower == pytest.approx(0.125)
        assert paths == [[0, 1, 2, 3]]

    def test_disjoint_paths_combine(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (1, 3, 0.5), (0, 2, 0.5), (2, 3, 0.5)]
        )
        lower, paths = reliability_lower_bound(g, 0, 3)
        assert lower == pytest.approx(1 - 0.75 * 0.75)
        assert len(paths) == 2

    def test_shared_edges_not_double_counted(self):
        # Two paths share edge (0, 1): only one can be kept.
        g = UncertainGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.5), (1, 3, 0.5), (2, 4, 0.9), (3, 4, 0.9)]
        )
        lower, paths = reliability_lower_bound(g, 0, 4)
        assert len(paths) == 1

    def test_unreachable(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(9)
        lower, paths = reliability_lower_bound(g, 0, 9)
        assert lower == 0.0 and paths == []

    def test_lower_bounded_by_exact(self, diamond):
        lower, _ = reliability_lower_bound(diamond, 0, 3)
        assert lower <= exact_reliability(diamond, 0, 3) + 1e-12


class TestBracket:
    def test_bridge_graph_bracket(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]
        )
        bracket = reliability_bounds(g, 0, 3)
        truth = exact_reliability(g, 0, 3)
        assert bracket.contains(truth)
        assert bracket.width < 0.5

    def test_source_equals_target(self, diamond):
        bracket = reliability_bounds(diamond, 1, 1)
        assert bracket.lower == bracket.upper == 1.0

    @given(graph=small_uncertain_graphs(max_nodes=5))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bracket_always_contains_truth(self, graph):
        nodes = sorted(graph.nodes())
        s, t = nodes[0], nodes[-1]
        bracket = reliability_bounds(graph, s, t)
        truth = exact_reliability(graph, s, t)
        assert bracket.contains(truth, slack=1e-9)
        assert 0.0 <= bracket.lower <= bracket.upper <= 1.0 + 1e-12
