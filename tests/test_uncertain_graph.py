"""Unit tests for the UncertainGraph substrate."""

import math

import pytest

from repro.graph import UncertainGraph


class TestConstruction:
    def test_empty_graph(self):
        g = UncertainGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_add_edge_creates_nodes(self):
        g = UncertainGraph()
        g.add_edge(1, 2, 0.5)
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.has_node(1) and g.has_node(2)

    def test_add_node_idempotent(self):
        g = UncertainGraph()
        g.add_node(7)
        g.add_node(7)
        assert g.num_nodes == 1

    def test_from_edges(self):
        g = UncertainGraph.from_edges([(0, 1, 0.3), (1, 2, 0.9)])
        assert g.num_edges == 2
        assert g.probability(0, 1) == 0.3

    def test_self_loop_rejected(self):
        g = UncertainGraph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(3, 3, 0.5)

    def test_probability_out_of_range_rejected(self):
        g = UncertainGraph()
        with pytest.raises(ValueError):
            g.add_edge(0, 1, 1.5)
        with pytest.raises(ValueError):
            g.add_edge(0, 1, -0.1)

    def test_overwrite_edge_probability(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.3)
        g.add_edge(0, 1, 0.8)
        assert g.num_edges == 1
        assert g.probability(0, 1) == 0.8

    def test_repr_mentions_size(self):
        g = UncertainGraph(name="toy")
        g.add_edge(0, 1, 0.5)
        text = repr(g)
        assert "toy" in text and "n=2" in text and "m=1" in text


class TestUndirectedSemantics:
    def test_edge_visible_both_directions(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.4)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert g.probability(1, 0) == 0.4

    def test_edges_reported_once(self):
        g = UncertainGraph()
        g.add_edge(2, 1, 0.4)
        assert list(g.edges()) == [(1, 2, 0.4)]

    def test_successors_symmetric(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.4)
        assert dict(g.successors(1)) == {0: 0.4}
        assert dict(g.predecessors(0)) == {1: 0.4}

    def test_remove_edge_both_directions(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.4)
        g.remove_edge(1, 0)
        assert g.num_edges == 0
        assert not g.has_edge(0, 1)


class TestDirectedSemantics:
    def test_direction_respected(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.4)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_antiparallel_edges_distinct(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.4)
        g.add_edge(1, 0, 0.7)
        assert g.num_edges == 2
        assert g.probability(0, 1) == 0.4
        assert g.probability(1, 0) == 0.7

    def test_reverse(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.4)
        g.add_node(9)
        rev = g.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.has_node(9)

    def test_reverse_of_undirected_is_self(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.4)
        assert g.reverse() is g

    def test_degree_counts_in_and_out(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.4)
        g.add_edge(2, 0, 0.5)
        assert g.degree(0) == 2
        assert g.weighted_degree(0) == pytest.approx(0.9)


class TestErrors:
    def test_probability_missing_edge(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.4)
        with pytest.raises(KeyError):
            g.probability(0, 2)

    def test_remove_missing_edge(self):
        g = UncertainGraph()
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_set_probability_missing_edge(self):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(KeyError):
            g.set_probability(0, 1, 0.5)

    def test_hop_distances_missing_source(self):
        g = UncertainGraph()
        with pytest.raises(KeyError):
            g.hop_distances(5)


class TestDerivedGraphs:
    def test_copy_independent(self, diamond):
        clone = diamond.copy()
        clone.add_edge(0, 3, 0.9)
        assert not diamond.has_edge(0, 3)
        assert clone.num_edges == diamond.num_edges + 1

    def test_with_edges_leaves_original(self, diamond):
        augmented = diamond.with_edges([(0, 3, 0.9)])
        assert augmented.has_edge(0, 3)
        assert not diamond.has_edge(0, 3)

    def test_subgraph_induced(self, diamond):
        sub = diamond.subgraph([0, 1, 3])
        assert sub.num_nodes == 3
        assert sub.has_edge(0, 1) and sub.has_edge(1, 3)
        assert not sub.has_edge(0, 2)

    def test_edge_subgraph(self, diamond):
        sub = diamond.edge_subgraph([(0, 1)])
        assert sub.num_edges == 1
        assert sub.probability(0, 1) == 0.8

    def test_edge_set_canonical(self):
        g = UncertainGraph()
        g.add_edge(2, 1, 0.4)
        assert g.edge_set() == {(1, 2)}


class TestTraversal:
    def test_hop_distances(self, diamond):
        dist = diamond.hop_distances(0)
        assert dist == {0: 0, 1: 1, 2: 1, 3: 2}

    def test_hop_distances_bounded(self, diamond):
        dist = diamond.hop_distances(0, max_hops=1)
        assert 3 not in dist

    def test_within_hops_excludes_source(self, diamond):
        assert 0 not in diamond.within_hops(0, 2)
        assert diamond.within_hops(0, 1) == {1, 2}

    def test_connected_components(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_edge(2, 3, 0.5)
        g.add_node(4)
        comps = sorted(g.connected_components(), key=min)
        assert comps == [{0, 1}, {2, 3}, {4}]

    def test_components_ignore_direction(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.5)
        g.add_edge(2, 1, 0.5)
        assert g.connected_components() == [{0, 1, 2}]


class TestPossibleWorlds:
    def test_world_count_and_probability_sum(self, diamond):
        worlds = list(diamond.possible_worlds())
        assert len(worlds) == 2 ** 4
        assert sum(p for _, p in worlds) == pytest.approx(1.0)

    def test_world_probability_formula(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.25)
        worlds = dict(
            (frozenset(present), prob) for present, prob in g.possible_worlds()
        )
        assert worlds[frozenset({(0, 1)})] == pytest.approx(0.25)
        assert worlds[frozenset()] == pytest.approx(0.75)

    def test_refuses_large_graphs(self):
        g = UncertainGraph()
        for i in range(30):
            g.add_edge(i, i + 1, 0.5)
        with pytest.raises(ValueError, match="possible worlds"):
            list(g.possible_worlds())

    def test_world_probability_method(self, diamond):
        full = {(0, 1), (1, 3), (0, 2), (2, 3)}
        expected = 0.8 * 0.5 * 0.6 * 0.7
        assert diamond.world_probability(full) == pytest.approx(expected)


class TestMisc:
    def test_log_weight(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        assert g.log_weight(0, 1) == pytest.approx(math.log(2))

    def test_log_weight_zero_probability(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.0)
        assert g.log_weight(0, 1) == math.inf

    def test_missing_edges_undirected(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(2)
        assert sorted(g.missing_edges()) == [(0, 2), (1, 2)]

    def test_missing_edges_directed(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.5)
        assert sorted(g.missing_edges()) == [(1, 0)]

    def test_len_and_contains(self, diamond):
        assert len(diamond) == 4
        assert 2 in diamond
        assert 9 not in diamond
