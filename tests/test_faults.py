"""Unit tests for the deterministic fault-injection registry.

The registry's own contract, independent of any seam: profile parsing,
seeded reproducibility, probability/count/latency semantics, pattern
matching, composable/exclusive ``inject`` blocks, and the
zero-when-disarmed guarantee every production code path relies on.
"""

import time

import pytest

from repro import faults
from repro.faults import FaultError, FaultSpec, ProfileError
from repro.faults.registry import _ARMED  # noqa: F401 - existence check


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


# ----------------------------------------------------------------------
# profile parsing
# ----------------------------------------------------------------------

def test_parse_profile_full_syntax():
    seed, specs = faults.parse_profile(
        "seed=7; store.*:p=0.25,count=3,latency_ms=1.5; serve.worker"
    )
    assert seed == 7
    assert specs == (
        FaultSpec("store.*", p=0.25, count=3, latency_ms=1.5),
        FaultSpec("serve.worker"),
    )


def test_parse_profile_latency_only_clause():
    _, specs = faults.parse_profile("store.catalog:latency_ms=2,fail=0")
    assert specs[0].fail is False
    assert specs[0].latency_ms == 2.0


def test_parse_profile_empty_clauses_skipped():
    seed, specs = faults.parse_profile(" ; ;seed=3; ")
    assert seed == 3
    assert specs == ()


@pytest.mark.parametrize("text", [
    "seed=abc",
    "store.catalog:nope=1",
    "store.catalog:p=2.0",
    "store.catalog:p",
    "store.catalog:count=0",
    "store.catalog:latency_ms=-1",
    "store.catalog:fail=0",        # fail=0 with no latency injects nothing
    "store.catalog:fail=maybe",
    "Bad.Name",
    "noDots",
])
def test_parse_profile_rejects_bad_input(text):
    with pytest.raises(ProfileError):
        faults.parse_profile(text)


def test_env_arming_round_trip(monkeypatch):
    from repro.faults import registry

    monkeypatch.setenv(registry.ENV_VAR, "seed=5;store.catalog:p=0.5")
    registry._arm_from_env()
    assert faults.armed()
    faults.disarm()
    monkeypatch.setenv(registry.ENV_VAR, "   ")
    registry._arm_from_env()
    assert not faults.armed()
    monkeypatch.setenv(registry.ENV_VAR, "p=:::")
    with pytest.raises(ProfileError):
        registry._arm_from_env()


# ----------------------------------------------------------------------
# firing semantics
# ----------------------------------------------------------------------

def test_disarmed_fault_point_is_a_noop():
    assert not faults.armed()
    faults.fault_point("store.catalog", RuntimeError)
    assert faults.fires() == 0
    assert faults.seam_report() == {}


def test_always_fail_spec_raises_fault_error():
    faults.arm("store.catalog")
    with pytest.raises(FaultError, match="store.catalog"):
        faults.fault_point("store.catalog")
    assert faults.fires("store.catalog") == 1


def test_error_class_override():
    class CustomError(Exception):
        pass

    faults.arm("store.catalog")
    with pytest.raises(CustomError):
        faults.fault_point("store.catalog", CustomError)


def test_non_matching_seam_untouched():
    faults.arm("store.catalog")
    faults.fault_point("serve.worker")  # no match: must not raise
    assert faults.fires() == 0


def test_wildcard_pattern_matches_prefix():
    faults.arm("store.*")
    with pytest.raises(FaultError):
        faults.fault_point("store.load_batch")
    faults.fault_point("session.store.load_batch")  # '*' stops at dots? no —
    # fnmatch '*' crosses dots, but the pattern anchors at the start, so
    # the 'session.' prefix never matches 'store.*'.
    assert faults.fires() == 1


def test_count_caps_total_fires():
    faults.arm("serve.worker:count=2")
    for _ in range(2):
        with pytest.raises(FaultError):
            faults.fault_point("serve.worker")
    faults.fault_point("serve.worker")  # budget exhausted: no-op
    assert faults.fires("serve.worker") == 2


def test_probability_stream_is_deterministic_per_seed():
    def fire_mask(seed):
        faults.arm("serve.worker:p=0.4", seed=seed)
        mask = []
        for _ in range(64):
            try:
                faults.fault_point("serve.worker")
                mask.append(False)
            except FaultError:
                mask.append(True)
        return mask

    first, second = fire_mask(11), fire_mask(11)
    assert first == second                      # same seed, same faults
    assert 0 < sum(first) < 64                  # actually probabilistic
    assert fire_mask(12) != first               # seed participates


def test_latency_only_spec_sleeps_without_raising():
    faults.arm("serve.worker:latency_ms=30,fail=0")
    start = time.perf_counter()
    faults.fault_point("serve.worker")
    elapsed = time.perf_counter() - start
    assert elapsed >= 0.025
    assert faults.fires("serve.worker") == 1


def test_first_failing_spec_wins_in_order():
    faults.arm([
        FaultSpec("store.*", latency_ms=0.01, fail=False),
        FaultSpec("store.catalog"),
    ])
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")
    # Both specs matched: the latency-only one and the failing one.
    assert faults.fires("store.catalog") == 2


# ----------------------------------------------------------------------
# inject() context manager
# ----------------------------------------------------------------------

def test_inject_scopes_arming_to_the_block():
    assert not faults.armed()
    with faults.inject("store.catalog"):
        assert faults.armed()
        with pytest.raises(FaultError):
            faults.fault_point("store.catalog")
    assert not faults.armed()
    faults.fault_point("store.catalog")  # disarmed again: no-op
    assert faults.fires() == 0


def test_inject_composes_with_ambient_specs():
    faults.arm("store.catalog", seed=1)
    with faults.inject("serve.worker"):
        with pytest.raises(FaultError):
            faults.fault_point("store.catalog")  # ambient spec still active
        with pytest.raises(FaultError):
            faults.fault_point("serve.worker")
    assert faults.armed()  # ambient profile restored
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")
    faults.fault_point("serve.worker")  # injected spec gone


def test_exclusive_inject_suspends_ambient_specs():
    faults.arm("store.catalog", seed=1)
    with faults.inject("serve.worker", exclusive=True):
        faults.fault_point("store.catalog")  # suspended: no-op
        with pytest.raises(FaultError):
            faults.fault_point("serve.worker")
        assert faults.seam_report() == {"serve.worker": 1}
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")  # ambient restored


def test_inject_restores_counters_on_exit():
    faults.arm("store.catalog")
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")
    before = faults.seam_report()
    with faults.inject("serve.worker"):
        with pytest.raises(FaultError):
            faults.fault_point("serve.worker")
    assert faults.seam_report() == before


def test_spec_validation_errors():
    with pytest.raises(ProfileError):
        FaultSpec("store.catalog", p=1.5)
    with pytest.raises(ProfileError):
        FaultSpec("store.catalog", count=-1)
    with pytest.raises(ProfileError):
        FaultSpec("UPPER.case")


def test_reset_counters_keeps_specs_armed():
    faults.arm("store.catalog")
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")
    faults.reset_counters()
    assert faults.fires() == 0
    with pytest.raises(FaultError):
        faults.fault_point("store.catalog")
