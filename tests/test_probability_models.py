"""Tests for edge-probability assignment and new-edge models."""

import pytest

from repro.graph import (
    UncertainGraph,
    assign_distance_decay,
    assign_exponential_counts,
    assign_fixed,
    assign_inverse_out_degree,
    assign_snapshot_frequency,
    assign_uniform,
    erdos_renyi,
    fixed_new_edge_probability,
    normal_new_edge_probability,
    uniform_new_edge_probability,
)


@pytest.fixture
def base_graph():
    return erdos_renyi(50, num_edges=120, seed=0)


class TestAssignment:
    def test_fixed(self, base_graph):
        assign_fixed(base_graph, 0.33)
        assert all(p == 0.33 for _, _, p in base_graph.edges())

    def test_uniform_range(self, base_graph):
        assign_uniform(base_graph, 0.0, 0.6, seed=1)
        probs = [p for _, _, p in base_graph.edges()]
        assert all(0.0 < p <= 0.6 for p in probs)
        assert max(probs) > 0.4  # spread over the range

    def test_uniform_deterministic(self, base_graph):
        a = assign_uniform(base_graph.copy(), seed=5)
        b = assign_uniform(base_graph.copy(), seed=5)
        assert [e for e in a.edges()] == [e for e in b.edges()]

    def test_inverse_out_degree(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        assign_inverse_out_degree(g)
        # Node 0 has out-degree 2 -> its edges get probability 1/2.
        assert g.probability(0, 1) == pytest.approx(0.5)

    def test_exponential_counts_range(self, base_graph):
        assign_exponential_counts(base_graph, mu=20.0, mean_count=3.0, seed=2)
        probs = [p for _, _, p in base_graph.edges()]
        assert all(0.0 < p < 1.0 for p in probs)
        # 1 - exp(-t/20) with small t stays low.
        assert sum(probs) / len(probs) < 0.5

    def test_exponential_explicit_counts(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 1.0)
        assign_exponential_counts(g, mu=20.0, counts={(0, 1): 20})
        import math

        assert g.probability(0, 1) == pytest.approx(1 - math.exp(-1))

    def test_snapshot_frequency(self, base_graph):
        assign_snapshot_frequency(base_graph, num_snapshots=100, seed=3)
        probs = [p for _, _, p in base_graph.edges()]
        assert all(0.0 < p <= 1.0 for p in probs)
        # Frequencies are multiples of 1/100.
        assert all(abs(p * 100 - round(p * 100)) < 1e-9 for p in probs)

    def test_distance_decay_cutoff(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        positions = {0: (0.0, 0.0), 1: (5.0, 0.0), 2: (100.0, 0.0)}
        assign_distance_decay(g, positions, cutoff=20.0, noise=0.0, seed=0)
        assert g.probability(0, 1) > 0.4
        assert g.probability(0, 2) < 1e-6


class TestNewEdgeModels:
    def test_fixed_model(self):
        model = fixed_new_edge_probability(0.5)
        assert model(3, 9) == 0.5

    def test_fixed_model_validates(self):
        with pytest.raises(ValueError):
            fixed_new_edge_probability(0.0)
        with pytest.raises(ValueError):
            fixed_new_edge_probability(1.5)

    def test_uniform_model_deterministic_per_pair(self):
        model = uniform_new_edge_probability(0.2, 0.6, seed=1)
        assert model(3, 9) == model(3, 9)
        assert 0.2 <= model(3, 9) <= 0.6

    def test_uniform_model_varies_across_pairs(self):
        model = uniform_new_edge_probability(0.0, 1.0, seed=1)
        values = {model(u, v) for u in range(5) for v in range(5, 10)}
        assert len(values) > 10

    def test_normal_model_clipped(self):
        model = normal_new_edge_probability(mean=0.5, std=0.038, seed=2)
        values = [model(u, u + 1) for u in range(200)]
        assert all(0.0 < v <= 1.0 for v in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.02
