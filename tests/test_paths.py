"""Tests for path algorithms: Dijkstra MRP, Yen top-l, layered search."""

import math

import pytest

from repro.graph import UncertainGraph
from repro.paths import (
    best_improvement,
    constrained_most_reliable_paths,
    hop_shortest_path,
    most_reliable_path,
    path_probability,
    paths_induced_edges,
    reliability_dijkstra_all,
    top_l_most_reliable_paths,
)


class TestMostReliablePath:
    def test_picks_higher_product(self, diamond):
        path, prob = most_reliable_path(diamond, 0, 3)
        assert path == [0, 2, 3]
        assert prob == pytest.approx(0.42)

    def test_longer_but_stronger_path_wins(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.1), (0, 2, 0.9), (2, 3, 0.9), (3, 1, 0.9)]
        )
        path, prob = most_reliable_path(g, 0, 1)
        assert path == [0, 2, 3, 1]
        assert prob == pytest.approx(0.9 ** 3)

    def test_source_is_target(self, diamond):
        path, prob = most_reliable_path(diamond, 1, 1)
        assert path == [1] and prob == 1.0

    def test_unreachable(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(5)
        path, prob = most_reliable_path(g, 0, 5)
        assert path is None and prob == 0.0

    def test_zero_probability_edges_skipped(self):
        g = UncertainGraph.from_edges([(0, 1, 0.0)])
        path, prob = most_reliable_path(g, 0, 1)
        assert path is None

    def test_overlay_edges(self):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        path, prob = most_reliable_path(g, 0, 1, [(0, 1, 0.7)])
        assert path == [0, 1]
        assert prob == pytest.approx(0.7)

    def test_forbidden_node(self, diamond):
        path, prob = most_reliable_path(diamond, 0, 3, forbidden_nodes={2})
        assert path == [0, 1, 3]

    def test_forbidden_edge(self, diamond):
        path, _ = most_reliable_path(
            diamond, 0, 3, forbidden_edges={(0, 2), (2, 0)}
        )
        assert path == [0, 1, 3]

    def test_directed_orientation(self):
        g = UncertainGraph(directed=True)
        g.add_edge(1, 0, 0.9)
        path, prob = most_reliable_path(g, 0, 1)
        assert path is None


class TestPathProbability:
    def test_product(self, diamond):
        assert path_probability(diamond, [0, 1, 3]) == pytest.approx(0.4)

    def test_single_node(self, diamond):
        assert path_probability(diamond, [2]) == 1.0

    def test_extra_probs(self, diamond):
        assert path_probability(
            diamond, [0, 3], {(0, 3): 0.9}
        ) == pytest.approx(0.9)

    def test_extra_probs_reverse_orientation(self, diamond):
        # Undirected: key stored as (3, 0) must be found for hop 0 -> 3.
        assert path_probability(
            diamond, [0, 3], {(3, 0): 0.9}
        ) == pytest.approx(0.9)

    def test_missing_edge_raises(self, diamond):
        with pytest.raises(KeyError):
            path_probability(diamond, [0, 3])


class TestReliabilityDijkstraAll:
    def test_forward(self, diamond):
        best = reliability_dijkstra_all(diamond, 0)
        assert best[0] == 1.0
        assert best[3] == pytest.approx(0.42)

    def test_reverse_directed(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.4)
        to_2 = reliability_dijkstra_all(g, 2, reverse=True)
        assert to_2[0] == pytest.approx(0.2)

    def test_missing_source(self, diamond):
        assert reliability_dijkstra_all(diamond, 77) == {}


class TestHopShortestPath:
    def test_bfs_path(self, diamond):
        path = hop_shortest_path(diamond, 0, 3)
        assert len(path) == 3  # either branch of the diamond

    def test_unreachable(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(4)
        assert hop_shortest_path(g, 0, 4) is None


class TestTopLPaths:
    def test_diamond_both_paths(self, diamond):
        paths = top_l_most_reliable_paths(diamond, 0, 3, 5)
        assert [p for p, _ in paths] == [[0, 2, 3], [0, 1, 3]]
        probs = [pr for _, pr in paths]
        assert probs == sorted(probs, reverse=True)

    def test_l_limits_output(self, diamond):
        paths = top_l_most_reliable_paths(diamond, 0, 3, 1)
        assert len(paths) == 1

    def test_invalid_l(self, diamond):
        with pytest.raises(ValueError):
            top_l_most_reliable_paths(diamond, 0, 3, 0)

    def test_no_paths(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        g.add_node(5)
        assert top_l_most_reliable_paths(g, 0, 5, 3) == []

    def test_paths_are_simple(self):
        g = UncertainGraph.from_edges(
            [(0, 1, 0.9), (1, 2, 0.9), (2, 0, 0.9), (2, 3, 0.9), (1, 3, 0.2)]
        )
        for path, _ in top_l_most_reliable_paths(g, 0, 3, 10):
            assert len(path) == len(set(path))

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bruteforce_enumeration(self, seed):
        import random

        rng = random.Random(seed)
        g = UncertainGraph()
        n = 6
        for u in range(n):
            g.add_node(u)
        for _ in range(10):
            u, v = rng.sample(range(n), 2)
            g.add_edge(u, v, round(rng.uniform(0.1, 0.95), 2))

        def all_simple_paths(s, t):
            found = []

            def dfs(node, visited, prob):
                if node == t:
                    found.append(prob)
                    return
                for nbr, p in g.successors(node).items():
                    if nbr not in visited:
                        dfs(nbr, visited | {nbr}, prob * p)

            dfs(s, {s}, 1.0)
            return sorted(found, reverse=True)

        brute = all_simple_paths(0, n - 1)
        yen = [pr for _, pr in top_l_most_reliable_paths(g, 0, n - 1, 50)]
        assert len(yen) == len(brute)
        for a, b in zip(yen, brute, strict=True):
            assert a == pytest.approx(b)

    def test_overlay_candidates_usable(self, diamond):
        paths = top_l_most_reliable_paths(diamond, 0, 3, 5, [(0, 3, 0.99)])
        assert paths[0][0] == [0, 3]

    def test_induced_edges(self, diamond):
        paths = [p for p, _ in top_l_most_reliable_paths(diamond, 0, 3, 5)]
        edges = paths_induced_edges(diamond, paths)
        assert edges == {(0, 2), (2, 3), (0, 1), (1, 3)}


class TestConstrainedPaths:
    def test_zero_budget_equals_mrp(self, diamond):
        result = constrained_most_reliable_paths(diamond, 0, 3, 0, [])
        assert result[0].nodes == [0, 2, 3]
        assert result[0].probability == pytest.approx(0.42)

    def test_red_edge_improves(self, diamond):
        result = constrained_most_reliable_paths(
            diamond, 0, 3, 1, [(0, 3, 0.9)]
        )
        assert result[1].nodes == [0, 3]
        assert result[1].red_edges == [(0, 3)]

    def test_red_budget_enforced(self):
        g = UncertainGraph()
        for u in range(4):
            g.add_node(u)
        reds = [(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)]
        result = constrained_most_reliable_paths(g, 0, 3, 2, reds)
        # Three red edges are needed; budget 2 cannot reach t.
        assert 3 not in result and 2 not in result and 1 not in result

    def test_exactly_j_red_edges_tracked(self):
        g = UncertainGraph()
        g.add_edge(1, 2, 0.5)
        for u in (0, 3):
            g.add_node(u)
        reds = [(0, 1, 0.8), (2, 3, 0.8)]
        result = constrained_most_reliable_paths(g, 0, 3, 2, reds)
        assert result[2].red_edges == [(0, 1), (2, 3)]
        assert result[2].probability == pytest.approx(0.8 * 0.5 * 0.8)

    def test_negative_budget_rejected(self, diamond):
        with pytest.raises(ValueError):
            constrained_most_reliable_paths(diamond, 0, 3, -1, [])

    def test_best_improvement_none_when_no_gain(self, diamond):
        result = constrained_most_reliable_paths(
            diamond, 0, 3, 1, [(0, 3, 0.1)]
        )
        assert best_improvement(result) is None

    def test_best_improvement_prefers_lowest_weight(self, diamond):
        result = constrained_most_reliable_paths(
            diamond, 0, 3, 2, [(0, 3, 0.9), (1, 3, 0.99)]
        )
        best = best_improvement(result)
        assert best is not None
        assert best.probability > 0.42

    def test_directed_red_edges(self):
        g = UncertainGraph(directed=True)
        g.add_node(0)
        g.add_node(1)
        result = constrained_most_reliable_paths(g, 0, 1, 1, [(1, 0, 0.9)])
        assert 1 not in result  # red edge points the wrong way

    def test_weight_property(self, diamond):
        result = constrained_most_reliable_paths(diamond, 0, 3, 0, [])
        assert result[0].weight == pytest.approx(-math.log(0.42))
