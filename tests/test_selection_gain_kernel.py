"""Tests for the batched selection-gain kernel (engine/selection.py).

The kernel's contract is *exactness against the shared batch*: for any
candidate edge, the gain it reports must equal the brute-force estimate
obtained by appending the candidate (with the same coin row) to the
world batch and re-running the full batch BFS.  These tests pin that
identity on directed and undirected graphs, the reverse-plan cache
semantics, and the routing/backend plumbing around the kernel.
"""

import numpy as np
import pytest

from repro.graph import (
    UncertainGraph,
    assign_uniform,
    erdos_renyi,
    fixed_new_edge_probability,
)
from repro.engine import (
    SelectionGainKernel,
    batch_reach,
    compile_plan,
    compile_reverse_plan,
    extend_batch,
    extend_with_overlay,
    popcount,
    sample_worlds,
)
from repro.reliability import make_estimator
from repro.baselines import hill_climbing, individual_top_k

Z = 192  # deliberately not a multiple of 64: pad bits must stay clean
SEED = 13
ZETA = fixed_new_edge_probability(0.5)


def build_graph(directed: bool, n: int = 16, m: int = 30, seed: int = 4):
    graph = erdos_renyi(n, num_edges=m, seed=seed, directed=directed)
    return assign_uniform(graph, 0.1, 0.7, seed=seed + 1)


def candidate_pool(n: int):
    """Candidates covering the tricky cases: duplicates (exact ties),
    unknown endpoints, certain and impossible edges."""
    return [
        (0, n - 1, 0.4),
        (2, n - 3, 0.8),
        (2, n - 3, 0.8),        # duplicate: must draw identical coins
        (3, n + 1000, 0.9),     # unknown endpoint: structurally zero
        (5, 7, 0.0),            # impossible edge
        (1, n - 2, 1.0),        # certain edge
        (n - 3, 2, 0.8),        # reversed orientation of candidate 1
    ]


def brute_force_gain(plan, batch, src, dst, edge, row):
    """Reference gain: append the candidate + its coin row, full BFS."""
    base = int(popcount(batch_reach(plan, batch, [src])[dst]).sum())
    plan2 = extend_with_overlay(plan, [edge])
    batch2 = extend_batch(batch, row[None, :])
    hits = int(popcount(batch_reach(plan2, batch2, [src])[dst]).sum())
    return hits - base


class TestGainIdentity:
    @pytest.mark.parametrize("directed", [False, True])
    def test_individual_gains_match_brute_force(self, directed):
        graph = build_graph(directed)
        n = graph.num_nodes
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        candidates = candidate_pool(n)
        gains = kernel.individual_gains(0, n - 1, candidates)

        plan = compile_plan(graph)
        batch = sample_worlds(plan, Z, np.random.default_rng(SEED))
        src, dst = plan.node_index(0), plan.node_index(n - 1)
        for j, edge in enumerate(candidates):
            row = kernel.candidate_rows(0, [edge])[0]
            assert gains[j] == brute_force_gain(
                plan, batch, src, dst, edge, row
            ), f"candidate {j} ({edge}) gain mismatch"

    @pytest.mark.parametrize("directed", [False, True])
    def test_greedy_rounds_match_in_batch_brute_force(self, directed):
        """Every round's winner equals the naive shared-batch greedy
        (per candidate: extend plan + batch, full BFS, argmax)."""
        graph = build_graph(directed, seed=9)
        n = graph.num_nodes
        k = 3
        candidates = candidate_pool(n)
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        selected = kernel.greedy_select(0, n - 1, k, candidates)

        # Naive re-implementation sharing the same batch and coin rows.
        plan = compile_plan(graph)
        batch = sample_worlds(plan, Z, np.random.default_rng(SEED))
        src, dst = plan.node_index(0), plan.node_index(n - 1)
        remaining = list(range(len(candidates)))
        naive = []
        for round_index in range(k):
            gains = []
            rows = []
            for j in remaining:
                row = kernel.candidate_rows(round_index, [candidates[j]])[0]
                rows.append(row)
                gains.append(
                    brute_force_gain(
                        plan, batch, src, dst, candidates[j], row
                    )
                )
            best = int(np.argmax(gains))
            j = remaining.pop(best)
            naive.append(candidates[j])
            plan = extend_with_overlay(plan, [candidates[j]])
            batch = extend_batch(batch, rows[best][None, :])
        assert selected == naive

    def test_duplicate_candidates_tie_exactly(self):
        graph = build_graph(False)
        n = graph.num_nodes
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        gains = kernel.individual_gains(0, n - 1, candidate_pool(n))
        assert gains[1] == gains[2]

    def test_undirected_orientations_tie_exactly(self):
        """(u, v) and (v, u) are one undirected edge: both orientations
        must draw the same canonical coin row (exact tie -> lowest
        index), matching the orientation-independent scalar path."""
        graph = build_graph(False)
        n = graph.num_nodes
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        pool = candidate_pool(n)
        gains = kernel.individual_gains(0, n - 1, pool)
        assert gains[1] == gains[6]  # (2, n-3) vs (n-3, 2)
        # On directed graphs the orientations are distinct edges and
        # must stay independent.
        directed = build_graph(True)
        dk = SelectionGainKernel(directed, Z, seed=SEED)
        rows = dk.candidate_rows(0, [(2, 9, 0.8), (9, 2, 0.8)])
        assert not np.array_equal(rows[0], rows[1])

    def test_reversed_duplicate_keeps_lowest_index_every_seed(self):
        """Two certain chains, candidates [(2, 3), (3, 2)]: one
        undirected edge in two orientations.  The kernel ties exactly
        (canonical coin rows) and must keep the lowest index on *every*
        seed — the scalar loop's estimates for the two orientations
        come from an advancing stream, so only the kernel makes this
        tie deterministic under sampling noise; with certain candidates
        (p=1.0, exact scalar estimates) both paths must agree."""
        for seed in range(6):
            g = UncertainGraph()
            for u, v in ((0, 1), (1, 2), (3, 4), (4, 5)):
                g.add_edge(u, v, 1.0)
            batched = hill_climbing(
                g, 0, 5, 1, [(2, 3), (3, 2)], ZETA,
                make_estimator("mc", 256, seed=seed),
            )
            assert batched == [(2, 3, 0.5)]
            certain = fixed_new_edge_probability(1.0)
            scalar = hill_climbing(
                g, 0, 5, 1, [(2, 3), (3, 2)], certain,
                make_estimator("mc", 256, seed=seed), vectorized=False,
            )
            vectorized = hill_climbing(
                g, 0, 5, 1, [(2, 3), (3, 2)], certain,
                make_estimator("mc", 256, seed=seed),
            )
            assert scalar == vectorized == [(2, 3, 1.0)]

    def test_gains_nonnegative_and_degenerate_queries(self):
        graph = build_graph(False)
        n = graph.num_nodes
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        pool = candidate_pool(n)
        assert (kernel.individual_gains(0, n - 1, pool) >= 0).all()
        # s == t and unknown endpoints: constant objective, zero gains,
        # greedy degrades to first-k in candidate order.
        assert (kernel.individual_gains(0, 0, pool) == 0).all()
        assert (kernel.individual_gains(0, n + 999, pool) == 0).all()
        assert kernel.greedy_select(0, 0, 2, pool) == pool[:2]
        assert kernel.top_k(0, n + 999, 2, pool) == pool[:2]

    def test_invalid_budget(self):
        graph = build_graph(False)
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        with pytest.raises(ValueError):
            kernel.greedy_select(0, 1, 0, [])
        with pytest.raises(ValueError):
            kernel.top_k(0, 1, 0, [])


class TestGreedySelectMulti:
    def test_single_pair_equals_single_objective(self):
        graph = build_graph(True, seed=21)
        n = graph.num_nodes
        pool = candidate_pool(n)
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        single = kernel.greedy_select(0, n - 1, 3, pool)
        multi = kernel.greedy_select_multi([(0, n - 1)], 3, pool, "avg")
        assert single == multi

    @pytest.mark.parametrize("aggregate", ["avg", "min", "max"])
    def test_aggregates_run_and_respect_budget(self, aggregate):
        graph = build_graph(False, seed=22)
        n = graph.num_nodes
        pairs = [(0, n - 1), (1, n - 2), (3, 3)]  # incl. s == t pair
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        edges = kernel.greedy_select_multi(
            pairs, 2, candidate_pool(n), aggregate
        )
        assert len(edges) == 2

    def test_unknown_aggregate_rejected(self):
        graph = build_graph(False)
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        with pytest.raises(ValueError, match="aggregate"):
            kernel.greedy_select_multi([(0, 1)], 1, [(0, 2, 0.5)], "sum")

    def test_duplicate_pairs_collapse_like_scalar_objective(self):
        """The scalar path's dict-valued objective counts each distinct
        pair once; the kernel must match, not weight duplicates."""
        graph = build_graph(False, seed=23)
        n = graph.num_nodes
        pool = candidate_pool(n)
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        unique = [(0, n - 1), (1, n - 2)]
        doubled = [(0, n - 1), (0, n - 1), (1, n - 2), (0, n - 1)]
        assert kernel.greedy_select_multi(
            doubled, 3, pool, "avg"
        ) == kernel.greedy_select_multi(unique, 3, pool, "avg")

    def test_multi_driver_rejects_unknown_aggregate_on_both_paths(self):
        from repro.experiments.tables import _multi_hill_climbing

        graph = build_graph(False)
        n = graph.num_nodes
        for name in ("mc", "rss"):  # kernel path and scalar path
            with pytest.raises(ValueError, match="aggregate"):
                _multi_hill_climbing(
                    graph, [(0, n - 1)], 1, [(0, 5)],
                    ZETA, make_estimator(name, 64), "sum",
                )


class TestReversePlan:
    def test_reverse_view_is_identity_on_undirected(self, diamond):
        plan = compile_plan(diamond)
        assert plan.reverse_view() is plan

    def test_reverse_view_involution_and_caching(self, directed_diamond):
        plan = compile_plan(directed_diamond)
        reverse = plan.reverse_view()
        assert reverse is not plan
        assert reverse.reverse_view() is plan
        assert plan.reverse_view() is reverse  # cached

    def test_reverse_reach_transposes_forward_reach(self):
        """Bit-exact: x⇝t via the reverse plan == t-row of the forward
        BFS from x, for every node x, in every sampled world."""
        graph = build_graph(True, seed=33)
        plan = compile_plan(graph)
        batch = sample_worlds(plan, Z, np.random.default_rng(SEED))
        t = plan.node_index(graph.num_nodes - 1)
        into_t = batch_reach(plan.reverse_view(), batch, [t])
        for x in range(plan.num_nodes):
            forward = batch_reach(plan, batch, [x])
            assert np.array_equal(into_t[x], forward[t]), f"node {x}"

    def test_compile_reverse_plan_cached_per_version(self, directed_diamond):
        first = compile_reverse_plan(directed_diamond)
        assert compile_reverse_plan(directed_diamond) is first
        directed_diamond.add_edge(3, 0, 0.5)  # version bump
        second = compile_reverse_plan(directed_diamond)
        assert second is not first
        assert second.num_edges == first.num_edges + 1
        # The new reverse plan must traverse the new edge backwards.
        src_ids = {second.node_ids[i] for i in second.arc_src}
        assert 0 in src_ids and 3 in src_ids

    def test_reverse_shares_worlds_with_forward(self, directed_diamond):
        plan = compile_plan(directed_diamond)
        reverse = plan.reverse_view()
        assert reverse.probs is plan.probs
        assert reverse.index_of is plan.index_of
        assert set(reverse.arc_eid) == set(plan.arc_eid)


class TestSelectionBackend:
    def test_mc_and_lazy_expose_backend(self):
        for name in ("mc", "lazy"):
            est = make_estimator(name, 123, seed=5)
            assert est.selection_backend() == (123, 5)

    def test_scalar_samplers_do_not(self):
        for name in ("mc", "lazy", "rss", "adaptive"):
            est = make_estimator(name, 100, vectorized=False)
            assert est.selection_backend() is None, name

    def test_conditioned_samplers_expose_factory_backend(self):
        """rss / adaptive route selection through the gain kernel via a
        query-conditioned base-batch factory."""
        for name in ("rss", "adaptive"):
            est = make_estimator(name, 120, seed=7)
            backend = est.selection_backend()
            assert backend is not None, name
            num_samples, seed = backend  # legacy tuple contract
            assert num_samples == 120 and seed == 7
            assert callable(backend.make_batch), name
        # plain-batch backends carry no factory
        assert make_estimator("mc", 10).selection_backend().make_batch is None

    def test_vectorized_true_requires_backend(self):
        graph = build_graph(False)
        est = make_estimator("rss", 50, vectorized=False)
        with pytest.raises(ValueError, match="selection"):
            hill_climbing(
                graph, 0, 1, 1, [(0, 5)], ZETA, est, vectorized=True
            )

    def test_vectorized_false_forces_per_candidate_loop(self):
        """Force-scalar runs the estimator loop even for mc estimators
        (the benchmark's baseline path)."""
        graph = UncertainGraph()
        graph.add_edge(0, 1, 0.4)
        graph.add_edge(1, 2, 0.4)
        est = make_estimator("mc", 400, seed=3)
        edges = hill_climbing(
            graph, 0, 2, 1, [(0, 2)], ZETA, est, vectorized=False
        )
        assert [(u, v) for u, v, _ in edges] == [(0, 2)]
        edges = individual_top_k(
            graph, 0, 2, 1, [(0, 2)], ZETA, est, vectorized=False
        )
        assert [(u, v) for u, v, _ in edges] == [(0, 2)]


class TestEngineKernel:
    def test_engine_selection_kernel_matches_fresh_kernel(self):
        """The engine-level constructor is seed-rooted: selections are
        independent of the engine's prior call history."""
        from repro.engine import VectorizedSamplingEngine

        graph = build_graph(True, seed=55)
        n = graph.num_nodes
        pool = candidate_pool(n)
        engine = VectorizedSamplingEngine(seed=SEED)
        engine.reliability(graph, 0, n - 1, 32)  # advance the stream
        via_engine = engine.selection_kernel(graph, Z).greedy_select(
            0, n - 1, 2, pool
        )
        fresh = SelectionGainKernel(graph, Z, seed=SEED).greedy_select(
            0, n - 1, 2, pool
        )
        assert via_engine == fresh


class TestSessionKernel:
    def test_session_kernel_reuses_cached_batch(self):
        from repro.api import Session

        graph = build_graph(False)
        session = Session(graph, seed=0)
        est = make_estimator("mc", 96, seed=11)
        kernel = session.selection_kernel(est)
        assert kernel is not None
        assert kernel.batch is session.world_batch(96, 11)[0]
        # Factory backends (per-stratum rss) reuse the session's plan
        # but build their query-conditioned batch lazily per query.
        rss_kernel = session.selection_kernel(make_estimator("rss", 96))
        assert rss_kernel is not None
        assert rss_kernel.plan is session.plan()[0]
        assert rss_kernel.batch is None
        assert rss_kernel.batch_factory is not None
        # Scalar estimators still have no kernel.
        assert session.selection_kernel(
            make_estimator("rss", 96, vectorized=False)
        ) is None

    def test_session_kernel_selection_matches_fresh_kernel(self):
        from repro.api import Session

        graph = build_graph(False, seed=44)
        n = graph.num_nodes
        pool = candidate_pool(n)
        est = make_estimator("mc", Z, seed=SEED)
        session = Session(graph, seed=0)
        via_session = session.selection_kernel(est).greedy_select(
            0, n - 1, 3, pool
        )
        fresh = SelectionGainKernel(graph, Z, seed=SEED).greedy_select(
            0, n - 1, 3, pool
        )
        assert via_session == fresh
