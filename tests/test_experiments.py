"""Tests for the experiment harness (metrics, tables, drivers)."""

import pytest

from repro.graph import assign_fixed, path_graph
from repro.experiments import (
    MethodStats,
    ResultTable,
    SingleStProtocol,
    compare_methods_multi,
    compare_methods_single_st,
    default_estimator_factory,
    elimination_timings,
    mean,
    measure,
)


class TestMeasure:
    def test_returns_value_and_time(self):
        result = measure(sum, [1, 2, 3])
        assert result.value == 6
        assert result.seconds >= 0
        assert result.peak_mb == 0.0

    def test_memory_tracking(self):
        result = measure(lambda: [0] * 500_000, track_memory=True)
        assert result.peak_mb > 1.0

    def test_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            measure(lambda: 1 / 0)


class TestResultTable:
    def test_render_alignment(self):
        table = ResultTable("T", ["Method", "Gain"])
        table.add_row("be", 0.3333333)
        table.add_row("hill-climbing", 0.1)
        text = table.render()
        assert "0.333" in text
        assert "hill-climbing" in text
        lines = text.splitlines()
        assert len({len(line) for line in lines[2:5]}) <= 2  # aligned

    def test_notes(self):
        table = ResultTable("T", ["A"])
        table.add_note("paper reports 0.33")
        assert "paper reports" in table.render()

    def test_column_access(self):
        table = ResultTable("T", ["Method", "Gain"])
        table.add_row("be", 0.5)
        assert table.column("Method") == ["be"]

    def test_mean_helper(self):
        assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean([]) == 0.0


class TestMethodStats:
    def test_aggregates(self):
        stats = MethodStats(method="be", gains=[0.1, 0.3], seconds=[1.0, 3.0])
        assert stats.mean_gain == pytest.approx(0.2)
        assert stats.mean_seconds == pytest.approx(2.0)
        assert stats.mean_peak_mb == 0.0


@pytest.fixture(scope="module")
def chain():
    g = path_graph(6)
    assign_fixed(g, 0.5)
    return g


class TestDrivers:
    def test_compare_methods_single_st(self, chain):
        protocol = SingleStProtocol(
            k=2, r=4, l=5, evaluation_samples=400,
            estimator_factory=default_estimator_factory(100),
        )
        stats = compare_methods_single_st(
            chain, [(0, 5)], ["be", "mrp"], protocol
        )
        assert set(stats) == {"be", "mrp"}
        assert stats["be"].mean_gain >= stats["mrp"].mean_gain - 0.05
        assert all(s.mean_seconds > 0 for s in stats.values())

    def test_elimination_timings(self, chain):
        seconds, candidates = elimination_timings(
            chain, [(0, 5)], default_estimator_factory(100), r=4
        )
        assert seconds > 0
        assert candidates > 0

    def test_compare_methods_multi(self, chain):
        stats = compare_methods_multi(
            chain, [0, 1], [4, 5], ["be", "eo"], "average",
            k=2, r=4, l=5,
            estimator_factory=default_estimator_factory(100),
            evaluation_samples=300,
        )
        assert set(stats) == {"be", "eo"}
        for s in stats.values():
            assert len(s.gains) == 1

    def test_compare_methods_multi_unknown(self, chain):
        with pytest.raises(ValueError, match="unknown multi method"):
            compare_methods_multi(
                chain, [0], [5], ["nope"], "average", k=1, r=3, l=3,
                estimator_factory=default_estimator_factory(50),
            )
