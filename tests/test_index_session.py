"""Store-backed sessions: hashing, tiering, parity, invalidation."""

import pytest

from repro.api import ReliabilityQuery, Session, Workload
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.index import IndexStore
from repro.reliability import estimator_names


@pytest.fixture
def graph():
    g = erdos_renyi(40, num_edges=100, seed=5)
    return assign_uniform(g, 0.2, 0.8, seed=6)


@pytest.fixture
def store(tmp_path):
    with IndexStore(tmp_path / "store") as s:
        yield s


def reopen(store):
    return IndexStore(store.root)


class TestContentHash:
    def test_insertion_order_independent(self):
        a = UncertainGraph()
        a.add_edge(0, 1, 0.5)
        a.add_edge(1, 2, 0.25)
        b = UncertainGraph()
        b.add_edge(1, 2, 0.25)
        b.add_edge(0, 1, 0.5)
        assert a.content_hash() == b.content_hash()

    def test_sensitive_to_probability_bits(self):
        a = UncertainGraph.from_edges([(0, 1, 0.5)])
        b = UncertainGraph.from_edges([(0, 1, 0.5 + 1e-12)])
        assert a.content_hash() != b.content_hash()

    def test_sensitive_to_direction_and_isolated_nodes(self):
        a = UncertainGraph.from_edges([(0, 1, 0.5)])
        b = UncertainGraph.from_edges([(0, 1, 0.5)], directed=True)
        assert a.content_hash() != b.content_hash()
        c = UncertainGraph.from_edges([(0, 1, 0.5)])
        c.add_node(99)
        assert c.content_hash() != a.content_hash()

    def test_tracks_mutation(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        before = g.content_hash()
        g.add_edge(1, 2, 0.5)
        assert g.content_hash() != before

    def test_stable_across_version_counters(self):
        # Same content reached through different mutation histories
        # (different version counters) must hash identically — that is
        # the whole point of content addressing.
        a = UncertainGraph.from_edges([(0, 1, 0.5)])
        b = UncertainGraph.from_edges([(0, 1, 0.9)])
        b.set_probability(0, 1, 0.5)
        assert a.version != b.version
        assert a.content_hash() == b.content_hash()


class TestTieringAndProvenance:
    def test_cold_store_samples_then_persists(self, graph, store):
        session = Session(graph, seed=9, store=store)
        result = session.reliability(0, target=30, samples=2048)
        assert result.provenance.world_source == "sampled"
        assert result.provenance.cache_hits == 0
        assert result.provenance.cache_misses == 1
        stats = store.stats()
        assert stats.num_batches == 1
        assert stats.num_results == 1

    def test_fresh_session_answers_from_result_cache(self, graph, store):
        first = Session(graph, seed=9, store=store).reliability(
            0, target=30, samples=2048
        )
        warm = Session(graph, seed=9, store=reopen(store))
        second = warm.reliability(0, target=30, samples=2048)
        assert second.values == first.values
        assert second.provenance.world_source is None  # no worlds touched
        assert second.provenance.cache_hits == 1
        assert second.provenance.cache_misses == 0
        assert second.provenance.shared_worlds is True

    def test_new_pair_loads_batch_from_store(self, graph, store):
        Session(graph, seed=9, store=store).reliability(
            0, target=30, samples=2048
        )
        warm = Session(graph, seed=9, store=reopen(store))
        result = warm.reliability(1, target=31, samples=2048)
        assert result.provenance.world_source == "store"
        assert warm.store.counters.batch_hits == 1

    def test_memory_tier_beats_store(self, graph, store):
        session = Session(graph, seed=9, store=store)
        session.reliability(0, target=30, samples=2048)
        result = session.reliability(1, target=31, samples=2048)
        # Same process: the in-memory batch cache answers first.
        assert result.provenance.world_source == "memory"

    def test_no_store_leaves_cache_fields_none(self, graph):
        result = Session(graph, seed=9).reliability(0, target=30,
                                                    samples=2048)
        assert result.provenance.cache_hits is None
        assert result.provenance.cache_misses is None

    def test_store_stats_surface(self, graph, store):
        session = Session(graph, seed=9, store=store)
        assert session.store_stats()["num_batches"] == 0
        assert Session(graph, seed=9).store_stats() is None


class TestParity:
    @pytest.mark.parametrize("estimator", sorted(estimator_names()))
    def test_store_backed_matches_cold_per_estimator(self, graph, store,
                                                     estimator):
        query = ReliabilityQuery(0, target=30, estimator=estimator,
                                 samples=1024)
        [cold] = Session(graph, seed=13).run(Workload([query]))
        [prime] = Session(graph, seed=13, store=store).run(Workload([query]))
        [warm] = Session(graph, seed=13, store=reopen(store)).run(
            Workload([query])
        )
        assert prime.values == cold.values
        assert warm.values == cold.values

    def test_mmap_batch_is_bit_identical_to_fresh_sampling(self, graph,
                                                           store):
        import numpy as np

        cold = Session(graph, seed=21)
        batch_cold, _, source_cold = cold.world_batch(512, 21)
        assert source_cold == "sampled"

        Session(graph, seed=21, store=store).world_batch(512, 21)
        warm = Session(graph, seed=21, store=reopen(store))
        batch_warm, _, source_warm = warm.world_batch(512, 21)
        assert source_warm == "store"
        np.testing.assert_array_equal(
            np.asarray(batch_warm.alive), np.asarray(batch_cold.alive)
        )
        np.testing.assert_array_equal(
            np.asarray(batch_warm.valid), np.asarray(batch_cold.valid)
        )
        assert batch_warm.num_samples == batch_cold.num_samples

    def test_insertion_order_cannot_permute_store_batches(self, store):
        # Two content-equal graphs built in different edge insertion
        # orders share a content hash, so they share store entries.
        # The compiled edge-id layout must therefore be canonical
        # (sorted, like the hash) or a warm load would pair one graph's
        # coin rows with the other's edge probabilities.
        import numpy as np

        from repro.engine import compile_plan

        edges = [(0, 1, 0.9), (1, 2, 0.1), (0, 3, 0.5), (3, 2, 0.7)]
        a = UncertainGraph.from_edges(edges)
        b = UncertainGraph.from_edges(list(reversed(edges)))
        assert a.content_hash() == b.content_hash()
        np.testing.assert_array_equal(
            compile_plan(a).probs, compile_plan(b).probs
        )

        primed = Session(a, seed=17, store=store)
        primed.world_batch(1024, 17)  # persist under the shared hash

        warm = Session(b, seed=17, store=reopen(store))
        batch, _, source = warm.world_batch(1024, 17)
        assert source == "store"
        cold_batch, _, _ = Session(b, seed=17).world_batch(1024, 17)
        np.testing.assert_array_equal(
            np.asarray(batch.alive), np.asarray(cold_batch.alive)
        )
        # And the values answered from the shared batch match B's own
        # cold sampling bit-for-bit.
        warm_result = warm.reliability(0, target=2, samples=1024)
        cold_result = Session(b, seed=17).reliability(0, target=2,
                                                      samples=1024)
        assert warm_result.values == cold_result.values

    def test_evaluate_pairs_uses_result_cache(self, graph, store):
        pairs = [(0, 30), (1, 31)]
        cold = Session(graph, seed=9).evaluate_pairs(pairs, samples=2048,
                                                     seed=9)
        Session(graph, seed=9, store=store).evaluate_pairs(pairs,
                                                           samples=2048,
                                                           seed=9)
        warm_store = reopen(store)
        warm = Session(graph, seed=9, store=warm_store)
        assert warm.evaluate_pairs(pairs, samples=2048, seed=9) == cold
        assert warm_store.counters.result_hits == len(pairs)
        assert warm_store.counters.batch_misses == 0  # never touched worlds


class TestInvalidation:
    def test_swap_reaches_the_new_graphs_namespace(self, graph, store):
        other = assign_uniform(
            erdos_renyi(40, num_edges=100, seed=50), 0.2, 0.8, seed=51
        )
        session = Session(graph, seed=9, store=store)
        before = session.reliability(0, target=30, samples=2048)

        session.graph = other
        session.invalidate()
        swapped = session.reliability(0, target=30, samples=2048)
        # Different content hash => different store namespace: the swap
        # must recompute, not replay the old graph's cached result.
        expected = Session(other, seed=9).reliability(0, target=30,
                                                      samples=2048)
        assert swapped.values == expected.values
        assert swapped.values != before.values
        assert store.stats().num_batches == 2  # both namespaces persisted

    def test_version_collision_cannot_alias_store_entries(self, store):
        # Two distinct graphs built the same way share a version
        # counter — the hazard that made version-keyed caching unsafe
        # across swaps.  Content hashing keys them apart.
        a = UncertainGraph.from_edges([(0, 1, 0.9), (1, 2, 0.9)])
        b = UncertainGraph.from_edges([(0, 1, 0.1), (1, 2, 0.1)])
        assert a.version == b.version

        session = Session(a, seed=3, store=store)
        high = session.reliability(0, target=2, samples=4096)
        session.graph = b
        session.invalidate()
        low = session.reliability(0, target=2, samples=4096)
        assert high.value > 0.7 > 0.1 > low.value

        # And the original namespace is still warm after swapping back.
        session.graph = a
        session.invalidate()
        again = session.reliability(0, target=2, samples=4096)
        assert again.values == high.values
        assert again.provenance.cache_hits == 1

    def test_broken_store_degrades_to_cold_serving(self, graph, store):
        # "Persistence is an optimization; serving must not fail":
        # break the catalog underneath a live session and every tier —
        # result-cache read/write, batch load/save, /healthz stats —
        # must degrade best-effort instead of raising.
        session = Session(graph, seed=9, store=store)
        store._conn.close()  # simulate a dead catalog, store not closed
        result = session.reliability(0, target=30, samples=2048)
        expected = Session(graph, seed=9).reliability(0, target=30,
                                                      samples=2048)
        assert result.values == expected.values
        assert store.counters.save_failures > 0
        stats = session.store_stats()
        assert "error" in stats
        assert stats["counters"]["save_failures"] > 0

    def test_store_requires_engine(self, graph, store, monkeypatch):
        import repro.api.session as session_module

        monkeypatch.setattr(session_module, "_HAVE_ENGINE", False)
        with pytest.raises(RuntimeError):
            Session(graph, seed=9, store=store)
