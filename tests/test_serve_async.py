"""Coalescer semantics of :class:`repro.serve.AsyncSession`.

The serving layer's contract: coalescing only changes *when* queries
execute, never what they compute.  These tests pin bit-for-bit parity
with one-off ``Session.run`` calls plus the edge cases a coalescer must
get right — mixed ``(Z, seed)`` requests landing in separate shared
batches, cancellation of an awaiting client, and graph mutations /
hot-swaps mid-stream invalidating the cached plan.
"""

import asyncio

import pytest

from repro.api import MaximizeQuery, ReliabilityQuery, Session, Workload
from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.reliability import ReliabilityEstimator
from repro.serve import AsyncSession, split_batchable


def build_graph(num_nodes=60, num_edges=150, seed=3):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.2, 0.8, seed=seed + 1)


def one_off_results(graph, queries, seed=7, **session_kwargs):
    """What independent per-query Session.run calls would return."""
    results = []
    for query in queries:
        session = Session(graph, seed=seed, **session_kwargs)
        results.append(session.run(Workload([query]))[0])
    return results


def test_concurrent_submits_coalesce_and_match_one_off():
    graph = build_graph()
    queries = [
        ReliabilityQuery(i, target=graph.num_nodes - 1 - i, samples=500)
        for i in range(8)
    ]

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=20.0) as serving:
            results = await asyncio.gather(
                *(serving.submit(q) for q in queries)
            )
            return results, serving.stats

    results, stats = asyncio.run(scenario())
    assert stats.batches == 1
    assert stats.largest_batch == len(queries)
    assert stats.mean_batch_size == len(queries)
    for result in results:
        assert result.provenance.shared_worlds  # coalesced into one group

    for got, expected in zip(results, one_off_results(graph, queries), strict=True):
        assert got.values == expected.values  # bit-for-bit
        assert got.provenance.estimator == expected.provenance.estimator
        assert got.provenance.samples == expected.provenance.samples
        assert got.provenance.seed == expected.provenance.seed


def test_results_align_with_submission_order():
    graph = build_graph()
    queries = [
        ReliabilityQuery(0, target=t, samples=300)
        for t in range(1, 9)
    ]

    async def scenario():
        async with AsyncSession(graph, seed=1, max_wait_ms=10.0) as serving:
            return await serving.run(queries)

    results = asyncio.run(scenario())
    assert [r.query.targets[0] for r in results] == list(range(1, 9))


def test_mixed_z_seed_requests_split_into_separate_world_batches():
    graph = build_graph()
    # Three shared-world groups inside one coalesced flush: the session
    # must answer each from its own (Z, seed) batch.
    group_a = [ReliabilityQuery(0, target=40, samples=400, seed=1),
               ReliabilityQuery(1, target=41, samples=400, seed=1)]
    group_b = [ReliabilityQuery(0, target=40, samples=400, seed=2)]
    group_c = [ReliabilityQuery(0, target=40, samples=800, seed=1)]
    queries = group_a + group_b + group_c

    assert len(split_batchable(queries)) == 3  # the diagnostic agrees

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=20.0) as serving:
            results = await asyncio.gather(
                *(serving.submit(q) for q in queries)
            )
            return results, serving.stats

    results, stats = asyncio.run(scenario())
    assert stats.batches == 1  # one flush, session splits internally

    for got, expected in zip(results, one_off_results(graph, queries), strict=True):
        assert got.values == expected.values
    # Provenance reflects each query's own sampling configuration.
    assert [r.provenance.seed for r in results] == [1, 1, 2, 1]
    assert [r.provenance.samples for r in results] == [400, 400, 400, 800]
    # Same pair under different seeds / Z: distinct worlds, and the
    # multi-member group is flagged as shared.
    assert results[0].provenance.shared_worlds
    assert results[1].provenance.shared_worlds


def test_max_batch_flushes_immediately():
    graph = build_graph()
    queries = [ReliabilityQuery(0, target=t + 1, samples=200)
               for t in range(10)]

    async def scenario():
        async with AsyncSession(
            graph, seed=7, max_batch=4, max_wait_ms=200.0
        ) as serving:
            await asyncio.gather(*(serving.submit(q) for q in queries))
            return serving.stats

    stats = asyncio.run(scenario())
    # 10 queries at max_batch=4: two full flushes, the remainder (2)
    # flushed by the timer or by close().
    assert stats.batches == 3
    assert stats.largest_batch == 4
    assert stats.batched_requests == 10


def test_zero_wait_still_coalesces_same_tick_submissions():
    graph = build_graph()
    queries = [ReliabilityQuery(0, target=t + 1, samples=200)
               for t in range(4)]

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=0.0) as serving:
            await asyncio.gather(*(serving.submit(q) for q in queries))
            return serving.stats

    stats = asyncio.run(scenario())
    # call_later(0) fires after the current tick: everything submitted
    # synchronously by gather still lands in one workload.
    assert stats.batches == 1
    assert stats.largest_batch == 4


def test_cancelled_client_is_dropped_without_affecting_others():
    graph = build_graph()
    keep = ReliabilityQuery(0, target=10, samples=300)
    drop = ReliabilityQuery(1, target=11, samples=300)

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=50.0) as serving:
            kept_task = asyncio.ensure_future(serving.submit(keep))
            dropped_task = asyncio.ensure_future(serving.submit(drop))
            await asyncio.sleep(0)  # both queries are now pending
            dropped_task.cancel()
            result = await kept_task
            with pytest.raises(asyncio.CancelledError):
                await dropped_task
            return result, serving.stats

    result, stats = asyncio.run(scenario())
    assert stats.requests == 2
    assert stats.cancelled == 1
    assert stats.batched_requests == 1  # the cancelled query never ran
    [expected] = one_off_results(graph, [keep])
    assert result.values == expected.values


def test_graph_mutation_mid_stream_invalidates_cached_plan():
    graph = UncertainGraph.from_edges([(0, 1, 0.6), (1, 2, 0.5)])

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=1.0) as serving:
            before = await serving.reliability(0, target=2, samples=2000)
            version_before = serving.session._version
            # Mutate the served graph between requests: the session must
            # notice the version bump and recompile before answering.
            graph.add_edge(0, 2, 1.0)
            after = await serving.reliability(0, target=2, samples=2000)
            return before, after, version_before, serving.session._version

    before, after, version_before, version_after = asyncio.run(scenario())
    assert before.value < 1.0
    assert after.value == 1.0
    assert version_after > version_before


def test_swap_graph_invalidates_even_on_version_collision():
    # Two graphs built by the same number of mutations share a version
    # counter value — the swap must invalidate anyway.
    old = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
    new = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
    assert old.version == new.version

    async def scenario():
        async with AsyncSession(old, seed=7, max_wait_ms=1.0) as serving:
            before = await serving.reliability(0, target=2, samples=2000)
            swapped_version = await serving.swap_graph(new)
            after = await serving.reliability(0, target=2, samples=2000)
            return before, after, swapped_version, serving.stats

    before, after, swapped_version, stats = asyncio.run(scenario())
    assert before.value < 1.0
    assert after.value == 1.0
    assert swapped_version == new.version
    assert stats.graph_swaps == 1


def test_maximize_queries_coalesce_and_match_session_maximize():
    graph = build_graph(num_nodes=25, num_edges=60)
    queries = [
        MaximizeQuery(0, 20, k=2, zeta=0.5, method="hc"),
        MaximizeQuery(1, 21, k=2, zeta=0.5, method="topk"),
    ]

    async def scenario():
        async with AsyncSession(
            graph, seed=7, r=15, l=10, max_wait_ms=20.0
        ) as serving:
            return await asyncio.gather(
                *(serving.submit(q) for q in queries)
            )

    results = asyncio.run(scenario())
    # Maximize parity is defined against sequential execution on one
    # session (the selection estimator is a long-lived, stateful
    # instance, exactly as on the server) — the contract Session.run's
    # own batching is pinned to.
    session = Session(graph, seed=7, r=15, l=10)
    expected = [session.maximize(q) for q in queries]
    for got, want in zip(results, expected, strict=True):
        assert got.solution.edges == want.solution.edges
        assert got.solution.base_reliability == want.solution.base_reliability
        assert got.solution.new_reliability == want.solution.new_reliability


def test_bad_method_fails_at_submit_not_mid_batch():
    # Unknown methods must never enter a coalesced batch: they fail at
    # query construction (so no companion ever pays for a batch rerun).
    with pytest.raises(ValueError, match="unknown method"):
        MaximizeQuery(0, 10, k=1, method="not-a-method")


class _ExplodingEstimator(ReliabilityEstimator):
    """Estimator whose execution always fails."""

    vectorized = False

    def reliability(self, graph, source, target, extra_edges=None):
        raise RuntimeError("boom")

    def reachability_from(self, graph, source, extra_edges=None):
        raise RuntimeError("boom")


def test_failing_query_does_not_poison_batch_companions():
    graph = build_graph(num_nodes=20, num_edges=50)
    good = ReliabilityQuery(0, target=10, samples=300)
    # A custom estimator instance that explodes at execution time — the
    # kind of mid-batch failure construction-time validation can't
    # catch — lands in the same coalesced batch as `good`.
    bad = MaximizeQuery(0, 10, k=1, method="hc",
                        estimator=_ExplodingEstimator())

    async def scenario():
        async with AsyncSession(
            graph, seed=7, r=10, l=8, max_wait_ms=20.0
        ) as serving:
            good_task = asyncio.ensure_future(serving.submit(good))
            bad_task = asyncio.ensure_future(serving.submit(bad))
            result = await good_task
            with pytest.raises(RuntimeError, match="boom"):
                await bad_task
            return result

    result = asyncio.run(scenario())
    [expected] = one_off_results(graph, [good])
    assert result.values == expected.values  # unaffected by the failure


def test_swap_graph_flushes_pending_queries_onto_old_graph():
    old = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
    new = UncertainGraph.from_edges([(0, 1, 1.0)])  # node 2 gone

    async def scenario():
        async with AsyncSession(old, seed=7, max_wait_ms=10_000.0) as serving:
            pending = asyncio.ensure_future(
                serving.reliability(0, target=2, samples=500)
            )
            await asyncio.sleep(0)  # query accepted while `old` is served
            await serving.swap_graph(new)
            before = await pending
            serving.max_wait_ms = 1.0  # don't wait out the huge window
            after = await serving.reliability(0, target=2, samples=500)
            return before, after

    before, after = asyncio.run(scenario())
    assert before.value == 1.0  # answered on the graph it was accepted for
    assert after.value == 0.0   # node 2 does not exist in the new graph


def test_split_batchable_resolves_aliases_and_session_seed():
    queries = [
        ReliabilityQuery(0, target=1, samples=100, seed=None),
        ReliabilityQuery(0, target=2, samples=100, seed=5),
        ReliabilityQuery(0, target=3, samples=100, estimator="monte-carlo",
                         seed=5),
    ]
    # With the session seed known, seed=None resolves onto seed=5 and
    # the "monte-carlo" alias collapses onto "mc": one group, exactly
    # how Session.run batches them.
    groups = split_batchable(queries, session_seed=5)
    assert len(groups) == 1
    assert groups[0][0] == ("mc", 100, 5)
    # Without it, unresolved seeds stay apart from explicit ones.
    assert len(split_batchable(queries)) == 2


def test_close_flushes_pending_and_rejects_new_submissions():
    graph = build_graph()

    async def scenario():
        serving = AsyncSession(graph, seed=7, max_wait_ms=10_000.0)
        task = asyncio.ensure_future(
            serving.submit(ReliabilityQuery(0, target=5, samples=200))
        )
        await asyncio.sleep(0)  # query is pending, timer far away
        await serving.close()  # must flush instead of stranding the client
        result = await task
        with pytest.raises(RuntimeError):
            await serving.submit(ReliabilityQuery(0, target=5, samples=200))
        await serving.close()  # idempotent
        return result

    result = asyncio.run(scenario())
    assert len(result.values) == 1


def test_constructor_validation():
    graph = build_graph(num_nodes=5, num_edges=6)
    with pytest.raises(ValueError):
        AsyncSession(graph, max_batch=0)
    with pytest.raises(ValueError):
        AsyncSession(graph, max_wait_ms=-1.0)
    session = Session(graph, seed=1)
    with pytest.raises(TypeError):
        AsyncSession(session, seed=2)  # kwargs need a graph target

    async def bad_submit():
        async with AsyncSession(graph) as serving:
            await serving.submit("not a query")

    with pytest.raises(TypeError):
        asyncio.run(bad_submit())


def test_wrapping_an_existing_session_reuses_its_caches():
    graph = build_graph()
    session = Session(graph, seed=7)
    # Warm the session with a direct call, then serve through it.
    direct = session.run(Workload([
        ReliabilityQuery(0, target=10, samples=400)
    ]))[0]

    async def scenario():
        async with AsyncSession(session, max_wait_ms=5.0) as serving:
            return await serving.reliability(0, target=10, samples=400)

    served = asyncio.run(scenario())
    assert served.values == direct.values
    assert served.provenance.shared_worlds  # answered from the warm cache
