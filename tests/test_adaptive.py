"""Tests for adaptive-precision Monte Carlo and the Wilson interval."""

import pytest

from repro.graph import UncertainGraph, assign_fixed, path_graph
from repro.reliability import (
    AdaptiveMonteCarlo,
    exact_reliability,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_proportion(self):
        lower, upper = wilson_interval(50, 100)
        assert lower < 0.5 < upper

    def test_narrows_with_samples(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_extreme_proportions_stay_in_unit(self):
        lower, upper = wilson_interval(0, 100)
        assert lower == 0.0 and upper < 0.1
        lower, upper = wilson_interval(100, 100)
        assert lower > 0.9 and upper >= 1.0 - 1e-9

    def test_zero_samples(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_higher_confidence_is_wider(self):
        at_90 = wilson_interval(30, 100, confidence=0.90)
        at_99 = wilson_interval(30, 100, confidence=0.99)
        assert (at_99[1] - at_99[0]) > (at_90[1] - at_90[0])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=0.5)


class TestAdaptiveMonteCarlo:
    def test_interval_contains_truth(self, diamond):
        # A 95% interval misses 5% of the time; a small slack makes the
        # test deterministic without weakening it meaningfully.
        truth = exact_reliability(diamond, 0, 3)
        result = AdaptiveMonteCarlo(
            target_half_width=0.02, seed=3
        ).estimate(diamond, 0, 3)
        assert result.lower - 0.01 <= truth <= result.upper + 0.01
        assert result.half_width <= 0.02 + 1e-9

    def test_easy_queries_use_fewer_samples(self):
        # R ~ 0.99: variance tiny, convergence fast.
        easy = UncertainGraph.from_edges([(0, 1, 0.99)])
        hard = UncertainGraph.from_edges([(0, 1, 0.5)])
        est = AdaptiveMonteCarlo(target_half_width=0.02, seed=4)
        easy_n = est.estimate(easy, 0, 1).samples_used
        est2 = AdaptiveMonteCarlo(target_half_width=0.02, seed=4)
        hard_n = est2.estimate(hard, 0, 1).samples_used
        assert easy_n < hard_n

    def test_budget_cap_respected(self, diamond):
        result = AdaptiveMonteCarlo(
            target_half_width=0.0001, max_samples=1000, seed=5
        ).estimate(diamond, 0, 3)
        assert result.samples_used == 1000

    def test_trivial_queries(self, diamond):
        est = AdaptiveMonteCarlo(seed=0)
        assert est.estimate(diamond, 2, 2).value == 1.0
        assert est.estimate(diamond, 0, 99).value == 0.0

    def test_reliability_protocol(self, diamond):
        truth = exact_reliability(diamond, 0, 3)
        value = AdaptiveMonteCarlo(
            target_half_width=0.02, seed=6
        ).reliability(diamond, 0, 3)
        assert value == pytest.approx(truth, abs=0.05)

    def test_reachability_fallback(self, diamond):
        reach = AdaptiveMonteCarlo(seed=7).reachability_from(diamond, 0)
        assert reach[0] == 1.0
        assert set(reach) == {0, 1, 2, 3}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AdaptiveMonteCarlo(target_half_width=0.0)
        with pytest.raises(ValueError):
            AdaptiveMonteCarlo(block_size=0)
        with pytest.raises(ValueError):
            AdaptiveMonteCarlo(block_size=100, max_samples=10)
        with pytest.raises(ValueError):
            AdaptiveMonteCarlo(confidence=0.42)

    def test_overlay_edges(self):
        g = path_graph(3)
        assign_fixed(g, 0.5)
        est = AdaptiveMonteCarlo(target_half_width=0.02, seed=8)
        with_direct = est.estimate(g, 0, 2, [(0, 2, 0.9)])
        truth = exact_reliability(g, 0, 2, [(0, 2, 0.9)])
        assert with_direct.lower - 0.01 <= truth <= with_direct.upper + 0.01
