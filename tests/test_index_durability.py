"""Crash-consistency gates for the persistent index (CI: index-durability).

The store's three survival claims, exercised for real:

* a writer SIGKILLed mid-persist leaves a directory that reopens
  clean — every cataloged batch still loads, crash debris is invisible
  to readers and reaped by vacuum;
* a torn batch file is detected, pruned and transparently resampled,
  with the resampled answer bit-for-bit equal to a cold computation;
* a second writer (in another process) serializes on the store lock
  and times out loudly instead of interleaving writes.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Session
from repro.graph import assign_uniform, erdos_renyi
from repro.index import IndexStore, StoreLockTimeout

SRC_DIR = str(Path(repro.__file__).resolve().parents[1])


def child_env():
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR
    return env


@pytest.fixture
def graph():
    g = erdos_renyi(40, num_edges=100, seed=5)
    return assign_uniform(g, 0.2, 0.8, seed=6)


#: Child that persists ever-larger batches forever (until killed).  It
#: prints READY once the store is open so the parent can time the kill
#: to land inside the write loop, and a line per completed batch.
WRITER_LOOP = """
import sys
import numpy as np
from repro.index import IndexStore

store = IndexStore(sys.argv[1])
print("READY", flush=True)
for i in range(10_000):
    words = np.full((2000, 64), i, dtype=np.uint64)  # ~1 MB each
    store.save_batch("f" * 64, 1000 + i, 7, words)
    print(f"SAVED {i}", flush=True)
"""

#: Child that takes the writer lock and holds it until killed.
LOCK_HOLDER = """
import sys, time
from repro.index import IndexStore

store = IndexStore(sys.argv[1])
with store.write_lock():
    print("LOCKED", flush=True)
    time.sleep(60)
"""


def test_sigkill_mid_persist_reopens_clean(tmp_path):
    root = tmp_path / "store"
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER_LOOP, str(root)],
        stdout=subprocess.PIPE, text=True, env=child_env(),
    )
    try:
        assert proc.stdout.readline().strip() == "READY"
        # Let a few batches land, then kill in the middle of the loop.
        deadline = time.monotonic() + 30
        saved = 0
        while saved < 3 and time.monotonic() < deadline:
            line = proc.stdout.readline()
            if line.startswith("SAVED"):
                saved += 1
        assert saved >= 3, "writer never completed 3 batches"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait()

    # The store must reopen without complaint...
    with IndexStore(root) as store:
        rows = store.list_batches()
        assert len(rows) >= 3
        # ...and every cataloged row must load cleanly: the catalog is
        # written only after the atomic rename, so a torn .tmp can
        # never be visible through it.
        for row in rows:
            words = store.load_batch("f" * 64, row["num_samples"], 7)
            assert words is not None
            assert int(np.asarray(words)[0, 0]) == row["num_samples"] - 1000
        assert store.counters.corrupt_batches == 0
        # Crash debris (if the kill landed mid-write) is vacuumable.
        report = store.vacuum()
        assert report.pruned_rows == 0
        leftovers = [p for p in store.batches_dir.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


def test_partial_batch_detected_and_resampled(tmp_path, graph):
    root = tmp_path / "store"
    with IndexStore(root) as store:
        session = Session(graph, seed=9, store=store)
        cold = session.reliability(0, target=30, samples=2048)
        [row] = store.list_batches()
        path = store.batches_dir / row["filename"]

    # Tear the persisted batch the way an interrupted write would.
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

    with IndexStore(root) as store:
        store.clear_results()  # force the world-batch path
        session = Session(graph, seed=9, store=store)
        result = session.reliability(0, target=30, samples=2048)
        # Detected, counted, pruned — and transparently resampled to
        # the exact same answer.
        assert store.counters.corrupt_batches == 1
        assert result.provenance.world_source == "sampled"
        assert result.values == cold.values
        assert not any(".tmp." in p.name for p in store.batches_dir.iterdir())
        # The heal persisted a fresh copy: next open mmap-hits again.
    with IndexStore(root) as store:
        assert store.load_batch(
            session.graph_hash(), 2048, 9, expected_edges=graph.num_edges
        ) is not None


def test_schema_mismatch_refused_without_touching(tmp_path):
    from repro.index import SCHEMA_VERSION, SchemaMismatchError

    root = tmp_path / "store"
    with IndexStore(root) as store:
        store.save_batch("e" * 64, 100, 0,
                         np.ones((4, 2), dtype=np.uint64))
        store._conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION + 7),),
        )
    snapshot = {
        p.name: p.stat().st_size
        for p in root.rglob("*") if p.is_file() and not p.name.endswith("-wal")
    }
    with pytest.raises(SchemaMismatchError):
        IndexStore(root)
    after = {
        p.name: p.stat().st_size
        for p in root.rglob("*") if p.is_file() and not p.name.endswith("-wal")
    }
    assert after == snapshot


def test_concurrent_writer_times_out_on_process_lock(tmp_path):
    root = tmp_path / "store"
    IndexStore(root).close()  # initialize the directory
    proc = subprocess.Popen(
        [sys.executable, "-c", LOCK_HOLDER, str(root)],
        stdout=subprocess.PIPE, text=True, env=child_env(),
    )
    try:
        assert proc.stdout.readline().strip() == "LOCKED"
        with IndexStore(root, lock_timeout_s=0.2) as store:
            start = time.monotonic()
            with pytest.raises(StoreLockTimeout):
                store.save_batch("d" * 64, 100, 0,
                                 np.ones((4, 2), dtype=np.uint64))
            assert time.monotonic() - start >= 0.2
    finally:
        proc.kill()
        proc.wait(timeout=30)

    # Once the holder dies, the lock frees and the write goes through.
    with IndexStore(root, lock_timeout_s=5.0) as store:
        assert store.save_batch("d" * 64, 100, 0,
                                np.ones((4, 2), dtype=np.uint64))
