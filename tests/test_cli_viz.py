"""Tests for the command-line interface and SVG visualization."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import intel_lab
from repro.graph import UncertainGraph, write_edge_list
from repro.viz import render_network_svg, save_network_svg


@pytest.fixture
def edge_file(tmp_path, diamond):
    path = tmp_path / "g.edges"
    write_edge_list(diamond, path)
    return str(path)


class TestCliDatasets:
    def test_list_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "twitter" in out and "intel-lab" in out

    def test_summarize_dataset(self, capsys):
        assert main(["datasets", "intel-lab"]) == 0
        out = capsys.readouterr().out
        assert "nodes / edges:      54" in out
        assert "edge probability" in out


class TestCliReliability:
    def test_estimate_from_file(self, capsys, edge_file):
        code = main([
            "reliability", "--file", edge_file,
            "--source", "0", "--target", "3",
            "--samples", "4000", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        value = float(out.split("≈")[1].split()[0])
        assert value == pytest.approx(0.652, abs=0.04)

    @pytest.mark.parametrize("estimator", ["mc", "rss", "lazy", "adaptive"])
    def test_all_estimators(self, capsys, edge_file, estimator):
        code = main([
            "reliability", "--file", edge_file,
            "--source", "0", "--target", "3",
            "--estimator", estimator, "--samples", "500",
        ])
        assert code == 0

    def test_bounds_flag(self, capsys, edge_file):
        code = main([
            "reliability", "--file", edge_file,
            "--source", "0", "--target", "3",
            "--samples", "2000", "--bounds",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "certified bounds" in out


class TestCliMaximize:
    def test_maximize_on_file(self, capsys, edge_file):
        code = main([
            "maximize", "--file", edge_file,
            "--source", "0", "--target", "3",
            "-k", "1", "--zeta", "0.9",
            "-r", "4", "-l", "5", "--samples", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "+ edge 0 -> 3" in out
        assert "gain +" in out

    def test_maximize_method_choice(self, capsys, edge_file):
        code = main([
            "maximize", "--file", edge_file,
            "--source", "0", "--target", "3",
            "-k", "1", "--method", "mrp", "-r", "4", "-l", "5",
        ])
        assert code == 0

    def test_maximize_on_dataset(self, capsys):
        code = main([
            "maximize", "--dataset", "lastfm", "--nodes", "150",
            "--source", "0", "--target", "60",
            "-k", "2", "-r", "8", "-l", "8", "--samples", "100",
        ])
        assert code == 0


class TestCliMrp:
    def test_mrp_improvement(self, capsys, edge_file):
        code = main([
            "mrp", "--file", edge_file,
            "--source", "0", "--target", "3",
            "-k", "1", "--zeta", "0.9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "0.9000" in out

    def test_mrp_no_improvement(self, capsys, edge_file):
        code = main([
            "mrp", "--file", edge_file,
            "--source", "0", "--target", "3",
            "-k", "1", "--zeta", "0.01",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "no addition improves" in out


class TestCliParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_graph_source_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "reliability", "--dataset", "lastfm", "--file", "x",
                "--source", "0", "--target", "1",
            ])


class TestSvg:
    def test_render_sensor_network(self):
        graph = intel_lab.build()
        positions = intel_lab.sensor_positions()
        svg = render_network_svg(
            graph, positions,
            new_edges=[(2, 46, 0.33)],
            highlight_nodes=[21, 46],
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'stroke-dasharray' in svg      # the new edge
        assert svg.count("<circle") == 54
        assert '#ff7f0e' in svg               # highlighted nodes

    def test_min_probability_filter(self):
        g = UncertainGraph.from_edges([(0, 1, 0.05), (1, 2, 0.9)])
        positions = {0: (0, 0), 1: (1, 0), 2: (2, 0)}
        svg = render_network_svg(g, positions, min_probability=0.5)
        assert svg.count("<line") == 1

    def test_save_to_file(self, tmp_path):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        path = tmp_path / "net.svg"
        save_network_svg(str(path), g, {0: (0, 0), 1: (3, 4)})
        content = path.read_text()
        assert content.startswith("<svg")

    def test_degenerate_positions(self):
        g = UncertainGraph.from_edges([(0, 1, 0.5)])
        svg = render_network_svg(g, {0: (1.0, 1.0), 1: (1.0, 1.0)})
        assert "<svg" in svg  # no division by zero
