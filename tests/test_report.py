"""Tests for the benchmark results report collector."""

import os

from repro.experiments import build_report, collect_result_tables, write_report


def _make_results(tmp_path):
    results = tmp_path / "results"
    results.mkdir()
    (results / "table09_real.txt").write_text("Table 9\n=======\nrow")
    (results / "figure08_im.txt").write_text("Figure 8\n========\nrow")
    (results / "ablation_x.txt").write_text("Ablation\n========\nrow")
    (results / "notes.json").write_text("{}")  # ignored
    return str(results)


def test_collect_filters_and_keys(tmp_path):
    results = _make_results(tmp_path)
    tables = collect_result_tables(results)
    assert set(tables) == {"table09_real", "figure08_im", "ablation_x"}


def test_report_orders_tables_before_figures(tmp_path):
    results = _make_results(tmp_path)
    report = build_report(results)
    assert report.index("table09 real") < report.index("figure08 im")
    assert report.index("figure08 im") < report.index("ablation x")
    assert report.count("```") == 6


def test_empty_results_dir(tmp_path):
    report = build_report(str(tmp_path / "missing"))
    assert "No result tables found" in report


def test_write_report(tmp_path):
    results = _make_results(tmp_path)
    out = tmp_path / "report.md"
    content = write_report(results, str(out), title="My run")
    assert out.read_text() == content
    assert content.startswith("# My run")


def test_real_results_dir_if_present():
    results_dir = os.path.join("benchmarks", "results")
    if not os.path.isdir(results_dir):
        return
    report = build_report(results_dir)
    assert "Table" in report or "No result tables" in report
