"""End-to-end integration tests across subsystem boundaries."""

import pytest

from repro import datasets
from repro.core import (
    MultiSourceTargetMaximizer,
    ReliabilityMaximizer,
)
from repro.queries import sample_multi_sets, sample_st_pairs
from repro.reliability import (
    BFSSharingIndex,
    LazyPropagationEstimator,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    reliability_bounds,
)


@pytest.fixture(scope="module")
def small_real_graphs():
    return {
        name: datasets.load(name, num_nodes=200, seed=0)
        for name in ("lastfm", "as-topology", "dblp", "twitter")
    }


class TestPipelineAcrossDatasets:
    @pytest.mark.parametrize(
        "name", ["lastfm", "as-topology", "dblp", "twitter"]
    )
    def test_be_improves_or_matches_base(self, small_real_graphs, name):
        graph = small_real_graphs[name]
        (s, t), = sample_st_pairs(graph, 1, seed=3)
        solver = ReliabilityMaximizer(
            estimator=RecursiveStratifiedSampler(80, seed=1),
            evaluation_samples=400, r=10, l=10,
        )
        solution = solver.maximize(graph, s, t, k=3, zeta=0.5)
        assert len(solution.edges) <= 3
        assert solution.new_reliability >= solution.base_reliability - 0.05
        for u, v, p in solution.edges:
            assert p == 0.5
            assert not graph.has_edge(u, v)

    def test_estimator_injection_is_interchangeable(self, small_real_graphs):
        """§5.3's claim: the pipeline is orthogonal to the sampler."""
        graph = small_real_graphs["lastfm"]
        (s, t), = sample_st_pairs(graph, 1, seed=5)
        gains = {}
        for label, estimator in [
            ("mc", MonteCarloEstimator(150, seed=2)),
            ("rss", RecursiveStratifiedSampler(100, seed=2)),
            ("lazy", LazyPropagationEstimator(150, seed=2)),
        ]:
            solver = ReliabilityMaximizer(
                estimator=estimator, evaluation_samples=500, r=10, l=10,
            )
            gains[label] = solver.maximize(graph, s, t, k=3, zeta=0.5).gain
        values = list(gains.values())
        # All samplers land in the same ballpark solution quality.
        assert max(values) - min(values) < 0.25


class TestBoundsAgainstPipeline:
    def test_solution_respects_upper_bound(self, small_real_graphs):
        """After adding edges, sampled reliability stays under the
        certified min-cut bound of the augmented graph."""
        graph = small_real_graphs["dblp"]
        (s, t), = sample_st_pairs(graph, 1, seed=7)
        solver = ReliabilityMaximizer(
            estimator=RecursiveStratifiedSampler(100, seed=3),
            evaluation_samples=800, r=10, l=10,
        )
        solution = solver.maximize(graph, s, t, k=3, zeta=0.5)
        augmented = graph.with_edges(solution.edges)
        bracket = reliability_bounds(augmented, s, t, num_paths=10)
        assert solution.new_reliability <= bracket.upper + 0.07
        assert solution.new_reliability >= bracket.lower - 0.07


class TestIndexWithPipeline:
    def test_bfs_sharing_drives_multi_objective(self):
        graph = datasets.load("lastfm", num_nodes=150, seed=1)
        sources, targets = sample_multi_sets(graph, 2, seed=9)
        pairs = [(s, t) for s in sources for t in targets if s != t]
        index = BFSSharingIndex(graph, num_samples=400, seed=2)
        values = index.pair_reliabilities(graph, pairs)
        mc = MonteCarloEstimator(400, seed=3)
        for pair, value in values.items():
            assert value == pytest.approx(
                mc.reliability(graph, *pair), abs=0.12
            )


class TestMultiEndToEnd:
    @pytest.mark.parametrize("aggregate", ["average", "minimum", "maximum"])
    def test_multi_on_directed_dataset(self, small_real_graphs, aggregate):
        graph = small_real_graphs["as-topology"]
        sources, targets = sample_multi_sets(graph, 2, seed=11)
        solver = MultiSourceTargetMaximizer(
            estimator=RecursiveStratifiedSampler(80, seed=4),
            evaluation_samples=300, r=8, l=8, k1_fraction=0.5,
        )
        solution = solver.maximize(
            graph, sources, targets, k=2, zeta=0.6, aggregate=aggregate
        )
        assert len(solution.edges) <= 2
        assert solution.new_value >= solution.base_value - 0.05
        for u, v, _ in solution.edges:
            assert not graph.has_edge(u, v)
