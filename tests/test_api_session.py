"""Tests for the declarative query/session API (`repro.api`)."""

import pytest

from repro.api import (
    MaximizeQuery,
    ReliabilityQuery,
    Session,
    Workload,
    results_table,
)
from repro.core import ReliabilityMaximizer
from repro.graph import assign_uniform, erdos_renyi
from repro.reliability import (
    MonteCarloEstimator,
    estimator_names,
    estimator_spec,
    make_estimator,
    register_estimator,
)


@pytest.fixture
def graph():
    g = erdos_renyi(50, num_edges=120, seed=7)
    return assign_uniform(g, 0.2, 0.8, seed=8)


class TestQueries:
    def test_single_target_normalized(self):
        q = ReliabilityQuery(0, target=3)
        assert q.targets == (3,)
        assert q.pairs == [(0, 3)]

    def test_multi_target(self):
        q = ReliabilityQuery(0, targets=(3, 4))
        assert q.pairs == [(0, 3), (0, 4)]

    def test_target_xor_targets(self):
        with pytest.raises(ValueError, match="exactly one"):
            ReliabilityQuery(0, target=1, targets=(2,))
        with pytest.raises(ValueError, match="exactly one"):
            ReliabilityQuery(0)
        with pytest.raises(ValueError, match="non-empty"):
            ReliabilityQuery(0, targets=())

    def test_unknown_estimator_fails_fast(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            ReliabilityQuery(0, target=1, estimator="nope")
        with pytest.raises(ValueError, match="unknown estimator"):
            MaximizeQuery(0, 1, estimator="nope")

    def test_invalid_budgets(self):
        with pytest.raises(ValueError):
            ReliabilityQuery(0, target=1, samples=0)
        with pytest.raises(ValueError):
            MaximizeQuery(0, 1, k=0)

    def test_workload_container(self):
        wl = Workload([ReliabilityQuery(0, target=1)])
        wl.add(MaximizeQuery(0, 2, k=1))
        assert len(wl) == 2
        with pytest.raises(TypeError):
            wl.add("not a query")

    def test_workload_pairs_constructor(self):
        wl = Workload.reliability([(0, 1), (2, 3)], samples=64)
        assert len(wl) == 2
        assert all(q.samples == 64 for q in wl)


class TestSessionParity:
    """Session-batched answers equal one-off calls at a fixed seed."""

    @pytest.mark.filterwarnings("ignore:estimator 'adaptive'")
    @pytest.mark.parametrize("name", sorted(estimator_names()))
    def test_batched_matches_per_call(self, graph, name):
        pairs = [(0, 10), (1, 20), (2, 30), (0, 40)]
        session = Session(graph, seed=13)
        workload = Workload.reliability(
            pairs, estimator=name, samples=256, seed=13
        )
        results = session.run(workload)
        for (s, t), result in zip(pairs, results, strict=True):
            solo = make_estimator(name, 256, seed=13).reliability(graph, s, t)
            assert result.values[0] == solo, (
                f"{name}: session={result.values[0]} solo={solo}"
            )

    def test_shared_batch_is_engine_deterministic(self, graph):
        # The shared world batch for (Z, seed) must be the batch a fresh
        # vectorized estimator with that seed would sample.
        session = Session(graph, seed=5)
        a = session.reliability(0, target=30, samples=512, seed=21)
        solo = MonteCarloEstimator(512, seed=21, vectorized=True)
        assert a.value == solo.reliability(graph, 0, 30)

    def test_multi_target_consistent_with_single(self, graph):
        session = Session(graph, seed=3)
        multi = session.reliability(0, targets=(10, 20, 30), samples=256)
        for t, value in multi.by_target.items():
            single = session.reliability(0, target=t, samples=256)
            assert single.value == value

    def test_evaluate_pairs_matches_legacy_estimator(self, graph):
        session = Session(graph, evaluation_samples=300, evaluation_seed=42)
        pairs = [(0, 10), (5, 20), (7, 7)]
        batched = session.evaluate_pairs(pairs)
        legacy = MonteCarloEstimator(300, seed=42).reliability_many(
            graph, pairs
        )
        assert batched == legacy

    def test_evaluate_pairs_with_overlay(self, graph):
        session = Session(graph, evaluation_samples=300, evaluation_seed=42)
        extra = [(0, 30, 0.9)]
        batched = session.evaluate_pairs([(0, 30)], extra)
        legacy = MonteCarloEstimator(300, seed=42).reliability_many(
            graph, [(0, 30)], extra
        )
        assert batched == legacy


class TestSessionBatching:
    def test_worlds_shared_across_queries_and_estimators(self, graph):
        # mc and lazy share the same statistical contract, so equal
        # (Z, seed) groups reuse one world batch across both.
        session = Session(graph, seed=9)
        results = session.run(Workload([
            ReliabilityQuery(0, target=10, estimator="mc", samples=128),
            ReliabilityQuery(1, target=20, estimator="mc", samples=128),
            ReliabilityQuery(2, target=30, estimator="lazy", samples=128),
        ]))
        assert len(session._worlds) == 1
        assert all(r.provenance.backend == "engine" for r in results)
        assert results[0].provenance.shared_worlds

    def test_distinct_seeds_get_distinct_worlds(self, graph):
        session = Session(graph, seed=9)
        session.run(Workload([
            ReliabilityQuery(0, target=10, samples=128, seed=1),
            ReliabilityQuery(0, target=10, samples=128, seed=2),
            ReliabilityQuery(0, target=10, samples=256, seed=1),
        ]))
        assert len(session._worlds) == 3

    def test_world_cache_bounded_with_fifo_eviction(self, graph):
        session = Session(graph, seed=9, max_cached_batches=2)
        baseline = session.reliability(0, target=10, samples=128, seed=1)
        session.reliability(0, target=10, samples=128, seed=2)
        session.reliability(0, target=10, samples=128, seed=3)  # evicts seed=1
        assert len(session._worlds) == 2
        assert (128, 1) not in session._worlds
        # Re-sampling an evicted (Z, seed) regenerates the identical
        # batch (fresh generator per key), so answers never change.
        again = session.reliability(0, target=10, samples=128, seed=1)
        assert again.value == baseline.value
        with pytest.raises(ValueError):
            Session(graph, max_cached_batches=0)

    def test_results_align_with_query_order(self, graph):
        queries = [
            ReliabilityQuery(0, target=10, estimator="rss", samples=64),
            MaximizeQuery(0, 20, k=1, method="mrp"),
            ReliabilityQuery(1, target=20, estimator="mc", samples=64),
        ]
        results = Session(graph, seed=2).run(Workload(queries))
        assert results[0].query is queries[0]
        assert results[1].query is queries[1]
        assert results[2].query is queries[2]

    def test_adaptive_workload_warns_no_sharing(self, graph):
        session = Session(graph, seed=4)
        workload = Workload.reliability(
            [(0, 10), (1, 20)], estimator="adaptive", samples=400
        )
        with pytest.warns(UserWarning, match="cannot share"):
            results = session.run(workload)
        assert all(not r.provenance.shared_worlds for r in results)

    def test_timings_recorded_once_per_batch(self, graph):
        session = Session(graph, seed=1)
        first = session.reliability(0, target=10, samples=256)
        second = session.reliability(1, target=20, samples=256)
        # First query pays compile + sampling; second reuses both.
        assert first.provenance.timings.sample_seconds > 0
        assert second.provenance.timings.compile_seconds == 0.0
        assert second.provenance.timings.sample_seconds == 0.0
        assert second.provenance.shared_worlds


class TestCacheInvalidation:
    def test_graph_mutation_evicts_plan_and_worlds(self, graph):
        session = Session(graph, seed=6)
        before = session.reliability(0, target=10, samples=512)
        assert session._worlds and session._plan is not None
        old_version = graph.version

        graph.add_edge(0, 10, 0.99)  # bumps graph.version
        assert graph.version > old_version

        after = session.reliability(0, target=10, samples=512)
        # The stale plan/batch were evicted and the answer reflects the
        # mutated graph: a 0.99 direct edge dominates.
        assert after.value >= 0.99
        assert after.value > before.value
        assert session._version == graph.version

    def test_invalidate_resets_state(self, graph):
        session = Session(graph, seed=6)
        session.reliability(0, target=10, samples=128)
        session.invalidate()
        assert session._plan is None and not session._worlds

    def test_mutation_between_runs_matches_fresh_session(self, graph):
        session = Session(graph, seed=6)
        session.reliability(0, target=10, samples=128)
        graph.add_edge(0, 10, 0.5)
        stale = session.reliability(0, target=10, samples=128)
        fresh = Session(graph, seed=6).reliability(0, target=10, samples=128)
        assert stale.value == fresh.value


class TestMaximizeThroughSession:
    def test_matches_legacy_facade(self, graph):
        query = MaximizeQuery(0, 30, k=2, zeta=0.6, method="be")
        session = Session(graph, seed=3, r=10, l=10)
        result = session.maximize(query)
        solver = ReliabilityMaximizer(
            estimator=make_estimator("rss", 250, seed=3), r=10, l=10, seed=3
        )
        legacy = solver.maximize(graph, 0, 30, k=2, zeta=0.6, method="be")
        assert {(u, v) for u, v, _ in result.edges} == {
            (u, v) for u, v, _ in legacy.edges
        }
        assert result.base_reliability == legacy.base_reliability

    def test_unknown_method(self, graph):
        with pytest.raises(ValueError, match="unknown method"):
            Session(graph).maximize(MaximizeQuery(0, 1, method="magic"))

    def test_query_samples_and_seed_override_session_default(self, graph):
        # Even without an explicit estimator name, samples/seed on the
        # query must reconfigure the (registry-built) default sampler.
        session = Session(graph, seed=3, r=8, l=8)
        result = session.maximize(
            MaximizeQuery(0, 30, k=1, samples=64, seed=99)
        )
        assert result.provenance.samples == 64
        assert result.provenance.seed == 99
        assert result.provenance.estimator == "rss"

    def test_query_overrides_warn_on_custom_instance(self):
        from repro.graph import UncertainGraph
        from repro.reliability import ExactEstimator

        small = UncertainGraph.from_edges(
            [(0, 1, 0.6), (1, 2, 0.5), (2, 3, 0.7), (0, 4, 0.4), (4, 3, 0.5)]
        )
        session = Session(small, estimator=ExactEstimator(), r=4, l=4)
        with pytest.warns(UserWarning, match="custom instance"):
            session.maximize(MaximizeQuery(0, 3, k=1, samples=64))

    def test_provenance(self, graph):
        result = Session(graph, seed=3, r=8, l=8).maximize(
            MaximizeQuery(0, 30, k=1, estimator="mc", samples=100)
        )
        assert result.provenance.estimator == "mc"
        assert result.provenance.samples == 100
        assert result.provenance.timings.solve_seconds > 0

    def test_batched_workload_matches_sequential(self, graph):
        """Session.run batches maximize queries (one shared base-
        evaluation pass, shared selection worlds) bit-for-bit equal to
        one-by-one execution."""
        queries = [
            MaximizeQuery(0, 30, k=2, method="hc", estimator="mc",
                          samples=128, eliminate=False),
            MaximizeQuery(1, 25, k=2, method="topk", estimator="mc",
                          samples=128, eliminate=False),
            MaximizeQuery(2, 20, k=1, method="degree", eliminate=False),
        ]
        batched = Session(graph, seed=3, r=8, l=8).run(Workload(queries))
        sequential_session = Session(graph, seed=3, r=8, l=8)
        sequential = [sequential_session.maximize(q) for q in queries]
        for got, want in zip(batched, sequential, strict=True):
            assert got.solution.edges == want.solution.edges
            assert got.solution.base_reliability == want.solution.base_reliability
            assert got.solution.new_reliability == want.solution.new_reliability

    def test_mixed_workload_ordering(self, graph):
        """Reliability and maximize queries interleave; result order
        matches query order."""
        queries = [
            ReliabilityQuery(0, target=30, samples=64),
            MaximizeQuery(0, 30, k=1, method="degree", eliminate=False),
            ReliabilityQuery(1, target=25, samples=64),
        ]
        results = Session(graph, seed=3, r=8, l=8).run(queries)
        assert results[0].query is queries[0]
        assert results[1].query is queries[1]
        assert results[2].query is queries[2]


class TestResults:
    def test_value_raises_on_multi_target(self, graph):
        result = Session(graph).reliability(0, targets=(1, 2), samples=32)
        with pytest.raises(ValueError, match="multi-target"):
            result.value
        assert len(result.values) == 2

    def test_results_table_renders(self, graph):
        results = Session(graph, seed=1).run(
            Workload.reliability([(0, 10), (1, 20)], samples=64)
        )
        rendered = results_table(results, title="t").render()
        assert "R(s,t)" in rendered and "engine" in rendered


class TestRegistry:
    def test_builtins_registered(self):
        assert {"mc", "rss", "lazy", "adaptive"} <= set(estimator_names())

    def test_aliases(self):
        assert estimator_spec("monte-carlo").name == "mc"
        assert estimator_spec("adaptive-mc").name == "adaptive"

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_estimator("mc", lambda samples, seed, **kw: None)

    def test_conflicting_alias_leaves_no_partial_entry(self):
        # "mc" is taken, so the whole registration must be rolled
        # back — neither the name nor the first alias may stick.
        with pytest.raises(ValueError, match="alias 'mc' is already taken"):
            register_estimator(
                "fresh-name",
                lambda samples, seed, **kw: None,
                aliases=("fresh-alias", "mc"),
            )
        with pytest.raises(ValueError, match="unknown estimator"):
            estimator_spec("fresh-name")
        with pytest.raises(ValueError, match="unknown estimator"):
            estimator_spec("fresh-alias")

    def test_make_estimator_types(self):
        from repro.reliability import (
            AdaptiveMonteCarlo,
            LazyPropagationEstimator,
            MonteCarloEstimator,
            RecursiveStratifiedSampler,
        )

        assert isinstance(make_estimator("mc", 10), MonteCarloEstimator)
        assert isinstance(make_estimator("rss", 10), RecursiveStratifiedSampler)
        assert isinstance(make_estimator("lazy", 10), LazyPropagationEstimator)
        adaptive = make_estimator("adaptive", 500)
        assert isinstance(adaptive, AdaptiveMonteCarlo)
        assert adaptive.max_samples == 500

    def test_custom_estimator_usable_in_session(self, graph):
        class ConstantEstimator:
            vectorized = False

            def __init__(self, value):
                self.value = value

            def reliability(self, graph, source, target, extra_edges=None):
                return self.value

        register_estimator(
            "constant-test",
            lambda samples, seed, **kw: ConstantEstimator(0.25),
            supports_vectorized=False,
            overwrite=True,
        )
        result = Session(graph).reliability(
            0, target=10, estimator="constant-test", samples=16
        )
        assert result.value == 0.25
        assert result.provenance.backend == "scalar"


class TestVectorizedFlags:
    """Every registry entry honors vectorized= (ROADMAP open item)."""

    @pytest.mark.parametrize("name", ["mc", "rss", "lazy", "adaptive"])
    def test_flag_accepted_and_recorded(self, name):
        est = make_estimator(name, 64, vectorized=True)
        assert est.vectorized is True
        est = make_estimator(name, 64, vectorized=False)
        assert est.vectorized is False

    def test_lazy_vectorized_statistical_parity(self, graph):
        fast = make_estimator("lazy", 4000, seed=1, vectorized=True)
        slow = make_estimator("lazy", 4000, seed=2, vectorized=False)
        a = fast.reliability(graph, 0, 20)
        b = slow.reliability(graph, 0, 20)
        assert a == pytest.approx(b, abs=0.06)

    def test_adaptive_vectorized_statistical_parity(self, graph):
        fast = make_estimator(
            "adaptive", 20000, seed=1, vectorized=True,
            target_half_width=0.02,
        )
        slow = make_estimator(
            "adaptive", 20000, seed=2, vectorized=False,
            target_half_width=0.02,
        )
        a = fast.estimate(graph, 0, 20)
        b = slow.estimate(graph, 0, 20)
        assert a.value == pytest.approx(b.value, abs=0.06)
        assert a.half_width <= 0.02 + 1e-9
        assert b.half_width <= 0.02 + 1e-9

    def test_adaptive_vectorized_respects_cap(self, graph):
        est = make_estimator(
            "adaptive", 600, vectorized=True, target_half_width=0.0001,
            block_size=250,
        )
        result = est.estimate(graph, 0, 20)
        assert result.samples_used == 600

    def test_adaptive_vectorized_overlay(self, graph):
        est = make_estimator(
            "adaptive", 5000, vectorized=True, target_half_width=0.02
        )
        plain = est.estimate(graph, 0, 20)
        boosted = make_estimator(
            "adaptive", 5000, vectorized=True, target_half_width=0.02
        ).estimate(graph, 0, 20, [(0, 20, 0.95)])
        assert boosted.value > plain.value
