"""Tests for Algorithm 4 (search-space elimination) and path pruning."""

import pytest

from repro.graph import UncertainGraph, fixed_new_edge_probability, path_graph, assign_fixed
from repro.reliability import ExactEstimator, MonteCarloEstimator
from repro.core import (
    candidate_edges_between,
    eliminate_search_space,
    select_top_l_paths,
    top_r_nodes,
)


@pytest.fixture
def chain():
    g = path_graph(8)
    assign_fixed(g, 0.6)
    return g


class TestTopRNodes:
    def test_orders_by_probability(self):
        reach = {1: 0.2, 2: 0.9, 3: 0.5}
        assert top_r_nodes(reach, 2, must_include=2) == [2, 3]

    def test_anchor_forced_in(self):
        reach = {1: 0.9, 2: 0.8, 3: 0.7}
        chosen = top_r_nodes(reach, 2, must_include=3)
        assert 3 in chosen and len(chosen) == 2

    def test_ties_break_deterministically(self):
        reach = {5: 0.5, 1: 0.5, 3: 0.5}
        assert top_r_nodes(reach, 2, must_include=1) == [1, 3]


class TestCandidateEdges:
    def test_excludes_existing_and_self(self, chain):
        edges = candidate_edges_between(
            chain, [0, 1], [1, 2], fixed_new_edge_probability(0.5)
        )
        pairs = {(u, v) for u, v, _ in edges}
        assert (0, 1) not in pairs  # existing
        assert (1, 1) not in pairs
        assert (0, 2) in pairs

    def test_h_constraint(self, chain):
        edges = candidate_edges_between(
            chain, [0], [2, 7], fixed_new_edge_probability(0.5), h=3
        )
        pairs = {(u, v) for u, v, _ in edges}
        assert (0, 2) in pairs
        assert (0, 7) not in pairs  # 7 hops away

    def test_forbidden_nodes(self, chain):
        edges = candidate_edges_between(
            chain, [0, 3], [5], fixed_new_edge_probability(0.5),
            forbidden_nodes={3},
        )
        assert all(u != 3 and v != 3 for u, v, _ in edges)

    def test_undirected_deduplication(self):
        g = UncertainGraph()
        for u in range(3):
            g.add_node(u)
        edges = candidate_edges_between(
            g, [0, 1], [0, 1], fixed_new_edge_probability(0.5)
        )
        assert len(edges) == 1  # (0, 1) only once

    def test_probability_model_applied(self, chain):
        model = fixed_new_edge_probability(0.37)
        edges = candidate_edges_between(chain, [0], [5], model)
        assert edges[0][2] == 0.37


class TestEliminateSearchSpace:
    def test_relevant_nodes_selected(self, chain):
        space = eliminate_search_space(
            chain, 0, 7, r=3,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        # Top-3 from node 0 on a 0.6-chain: nodes 0, 1, 2.
        assert space.source_side == [0, 1, 2]
        assert space.target_side == [7, 6, 5]

    def test_candidates_bridge_the_sides(self, chain):
        space = eliminate_search_space(
            chain, 0, 7, r=2,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        pairs = {(u, v) for u, v, _ in space.edges}
        assert pairs == {(0, 7), (0, 6), (1, 7), (1, 6)}

    def test_timing_recorded(self, chain):
        space = eliminate_search_space(
            chain, 0, 7, r=2,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=MonteCarloEstimator(50, seed=0),
        )
        assert space.elapsed_seconds > 0.0

    def test_search_space_shrinks_with_r(self, chain):
        small = eliminate_search_space(
            chain, 0, 7, r=2,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        large = eliminate_search_space(
            chain, 0, 7, r=5,
            new_edge_prob=fixed_new_edge_probability(0.5),
            estimator=ExactEstimator(),
        )
        assert len(small.edges) < len(large.edges)


class TestSelectTopLPaths:
    def test_candidates_on_no_path_dropped(self, chain):
        candidates = [(0, 7, 0.5), (1, 6, 0.01)]  # second is hopeless
        path_set = select_top_l_paths(chain, 0, 7, l=1, candidates=candidates)
        surviving = {(u, v) for u, v, _ in path_set.surviving_candidates}
        assert surviving == {(0, 7)}

    def test_paths_annotated(self, chain):
        path_set = select_top_l_paths(
            chain, 0, 7, l=2, candidates=[(0, 7, 0.5)]
        )
        direct = next(p for p in path_set.paths if p.nodes == [0, 7])
        assert direct.candidate_edges == frozenset({(0, 7)})
        assert direct.existing_edges == ()
        blue = next(p for p in path_set.paths if len(p.nodes) == 8)
        assert blue.candidate_edges == frozenset()
        assert len(blue.existing_edges) == 7

    def test_empty_candidates(self, chain):
        path_set = select_top_l_paths(chain, 0, 7, l=3, candidates=[])
        assert path_set.surviving_candidates == []
        assert len(path_set.paths) == 1
