"""The paper's worked examples: Figure 2 (Lemma 1), Figure 3 / Table 2,
Observation 4, and the MAX-k-COVER reduction gadget of Theorem 1.

These tests pin the library's semantics to the exact numbers printed in
the paper, using exact reliability computation.
"""

import itertools
from typing import ClassVar

import pytest

from repro.graph import UncertainGraph
from repro.reliability import exact_reliability

S, A, B, T = 0, 1, 2, 3


def figure3_graph(alpha: float) -> UncertainGraph:
    """Figure 3: edges AB and At with probability alpha; st impossible."""
    g = UncertainGraph()
    g.add_node(S)
    g.add_edge(A, B, alpha)
    g.add_edge(A, T, alpha)
    return g


class TestFigure2Lemma1:
    """Non-submodularity / non-supermodularity counterexample."""

    def build(self, extra):
        g = UncertainGraph()
        for node in (0, 1, 2):  # s, A, t
            g.add_node(node)
        for u, v in extra:
            g.add_edge(u, v, 0.5)
        return g

    def test_submodularity_violated(self):
        s, a, t = 0, 1, 2
        x = [(s, t)]
        y = [(s, t), (s, a)]
        r_x = exact_reliability(self.build(x), s, t)
        r_y = exact_reliability(self.build(y), s, t)
        r_x_plus = exact_reliability(self.build([*x, (a, t)]), s, t)
        r_y_plus = exact_reliability(self.build([*y, (a, t)]), s, t)
        assert r_x == pytest.approx(0.5)
        assert r_y == pytest.approx(0.5)
        assert r_x_plus == pytest.approx(0.5)
        assert r_y_plus == pytest.approx(0.625)
        # f(X + x) - f(X) = 0 < 0.125 = f(Y + x) - f(Y): not submodular.
        assert (r_x_plus - r_x) < (r_y_plus - r_y)

    def test_supermodularity_violated(self):
        s, a, t = 0, 1, 2
        x = [(s, a)]
        y = [(s, a), (s, t)]
        r_x = exact_reliability(self.build(x), s, t)
        r_y = exact_reliability(self.build(y), s, t)
        r_x_plus = exact_reliability(self.build([*x, (a, t)]), s, t)
        r_y_plus = exact_reliability(self.build([*y, (a, t)]), s, t)
        assert r_x == pytest.approx(0.0)
        assert r_y == pytest.approx(0.5)
        assert r_x_plus == pytest.approx(0.25)
        assert r_y_plus == pytest.approx(0.625)
        # Increment drops from 0.25 to 0.125: not supermodular.
        assert (r_x_plus - r_x) > (r_y_plus - r_y)


class TestTable2Characterization:
    """Reliability of the three k=2 solutions under (alpha, zeta)."""

    CASES: ClassVar = [
        # alpha, zeta, R({sA,sB}), R({sA,Bt}), R({sB,Bt})
        (0.5, 0.7, 0.403, 0.473, 0.543),
        (0.5, 0.3, 0.203, 0.173, 0.143),
        (0.9, 0.7, 0.800, 0.674, 0.660),
    ]

    @staticmethod
    def reliability_with(alpha, zeta, new_edges):
        g = figure3_graph(alpha)
        extra = [(u, v, zeta) for u, v in new_edges]
        return exact_reliability(g, S, T, extra)

    @pytest.mark.parametrize("alpha,zeta,r_ab,r_abt,r_bbt", CASES)
    def test_row_values(self, alpha, zeta, r_ab, r_abt, r_bbt):
        assert self.reliability_with(
            alpha, zeta, [(S, A), (S, B)]
        ) == pytest.approx(r_ab, abs=1e-3)
        assert self.reliability_with(
            alpha, zeta, [(S, A), (B, T)]
        ) == pytest.approx(r_abt, abs=1e-3)
        assert self.reliability_with(
            alpha, zeta, [(S, B), (B, T)]
        ) == pytest.approx(r_bbt, abs=1e-3)

    def test_observation_1_optimum_varies_with_zeta(self):
        # Same alpha, different zeta -> different optimal solution.
        best_07 = self._best(0.5, 0.7)
        best_03 = self._best(0.5, 0.3)
        assert best_07 != best_03

    def test_observation_2_optimum_varies_with_alpha(self):
        best_05 = self._best(0.5, 0.7)
        best_09 = self._best(0.9, 0.7)
        assert best_05 != best_09

    def test_observation_3_no_subset_structure(self):
        # k=1 optimum is {sA}; k=2 optimum at (0.5, 0.7) is {sB, Bt}.
        alpha, zeta = 0.5, 0.7
        singles = {
            frozenset([e]): self.reliability_with(alpha, zeta, [e])
            for e in [(S, A), (S, B), (B, T)]
        }
        best_single = max(singles, key=singles.get)
        assert best_single == frozenset([(S, A)])
        assert self._best(alpha, zeta) == frozenset([(S, B), (B, T)])
        assert not best_single <= self._best(alpha, zeta)

    def _best(self, alpha, zeta):
        options = [
            frozenset([(S, A), (S, B)]),
            frozenset([(S, A), (B, T)]),
            frozenset([(S, B), (B, T)]),
        ]
        return max(
            options,
            key=lambda edges: self.reliability_with(alpha, zeta, list(edges)),
        )

    def test_k1_solution_is_sA(self):
        # With k=1: R({sA}) = alpha * zeta beats alpha^2 * zeta and 0.
        alpha, zeta = 0.5, 0.7
        r_sa = self.reliability_with(alpha, zeta, [(S, A)])
        r_sb = self.reliability_with(alpha, zeta, [(S, B)])
        r_bt = self.reliability_with(alpha, zeta, [(B, T)])
        assert r_sa == pytest.approx(alpha * zeta)
        assert r_sb == pytest.approx(alpha * alpha * zeta)
        assert r_bt == 0.0


class TestObservation4:
    """The direct st edge, when addable, belongs to the top-k optimum."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_direct_edge_always_in_optimum(self, k, diamond):
        zeta = 0.5
        candidates = [(u, v) for u, v in diamond.missing_edges()]
        assert (0, 3) in candidates
        best_set, best_val = None, -1.0
        for subset in itertools.combinations(candidates, k):
            extra = [(u, v, zeta) for u, v in subset]
            val = exact_reliability(diamond, 0, 3, extra)
            if val > best_val:
                best_val, best_set = val, subset
        assert (0, 3) in best_set


class TestMaxKCoverGadget:
    """Theorem 1's reduction: reliability = 1 - (1-p)^q for q covered."""

    def test_coverage_formula(self):
        # Sets S1={u1,u2}, S2={u2,u3}; p = 0.4; zeta = 1.
        p = 0.4
        g = UncertainGraph(directed=True)
        s, s1, s2, u1, u2, u3, t = range(7)
        g.add_node(s)
        for set_node, members in [(s1, (u1, u2)), (s2, (u2, u3))]:
            for u in members:
                g.add_edge(set_node, u, 1.0)
        for u in (u1, u2, u3):
            g.add_edge(u, t, p)
        # Choosing S1 alone covers q=2 elements.
        r1 = exact_reliability(g, s, t, [(s, s1, 1.0)])
        assert r1 == pytest.approx(1 - (1 - p) ** 2)
        # Choosing both sets covers q=3.
        r2 = exact_reliability(g, s, t, [(s, s1, 1.0), (s, s2, 1.0)])
        assert r2 == pytest.approx(1 - (1 - p) ** 3)
        # Monotone in coverage, exactly as the NP-hardness proof needs.
        assert r2 > r1
