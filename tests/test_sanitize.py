"""Runtime sanitizer tests: switches, thread affinity, frozen batches,
kernel probability asserts.

Covers the dynamic half of the invariant tooling: the checks only fire
when the sanitizer is on, sessions/stores bind to their first calling
thread and reject others, the serving layer's explicit ownership
hand-off works, and cached world batches are immutable.
"""

import threading

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError, ThreadAffinity
from repro.api import ReliabilityQuery, Session, Workload
from repro.engine import batch_from_words, compile_plan, sample_worlds
from repro.graph import UncertainGraph
from repro.index import IndexStore


@pytest.fixture
def sanitizer_on():
    sanitize.enable()
    try:
        yield
    finally:
        sanitize.reset()


@pytest.fixture
def sanitizer_off(monkeypatch):
    """Force-disable, so these tests hold under REPRO_SANITIZE=1 runs."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sanitize.disable()
    try:
        yield
    finally:
        sanitize.reset()


def build_graph():
    return UncertainGraph.from_edges(
        [(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3)]
    )


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread; re-raise anything it raised."""
    box = {}

    def runner():
        try:
            box["value"] = fn()
        except BaseException as error:  # pragma: no cover - via caller
            box["error"] = error

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join()
    if "error" in box:
        raise box["error"]
    return box.get("value")


# ----------------------------------------------------------------------
# switches
# ----------------------------------------------------------------------

def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitize.enabled()


def test_enable_disable_reset(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    sanitize.enable()
    try:
        assert sanitize.enabled()
        sanitize.disable()
        assert not sanitize.enabled()
        sanitize.reset()
        assert not sanitize.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize.enabled()
        # A programmatic override beats the environment in both ways.
        sanitize.disable()
        assert not sanitize.enabled()
    finally:
        sanitize.reset()


@pytest.mark.parametrize("value,expect", [
    ("1", True), ("true", True), ("YES", True), ("on", True),
    ("0", False), ("", False), ("off", False),
])
def test_env_values(monkeypatch, value, expect):
    monkeypatch.setenv("REPRO_SANITIZE", value)
    assert sanitize.enabled() is expect


# ----------------------------------------------------------------------
# thread affinity
# ----------------------------------------------------------------------

def test_affinity_noop_when_disabled(sanitizer_off):
    affinity = ThreadAffinity("thing")
    affinity.check("op")
    run_in_thread(lambda: affinity.check("op"))  # no error: sanitizer off


def test_affinity_binds_lazily_and_rejects_cross_thread(sanitizer_on):
    affinity = ThreadAffinity("thing")
    affinity.check("op")  # binds to this thread
    affinity.check("op")  # same thread: fine
    with pytest.raises(SanitizerError, match="owned by thread"):
        run_in_thread(lambda: affinity.check("op"))
    affinity.rebind()
    run_in_thread(lambda: affinity.check("op"))  # new owner after rebind
    with pytest.raises(SanitizerError):
        affinity.check("op")  # old owner is now the intruder


def test_session_rejects_cross_thread_use(sanitizer_on):
    session = Session(build_graph(), seed=7)
    session.reliability(0, target=2, samples=200)
    with pytest.raises(SanitizerError, match="Session"):
        run_in_thread(lambda: session.reliability(0, target=2, samples=200))


def test_session_unguarded_when_disabled(sanitizer_off):
    session = Session(build_graph(), seed=7)
    session.reliability(0, target=2, samples=200)
    value = run_in_thread(
        lambda: session.reliability(0, target=2, samples=200).value
    )
    assert 0.0 <= value <= 1.0


def test_async_session_hand_off(sanitizer_on):
    # A session used on the main thread first, then wrapped: the
    # coalescer's explicit rebind hands ownership to its worker thread.
    import asyncio

    from repro.serve import AsyncSession

    session = Session(build_graph(), seed=7)
    direct = session.reliability(0, target=2, samples=500)

    async def scenario():
        async with AsyncSession(session, max_wait_ms=1.0) as serving:
            return await serving.submit(
                ReliabilityQuery(0, target=2, samples=500)
            )

    served = asyncio.run(scenario())
    assert served.values == direct.values


def test_store_write_paths_reject_cross_thread(sanitizer_on, tmp_path):
    graph = build_graph()
    plan = compile_plan(graph)
    words = sample_worlds(plan, 128, np.random.default_rng(1)).alive
    with IndexStore(tmp_path / "store") as store:
        store.save_batch(graph.content_hash(), 128, 1, words)  # binds
        with pytest.raises(SanitizerError, match="IndexStore"):
            run_in_thread(
                lambda: store.put_results(
                    graph.content_hash(), "mc", {(0, 2): 0.5}, 128, 1
                )
            )
        # Reads stay sanctioned cross-thread (the /healthz contract).
        stats = run_in_thread(store.stats)
        assert stats.num_batches == 1


# ----------------------------------------------------------------------
# frozen world batches
# ----------------------------------------------------------------------

def test_session_cached_batches_are_frozen():
    session = Session(build_graph(), seed=3)
    session.reliability(0, target=2, samples=256)
    (batch, _), = session._worlds.values()
    assert not batch.alive.flags.writeable
    assert not batch.valid.flags.writeable
    with pytest.raises(ValueError):
        batch.alive[0] = 0


def test_batch_from_words_freezes_words():
    graph = build_graph()
    plan = compile_plan(graph)
    words = np.array(
        sample_worlds(plan, 64, np.random.default_rng(5)).alive
    )
    assert words.flags.writeable
    batch = batch_from_words(words, 64)
    assert not batch.alive.flags.writeable
    with pytest.raises(ValueError):
        batch.alive[0, 0] = np.uint64(1)


# ----------------------------------------------------------------------
# kernel probability asserts
# ----------------------------------------------------------------------

def test_check_probabilities_accepts_valid():
    sanitize.check_probabilities(np.array([0.0, 0.5, 1.0]))
    sanitize.check_probabilities(np.array([]))
    sanitize.check_probabilities(0.25)


@pytest.mark.parametrize("bad", [
    np.array([0.5, np.nan]),
    np.array([0.5, np.inf]),
    np.array([-0.1, 0.5]),
    np.array([0.5, 1.5]),
])
def test_check_probabilities_rejects_dirty(bad):
    with pytest.raises(SanitizerError):
        sanitize.check_probabilities(bad)


def test_sample_worlds_asserts_probs_when_enabled(sanitizer_on):
    graph = build_graph()
    plan = compile_plan(graph)
    dirty = np.array(plan.probs)
    dirty[0] = np.nan
    plan.probs = dirty  # QueryPlan is a plain container; simulate rot
    with pytest.raises(SanitizerError, match="sample_worlds"):
        sample_worlds(plan, 64, np.random.default_rng(0))


def test_bernoulli_row_asserts_p_when_enabled(sanitizer_on):
    from repro.engine.kernel import bernoulli_row

    with pytest.raises(SanitizerError, match="bernoulli_row"):
        bernoulli_row(1.5, 64, np.random.default_rng(0))


def test_kernel_accepts_clean_probs_when_enabled(sanitizer_on):
    graph = build_graph()
    plan = compile_plan(graph)
    batch = sample_worlds(plan, 64, np.random.default_rng(0))
    assert batch.alive.shape[0] == plan.num_edges
