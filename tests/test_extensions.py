"""Tests for the extension modules: probability-budget MRP maximization
(the paper's stated future work) and the BFS-sharing index estimator."""

import pytest

from repro.graph import UncertainGraph, assign_fixed, path_graph
from repro.reliability import BFSSharingIndex, MonteCarloEstimator, exact_reliability
from repro.core import improve_mrp_with_probability_budget


class TestProbabilityBudget:
    def test_single_edge_gets_whole_budget(self, diamond):
        solution = improve_mrp_with_probability_budget(
            diamond, 0, 3, max_new_edges=1, total_probability=0.9
        )
        assert [(u, v) for u, v, _ in solution.edges] == [(0, 3)]
        assert solution.edges[0][2] == pytest.approx(0.9)
        assert solution.new_probability == pytest.approx(0.9)

    def test_budget_split_evenly(self):
        # Restrict candidates so the path must use two new edges
        # (otherwise a direct 0-3 edge capped at p=1 would win).
        g = UncertainGraph()
        g.add_edge(1, 2, 0.9)
        g.add_node(0)
        g.add_node(3)
        solution = improve_mrp_with_probability_budget(
            g, 0, 3, max_new_edges=2, total_probability=1.2,
            candidates=[(0, 1), (2, 3)],
        )
        assert len(solution.edges) == 2
        for _, _, p in solution.edges:
            assert p == pytest.approx(0.6)
        assert solution.budget_spent == pytest.approx(1.2)
        assert solution.new_probability == pytest.approx(0.6 * 0.9 * 0.6)

    def test_prefers_fewer_edges_when_budget_small(self):
        # With B=0.5 one direct edge (p=0.5) beats two 0.25 edges
        # through an intermediate (0.25 * 0.25 < 0.5).
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        g.add_node(2)
        solution = improve_mrp_with_probability_budget(
            g, 0, 2, max_new_edges=2, total_probability=0.5
        )
        assert len(solution.edges) == 1
        assert solution.new_probability == pytest.approx(0.5)

    def test_no_improvement_possible(self):
        g = UncertainGraph.from_edges([(0, 1, 1.0)])
        solution = improve_mrp_with_probability_budget(
            g, 0, 1, max_new_edges=2, total_probability=0.4
        )
        assert solution.edges == []
        assert solution.new_probability == pytest.approx(1.0)

    def test_per_edge_probability_capped_at_one(self):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        solution = improve_mrp_with_probability_budget(
            g, 0, 1, max_new_edges=1, total_probability=5.0
        )
        assert solution.edges[0][2] == pytest.approx(1.0)

    def test_candidate_restriction(self, diamond):
        solution = improve_mrp_with_probability_budget(
            diamond, 0, 3, max_new_edges=1, total_probability=0.9,
            candidates=[(1, 2)],
        )
        assert (0, 3) not in {(u, v) for u, v, _ in solution.edges}

    def test_validation(self, diamond):
        with pytest.raises(ValueError):
            improve_mrp_with_probability_budget(diamond, 0, 3, 0, 0.5)
        with pytest.raises(ValueError):
            improve_mrp_with_probability_budget(diamond, 0, 3, 1, 0.0)

    def test_more_budget_never_hurts(self, diamond):
        small = improve_mrp_with_probability_budget(
            diamond, 0, 3, max_new_edges=2, total_probability=0.4
        )
        large = improve_mrp_with_probability_budget(
            diamond, 0, 3, max_new_edges=2, total_probability=1.0
        )
        assert large.new_probability >= small.new_probability - 1e-12


class TestBFSSharingIndex:
    def test_matches_exact(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=8000, seed=1)
        truth = exact_reliability(diamond, 0, 3)
        assert index.reliability(diamond, 0, 3) == pytest.approx(truth, abs=0.03)

    def test_rejects_other_graphs(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=10, seed=1)
        other = diamond.copy()
        with pytest.raises(ValueError, match="indexed"):
            index.reliability(other, 0, 3)

    def test_repeat_queries_are_consistent(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=100, seed=1)
        a = index.reliability(diamond, 0, 3)
        b = index.reliability(diamond, 0, 3)
        assert a == b

    def test_overlay_edges(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=8000, seed=2)
        truth = exact_reliability(diamond, 0, 3, [(0, 3, 0.9)])
        estimate = index.reliability(diamond, 0, 3, [(0, 3, 0.9)])
        assert estimate == pytest.approx(truth, abs=0.03)

    def test_reachability_from(self, diamond):
        index = BFSSharingIndex(diamond, num_samples=8000, seed=3)
        reach = index.reachability_from(diamond, 0)
        assert reach[0] == 1.0
        truth = exact_reliability(diamond, 0, 3)
        assert reach[3] == pytest.approx(truth, abs=0.03)

    def test_pair_reliabilities_share_worlds(self):
        g = path_graph(5)
        assign_fixed(g, 0.6)
        index = BFSSharingIndex(g, num_samples=6000, seed=4)
        values = index.pair_reliabilities(g, [(0, 2), (0, 4), (1, 3)])
        mc = MonteCarloEstimator(6000, seed=5)
        for pair, value in values.items():
            assert value == pytest.approx(
                mc.reliability(g, *pair), abs=0.04
            )

    def test_index_faster_than_resampling_for_many_queries(self):
        import time

        g = path_graph(60)
        assign_fixed(g, 0.7)
        pairs = [(i, i + 10) for i in range(0, 50, 2)]
        index = BFSSharingIndex(g, num_samples=300, seed=6)
        start = time.perf_counter()
        index.pair_reliabilities(g, pairs)
        indexed = time.perf_counter() - start
        mc = MonteCarloEstimator(300, seed=7)
        start = time.perf_counter()
        for pair in pairs:
            mc.reliability(g, *pair)
        resampled = time.perf_counter() - start
        # Shared worlds amortize: the index answers the batch in
        # comparable-or-better time despite computing full reach sets.
        assert indexed < resampled * 3

    def test_invalid_samples(self, diamond):
        with pytest.raises(ValueError):
            BFSSharingIndex(diamond, num_samples=0)
