"""Qualitative Table-8 shape checks for the dataset stand-ins.

The stand-ins are smaller than the paper's graphs, but the *relative*
structural properties the evaluation leans on must hold: regular graphs
have the longest shortest paths, small-world/DBLP-like graphs cluster
heavily, the twitter-like graph is the sparsest real stand-in, and every
probability model produces the right range.
"""

import pytest

from repro import datasets
from repro.graph import (
    average_shortest_path_length,
    clustering_coefficient,
    probability_summary,
    summarize,
)

N = 600


@pytest.fixture(scope="module")
def graphs():
    names = [
        "lastfm", "as-topology", "dblp", "twitter",
        "random-1", "regular-1", "smallworld-1", "scalefree-1",
    ]
    return {name: datasets.load(name, num_nodes=N, seed=0) for name in names}


class TestStructuralShape:
    def test_regular_has_longest_paths(self, graphs):
        """Table 8: regular graphs' avg SPL ~11 vs ~4-5 for the rest."""
        regular = average_shortest_path_length(graphs["regular-1"], num_sources=30)
        smallworld = average_shortest_path_length(
            graphs["smallworld-1"], num_sources=30
        )
        scalefree = average_shortest_path_length(
            graphs["scalefree-1"], num_sources=30
        )
        assert regular > smallworld
        assert regular > scalefree

    def test_smallworld_clusters_more_than_random(self, graphs):
        """Table 8: C.Coe. 0.55 (small-world) vs 0.11 (random)."""
        assert clustering_coefficient(graphs["smallworld-1"]) > (
            clustering_coefficient(graphs["random-1"]) + 0.1
        )

    def test_dblp_clusters_more_than_lastfm(self, graphs):
        """Table 8: DBLP C.Coe. 0.63 vs LastFM 0.13."""
        assert clustering_coefficient(graphs["dblp"]) > (
            clustering_coefficient(graphs["lastfm"])
        )

    def test_twitter_is_sparsest_real_standin(self, graphs):
        degree = {
            name: 2 * graphs[name].num_edges / graphs[name].num_nodes
            for name in ("lastfm", "dblp", "twitter")
        }
        assert degree["twitter"] <= min(degree["lastfm"], degree["dblp"]) + 0.5

    def test_device_networks_directed(self, graphs):
        assert graphs["as-topology"].directed
        assert not graphs["dblp"].directed


class TestProbabilityShape:
    def test_synthetic_probabilities_in_range(self, graphs):
        mean, _, quartiles = probability_summary(graphs["random-1"])
        assert 0.2 < mean < 0.4          # uniform(0, 0.6] -> mean ~0.3
        assert quartiles[2] <= 0.6

    def test_lastfm_probabilities_inverse_degree(self, graphs):
        mean, _, _ = probability_summary(graphs["lastfm"])
        # Inverse-out-degree on a k~7 graph: mean ~1/7 to ~1/3.
        assert 0.05 < mean < 0.45

    def test_dblp_twitter_exponential_cdf_low(self, graphs):
        for name in ("dblp", "twitter"):
            mean, _, _ = probability_summary(graphs[name])
            # 1 - exp(-t/20) with small t: the paper reports 0.11-0.14.
            assert 0.05 < mean < 0.30

    def test_summaries_render(self, graphs):
        for name, graph in graphs.items():
            summary = summarize(graph)
            row = summary.row()
            assert len(row) == 8
            assert summary.num_nodes == graph.num_nodes
