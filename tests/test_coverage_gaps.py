"""Final-pass tests for corners not covered elsewhere."""

import pytest

# Explicit, reasoned skip instead of silently passing on a numpy-less
# interpreter: every engine-backed case below names why it was skipped.
np = pytest.importorskip(
    "numpy",
    reason="engine coverage cases need the vectorized engine (numpy)",
)

from repro.datasets import intel_lab
from repro.graph import (
    UncertainGraph,
    assign_fixed,
    fixed_new_edge_probability,
    path_graph,
)
from repro.reliability import (
    ExactEstimator,
    RecursiveStratifiedSampler,
    exact_reliability,
)
from repro.core import (
    MultiSourceTargetMaximizer,
    ReliabilityMaximizer,
    improve_mrp_with_probability_budget,
)
from repro.experiments import measure
from repro.queries import pairs_at_exact_distance


class TestRssConfiguration:
    """RSS must stay correct under degenerate configurations."""

    def test_depth_cap_falls_back_to_mc(self, diamond):
        est = RecursiveStratifiedSampler(
            2000, max_depth=0, seed=1  # every call is an MC leaf
        )
        truth = exact_reliability(diamond, 0, 3)
        assert est.reliability(diamond, 0, 3) == pytest.approx(truth, abs=0.05)

    def test_tiny_threshold_forces_recursion(self, diamond):
        est = RecursiveStratifiedSampler(
            2000, mc_threshold=1, max_depth=3, seed=2
        )
        truth = exact_reliability(diamond, 0, 3)
        assert est.reliability(diamond, 0, 3) == pytest.approx(truth, abs=0.05)

    def test_single_stratum_edge(self, diamond):
        est = RecursiveStratifiedSampler(
            2000, num_stratify_edges=1, seed=3
        )
        truth = exact_reliability(diamond, 0, 3)
        assert est.reliability(diamond, 0, 3) == pytest.approx(truth, abs=0.05)


class TestIntelLabDirectionality:
    def test_links_can_be_asymmetric(self):
        graph = intel_lab.build()
        asymmetric = sum(
            1 for u, v, _ in graph.edges() if not graph.has_edge(v, u)
        )
        assert asymmetric > 0  # radio links are direction-specific

    def test_candidate_links_are_directed_pairs(self):
        graph = intel_lab.build()
        positions = intel_lab.sensor_positions()
        pairs = intel_lab.candidate_links(graph, positions)
        # The directed candidate list may contain (u,v) without (v,u)
        # when one direction already exists.
        as_set = set(pairs)
        assert all((u, v) not in as_set or not graph.has_edge(u, v)
                   for u, v in pairs)


class TestProbabilityBudgetWithH:
    def test_h_constraint_respected(self):
        g = path_graph(8)
        assign_fixed(g, 0.5)
        solution = improve_mrp_with_probability_budget(
            g, 0, 7, max_new_edges=2, total_probability=1.6, h=2
        )
        for u, v, _ in solution.edges:
            assert abs(u - v) <= 2


class TestMeasureKwargs:
    def test_kwargs_forwarded(self):
        result = measure(sorted, [3, 1, 2], reverse=True)
        assert result.value == [3, 2, 1]


class TestQueriesDirected:
    def test_exact_distance_respects_direction(self):
        g = UncertainGraph(directed=True)
        for i in range(5):
            g.add_edge(i, i + 1, 0.5)
        pairs = pairs_at_exact_distance(g, 3, 2, seed=1)
        for s, t in pairs:
            assert t - s == 3  # only forward hops exist


class TestK1Installments:
    def test_quarter_fraction_runs_multiple_rounds(self):
        g = UncertainGraph()
        # Weak pair that can absorb several rounds of improvement.
        g.add_edge(0, 1, 0.2)
        g.add_edge(1, 2, 0.2)
        g.add_edge(2, 3, 0.2)
        solver = MultiSourceTargetMaximizer(
            estimator=ExactEstimator(), evaluation_samples=800,
            r=4, l=5, k1_fraction=0.25,
        )
        solution = solver.maximize(
            g, [0], [3], k=4, zeta=0.9, aggregate="minimum"
        )
        # Four rounds of k1=1 should fill the budget.
        assert len(solution.edges) >= 2
        assert solution.gain > 0.2


class TestFacadeDeterminism:
    def test_same_seed_same_solution(self):
        g = path_graph(7)
        assign_fixed(g, 0.5)

        def run():
            solver = ReliabilityMaximizer(
                estimator=RecursiveStratifiedSampler(150, seed=5),
                evaluation_samples=300, r=5, l=8, seed=5,
            )
            return solver.maximize(g, 0, 6, k=2, zeta=0.6)

        a, b = run(), run()
        assert [(u, v) for u, v, _ in a.edges] == [
            (u, v) for u, v, _ in b.edges
        ]
        assert a.new_reliability == b.new_reliability

    def test_random_method_seeded(self):
        g = path_graph(7)
        assign_fixed(g, 0.5)
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), evaluation_samples=200,
            r=5, l=8, seed=11,
        )
        a = solver.maximize(g, 0, 6, k=2, method="random")
        b = solver.maximize(g, 0, 6, k=2, method="random")
        assert [(u, v) for u, v, _ in a.edges] == [
            (u, v) for u, v, _ in b.edges
        ]


class TestReliabilityManyEmptyWorkload:
    """``reliability_many([])`` is a no-op on every implementation.

    The empty workload must neither compile a plan nor flip a single
    coin — and certainly not raise — at any of the three entry points
    (engine, estimator base class, deprecated facade shim).
    """

    def _graph(self):
        g = path_graph(4)
        assign_fixed(g, 0.5)
        return g

    def test_engine_empty_pairs(self):
        from repro.engine import VectorizedSamplingEngine

        engine = VectorizedSamplingEngine(seed=1)
        assert engine.reliability_many(self._graph(), [], 128) == []

    def test_estimator_empty_pairs(self):
        est = RecursiveStratifiedSampler(100, seed=1)
        assert est.reliability_many(self._graph(), []) == []

    def test_facade_empty_pairs(self):
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), evaluation_samples=100,
        )
        assert solver.reliability_many(self._graph(), []) == []


class TestSolutionReporting:
    def test_num_candidates_tracks_space(self):
        g = path_graph(6)
        assign_fixed(g, 0.5)
        solver = ReliabilityMaximizer(
            estimator=ExactEstimator(), evaluation_samples=200, r=3, l=5,
        )
        solution = solver.maximize(g, 0, 5, k=1, zeta=0.5)
        space = solver.candidates(g, 0, 5, fixed_new_edge_probability(0.5))
        assert solution.num_candidates == len(space.edges)
