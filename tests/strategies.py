"""Shared hypothesis strategies for the test suite.

One home for the generators every property-based suite draws from, so
``test_properties.py``, ``test_bounds_maxflow.py`` and
``test_delta_parity.py`` exercise the *same* distribution of graphs —
a shrunk counterexample from one suite reproduces in the others.

``conftest.py`` re-exports :func:`small_uncertain_graphs` for backward
compatibility with older imports.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.api import GraphDelta
from repro.graph import UncertainGraph

#: Edit-op token: ``("upsert", u, v, p)`` or ``("delete", u, v, 0.0)``.
EditOp = Tuple[str, int, int, float]


def edge_probabilities(min_value: float = 0.05) -> st.SearchStrategy[float]:
    """Edge probabilities bounded away from 0 (degenerate coins)."""
    return st.floats(
        min_value=min_value, max_value=1.0,
        allow_nan=False, allow_infinity=False,
    )


def small_uncertain_graphs(
    max_nodes: int = 6,
    directed: bool = False,
) -> st.SearchStrategy[UncertainGraph]:
    """Hypothesis strategy: random small graphs with probabilistic edges."""

    @st.composite
    def build(draw) -> UncertainGraph:
        n = draw(st.integers(min_value=2, max_value=max_nodes))
        is_directed = draw(st.booleans()) if directed else False
        g = UncertainGraph(directed=is_directed)
        for u in range(n):
            g.add_node(u)
        max_edges = n * (n - 1) if is_directed else n * (n - 1) // 2
        num_edges = draw(st.integers(min_value=0, max_value=min(max_edges, 9)))
        for _ in range(num_edges):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u == v:
                continue
            p = draw(edge_probabilities())
            g.add_edge(u, v, p)
        return g

    return build()


def edit_ops(
    max_node: int = 7,
    max_ops: int = 6,
) -> st.SearchStrategy[List[EditOp]]:
    """Abstract edit-op sequences for streaming-update tests.

    Ops are *tokens*, not yet a valid :class:`~repro.api.GraphDelta` —
    a drawn delete may name an edge the graph does not have.  Resolve a
    token list against the live graph with :func:`resolve_delta`, which
    keeps only applicable deletes; this keeps the strategy independent
    of the (evolving) graph the test applies it to.
    """
    node = st.integers(min_value=0, max_value=max_node)
    upsert = st.tuples(st.just("upsert"), node, node, edge_probabilities())
    delete = st.tuples(st.just("delete"), node, node, st.just(0.0))
    return st.lists(st.one_of(upsert, delete), min_size=1, max_size=max_ops)


def resolve_delta(graph: UncertainGraph, ops: List[EditOp]) -> GraphDelta:
    """Turn abstract :func:`edit_ops` tokens into a valid delta.

    Self-loops are dropped, deletes that do not name a live edge are
    dropped, duplicate deletes collapse (undirected edges canonicalize
    on the sorted endpoint pair), and later upserts of the same edge
    win.  The result always passes ``GraphDelta.validate(graph)``.
    """
    deletes: dict = {}
    upserts: dict = {}

    def canon(u: int, v: int) -> Tuple[int, int]:
        if graph.directed or u <= v:
            return (u, v)
        return (v, u)

    for op, u, v, p in ops:
        if u == v:
            continue
        if op == "delete":
            if graph.has_edge(u, v):
                deletes[canon(u, v)] = (u, v)
                upserts.pop(canon(u, v), None)
        else:
            upserts[canon(u, v)] = (u, v, p)
    return GraphDelta(
        upserts=tuple(upserts.values()), deletes=tuple(deletes.values())
    )


def batch_shapes(
    min_samples: int = 64,
    max_samples: int = 512,
) -> st.SearchStrategy[Tuple[int, int]]:
    """``(samples, seed)`` pairs spanning sub-word and multi-word batches."""
    return st.tuples(
        st.integers(min_value=min_samples, max_value=max_samples),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
