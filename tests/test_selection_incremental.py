"""Incremental selection restarts and conditioned selection backends.

Two contracts from the frontier-gated sweep-engine rework:

* **Incremental restarts are exact.**  After a greedy round commits a
  winner, resuming the forward/reverse sweeps from the winner's
  endpoints (restricted to worlds where its coin landed heads) must
  reproduce, bit for bit, the masks a full re-sweep over the extended
  plan and batch would compute — monotone reachability makes the
  restart a fixpoint continuation, not an approximation.  Selections
  with ``incremental=True`` and ``incremental=False`` are therefore
  identical.

* **Conditioned samplers drive vectorized selection.**  ``rss`` and
  ``adaptive`` expose factory-carrying selection backends (per-stratum
  and per-block base batches); ``hill_climbing`` / ``individual_top_k``
  auto-route them through the gain kernel, and on fixtures whose greedy
  choices are forced (gains separated far beyond sampling noise) the
  routed selection equals the scalar per-candidate loop's.
"""

import numpy as np
import pytest

from repro.baselines import hill_climbing, individual_top_k
from repro.engine import (
    SelectionGainKernel,
    WorldBatch,
    allocate_proportional,
    batch_reach,
    batch_reach_resume,
    bernoulli_row,
    compile_plan,
    concat_batches,
    extend_batch,
    extend_with_overlay,
    hit_fraction,
    popcount,
    sample_worlds,
    sample_worlds_stratified,
    unpack_word_row,
    valid_sample_mask,
)
from repro.graph import (
    UncertainGraph,
    assign_uniform,
    erdos_renyi,
    fixed_new_edge_probability,
)
from repro.reliability import make_estimator

Z = 192  # deliberately not a multiple of 64: pad bits must stay clean
SEED = 13
ZETA = fixed_new_edge_probability(0.5)


def build_graph(directed: bool, n: int = 16, m: int = 30, seed: int = 4):
    graph = erdos_renyi(n, num_edges=m, seed=seed, directed=directed)
    return assign_uniform(graph, 0.1, 0.7, seed=seed + 1)


def candidate_pool(n: int):
    return [
        (0, n - 1, 0.4),
        (2, n - 3, 0.8),
        (2, n - 3, 0.8),        # duplicate: identical coins, exact tie
        (3, n + 1000, 0.9),     # unknown endpoint: structurally zero
        (5, 7, 0.0),            # impossible edge
        (1, n - 2, 1.0),        # certain edge
        (4, 9, 0.6),
        (6, 11, 0.3),
    ]


class TestResume:
    @pytest.mark.parametrize("directed", [False, True])
    def test_resume_from_partial_state_reaches_fixpoint(self, directed):
        """Zeroing arbitrary non-source rows and resuming from the
        nodes that feed them reconverges to the full sweep."""
        graph = build_graph(directed, seed=9)
        plan = compile_plan(graph)
        batch = sample_worlds(plan, Z, np.random.default_rng(3))
        full = batch_reach(plan, batch, [0])
        partial = full.copy()
        partial[3:9] = 0
        partial[0] = batch.valid  # source row stays seeded
        resumed = batch_reach_resume(
            plan, batch, partial, [i for i in range(plan.num_nodes) if i not in range(3, 9)]
        )
        assert np.array_equal(resumed, full)

    def test_resume_rejects_unpadded_state(self):
        graph = build_graph(False)
        plan = compile_plan(graph)
        batch = sample_worlds(plan, Z, np.random.default_rng(3))
        short = np.zeros((plan.num_nodes - 1, batch.num_words), dtype=np.uint64)
        with pytest.raises(ValueError, match="pad"):
            batch_reach_resume(plan, batch, short, [0])


class TestIncrementalMasks:
    @pytest.mark.parametrize("directed", [False, True])
    def test_advanced_masks_equal_full_resweep_each_round(self, directed):
        """Step the greedy by hand: after each commit, the incrementally
        advanced forward/reverse masks equal from-scratch sweeps over
        the extended plan and batch, bit for bit."""
        graph = build_graph(directed, seed=21)
        n = graph.num_nodes
        kernel = SelectionGainKernel(graph, Z, seed=SEED)
        plan, batch = kernel.plan, kernel.batch
        src = plan.node_index(0)
        dst = plan.node_index(n - 1)
        forward = batch_reach(plan, batch, [src])
        reverse = batch_reach(plan.reverse_view(), batch, [dst])
        commits = [(2, n - 3, 0.8), (0, n - 1, 0.4), (3, n + 1000, 0.9)]
        for round_index, edge in enumerate(commits):
            row = kernel.candidate_rows(round_index, [edge], batch)[0]
            plan = extend_with_overlay(plan, [edge])
            batch = extend_batch(batch, row[None, :])
            forward, reverse = kernel._advance_masks(
                plan, batch, forward, reverse, edge, row
            )
            assert np.array_equal(forward, batch_reach(plan, batch, [src]))
            assert np.array_equal(
                reverse, batch_reach(plan.reverse_view(), batch, [dst])
            )

    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("seed", [4, 21, 33])
    def test_greedy_select_incremental_parity(self, directed, seed):
        graph = build_graph(directed, seed=seed)
        n = graph.num_nodes
        pool = candidate_pool(n)
        fast = SelectionGainKernel(graph, Z, seed=SEED).greedy_select(
            0, n - 1, 4, pool
        )
        slow = SelectionGainKernel(
            graph, Z, seed=SEED, incremental=False
        ).greedy_select(0, n - 1, 4, pool)
        assert fast == slow

    @pytest.mark.parametrize("aggregate", ["avg", "min", "max"])
    def test_greedy_select_multi_incremental_parity(self, aggregate):
        graph = build_graph(False, seed=8)
        n = graph.num_nodes
        pairs = [(0, n - 1), (1, n - 2), (0, n - 2), (2, 2), (3, n + 50)]
        pool = candidate_pool(n)
        fast = SelectionGainKernel(graph, Z, seed=SEED).greedy_select_multi(
            pairs, 4, pool, aggregate=aggregate
        )
        slow = SelectionGainKernel(
            graph, Z, seed=SEED, incremental=False
        ).greedy_select_multi(pairs, 4, pool, aggregate=aggregate)
        assert fast == slow

    def test_multi_factory_seeds_first_non_degenerate_pair(self):
        """A degenerate leading pair must not collapse a factory batch:
        the factory is seeded with the first useful pair."""
        graph = build_graph(False, seed=8)
        n = graph.num_nodes
        est = make_estimator("adaptive", 600, seed=2)
        kernel = SelectionGainKernel(
            graph, 600, seed=2,
            batch_factory=est.selection_backend().make_batch,
        )
        kernel.greedy_select_multi(
            [(3, 3), (0, n - 1)], 1, [(0, n - 1, 0.5)]
        )
        assert list(kernel._query_batches) == [(0, n - 1)]

    def test_fuse_max_words_zero_disables_fused_mask_sweeps(self, monkeypatch):
        import repro.engine.selection as selection_module

        graph = build_graph(False, seed=8)
        n = graph.num_nodes
        pairs = [(0, n - 1), (1, n - 2)]
        pool = candidate_pool(n)
        fused = SelectionGainKernel(graph, Z, seed=SEED).greedy_select_multi(
            pairs, 2, pool
        )
        monkeypatch.setattr(
            selection_module, "batch_reach_multi",
            lambda *a, **kw: pytest.fail("fused sweep despite fuse_max_words=0"),
        )
        per_source = SelectionGainKernel(
            graph, Z, seed=SEED, fuse_max_words=0
        ).greedy_select_multi(pairs, 2, pool)
        assert fused == per_source

    def test_multi_interns_pair_endpoint_via_winner(self):
        """A pair target outside the base graph gets a mask once a
        committed winner interns it (parity with per-round rebuilds)."""
        graph = UncertainGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(1, 2, 1.0)
        pairs = [(0, 99)]
        pool = [(2, 99, 1.0), (0, 1, 0.5)]
        fast = SelectionGainKernel(graph, 64, seed=1).greedy_select_multi(
            pairs, 2, pool
        )
        slow = SelectionGainKernel(
            graph, 64, seed=1, incremental=False
        ).greedy_select_multi(pairs, 2, pool)
        assert fast == slow
        assert fast[0] == (2, 99, 1.0)


def forced_fixtures():
    """Fixtures whose greedy choices are forced far beyond noise."""
    chains = UncertainGraph()
    for u, v in ((0, 1), (1, 2), (3, 4), (4, 5)):
        chains.add_edge(u, v, 1.0)
    probs1 = {(2, 3): 1.0, (0, 5): 0.5, (1, 4): 0.25}

    star = UncertainGraph()
    star.add_edge(1, 5, 1.0)
    star.add_edge(2, 5, 0.5)
    star.add_edge(3, 5, 0.1)
    star.add_node(0)
    probs2 = {(0, 1): 0.9, (0, 2): 0.9, (0, 3): 0.9}
    return [
        ("forced-tie-break", chains, 0, 5, 3, list(probs1), probs1),
        ("separated-gains", star, 0, 5, 2, list(probs2), probs2),
    ]


class TestConditionedBackendRouting:
    @pytest.mark.parametrize("name", ["rss", "adaptive"])
    @pytest.mark.parametrize("method", [hill_climbing, individual_top_k])
    def test_routed_selection_matches_scalar_loop(self, name, method):
        for label, graph, s, t, k, candidates, probs in forced_fixtures():
            prob_model = lambda u, v, probs=probs: probs[(u, v)]
            scalar = method(
                graph, s, t, k, candidates, prob_model,
                make_estimator(name, 400, seed=SEED, vectorized=False),
                vectorized=False,
            )
            routed = method(
                graph, s, t, k, candidates, prob_model,
                make_estimator(name, 400, seed=SEED),
            )
            assert scalar == routed, (label, name)

    @pytest.mark.parametrize("name", ["rss", "adaptive"])
    def test_vectorized_true_accepts_conditioned_backends(self, name):
        graph = UncertainGraph()
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(2, 3, 1.0)
        est = make_estimator(name, 200, seed=3)
        edges = hill_climbing(
            graph, 0, 3, 1, [(1, 2)], ZETA, est, vectorized=True
        )
        assert [(u, v) for u, v, _ in edges] == [(1, 2)]

    def test_rss_stratified_batch_is_conditioned(self):
        """The per-stratum base batch pins the stratified edge states:
        the top-ranked frontier edge is forced present in its own
        stratum's block and absent in every later block."""
        from repro.reliability.rss import _Adjacency

        graph = build_graph(False, seed=5)
        est = make_estimator("rss", 256, seed=2)
        plan = compile_plan(graph)
        batch = est.selection_backend().make_batch(
            graph, plan, 0, graph.num_nodes - 1
        )
        assert batch.num_samples == 256
        assert int(popcount(batch.valid).sum()) == 256
        adj = _Adjacency(graph, {})
        certain = est._certain_region(adj, 0, {})
        ranked = est._select_strata_edges(adj, certain, {})
        assert ranked  # source 0 has an undetermined frontier here
        weights = []
        prefix = 1.0
        for _u, _v, p, _key in ranked:
            weights.append(prefix * p)
            prefix *= 1.0 - p
        weights.append(prefix)
        counts = allocate_proportional(weights, 256)
        first = counts[0]
        eid = plan.edge_index[ranked[0][3]][0]
        bits = unpack_word_row(batch.alive[eid])[unpack_word_row(batch.valid)]
        assert bits[:first].all()       # stratum 1: forced present
        assert not bits[first:].any()   # strata 2..r+1: forced absent

    def test_factory_kernel_query_batch_cache_is_bounded(self):
        from repro.engine.selection import _MAX_QUERY_BATCHES

        graph = build_graph(False, seed=9)
        n = graph.num_nodes
        est = make_estimator("rss", 64, seed=1)
        backend = est.selection_backend()
        kernel = SelectionGainKernel(
            graph, 64, seed=1, batch_factory=backend.make_batch
        )
        for t in range(1, _MAX_QUERY_BATCHES + 4):
            kernel.base_batch(0, t % n)
        assert len(kernel._query_batches) <= _MAX_QUERY_BATCHES
        # cached: same query returns the same object
        assert kernel.base_batch(0, 1) is kernel.base_batch(0, 1)

    def test_factory_kernel_candidate_rows_requires_batch(self):
        graph = build_graph(False, seed=9)
        est = make_estimator("rss", 64, seed=1)
        kernel = SelectionGainKernel(
            graph, 64, seed=1,
            batch_factory=est.selection_backend().make_batch,
        )
        with pytest.raises(ValueError, match="base batch per query"):
            kernel.candidate_rows(0, [(0, 1, 0.5)])

    def test_session_rejects_negative_fuse_max_words(self):
        from repro.api import Session

        with pytest.raises(ValueError, match="fuse_max_words"):
            Session(build_graph(False), fuse_max_words=-1)

    def test_adaptive_block_batch_respects_cap_and_blocks(self):
        est = make_estimator("adaptive", 500, seed=4)
        graph = build_graph(False, seed=6)
        plan = compile_plan(graph)
        backend = est.selection_backend()
        batch = backend.make_batch(graph, plan, 0, graph.num_nodes - 1)
        assert batch.num_samples <= 500
        assert batch.num_samples % min(200, 500) == 0 or batch.num_samples == 500
        assert int(popcount(batch.valid).sum()) == batch.num_samples


class TestBatchHelpers:
    def test_allocate_proportional_sums_and_rounds(self):
        assert allocate_proportional([1.0], 7) == [7]
        counts = allocate_proportional([0.5, 0.3, 0.2], 10)
        assert sum(counts) == 10 and counts == [5, 3, 2]
        counts = allocate_proportional([0.4, 0.4, 0.2], 7)
        assert sum(counts) == 7
        assert allocate_proportional([0.0, 1.0], 4) == [0, 4]
        with pytest.raises(ValueError):
            allocate_proportional([], 5)
        with pytest.raises(ValueError):
            allocate_proportional([0.0, 0.0], 5)

    def test_concat_batches_behaves_like_one_batch(self):
        """A concatenated batch (interior pad bits) answers reachability
        exactly like the union of its blocks."""
        graph = build_graph(False, seed=12)
        plan = compile_plan(graph)
        rng = np.random.default_rng(5)
        blocks = [sample_worlds(plan, z, rng) for z in (70, 64, 9)]
        combined = concat_batches(blocks)
        assert combined.num_samples == 143
        assert int(popcount(combined.valid).sum()) == 143
        hits = sum(
            int(popcount(batch_reach(plan, b, [0])[plan.node_index(3)]).sum())
            for b in blocks
        )
        row = batch_reach(plan, combined, [0])[plan.node_index(3)]
        assert int(popcount(row).sum()) == hits
        assert hit_fraction(row, combined.num_samples) == hits / 143

    def test_concat_single_and_empty(self):
        graph = build_graph(False)
        plan = compile_plan(graph)
        b = sample_worlds(plan, 10, np.random.default_rng(0))
        assert concat_batches([b]) is b
        with pytest.raises(ValueError):
            concat_batches([])

    def test_bernoulli_row_valid_layout_matches_prefix(self):
        """With a prefix valid mask the layout-aware row is bit-identical
        to the legacy prefix packing."""
        valid = valid_sample_mask(Z)
        for p in (0.0, 0.3, 1.0):
            legacy = bernoulli_row(p, Z, np.random.default_rng(8))
            aware = bernoulli_row(p, Z, np.random.default_rng(8), valid=valid)
            assert np.array_equal(legacy, aware), p

    def test_bernoulli_row_interior_pad_layout(self):
        """Coins land exactly on the valid positions of a concatenated
        layout; pad bits stay zero."""
        valid = np.concatenate([valid_sample_mask(70), valid_sample_mask(9)])
        row = bernoulli_row(1.0, 79, np.random.default_rng(8), valid=valid)
        assert np.array_equal(row, valid)
        row = bernoulli_row(0.0, 79, np.random.default_rng(8), valid=valid)
        assert not row.any()

    def test_stratified_sampling_pins_forced_edges(self):
        graph = build_graph(False, seed=3)
        plan = compile_plan(graph)
        strata = [
            ([0], [], 0.5),
            ([1], [0], 0.3),
            ([], [0, 1], 0.2),
        ]
        batch = sample_worlds_stratified(
            plan, strata, 100, np.random.default_rng(2)
        )
        assert batch.num_samples == 100
        counts = allocate_proportional([0.5, 0.3, 0.2], 100)
        bits0 = unpack_word_row(batch.alive[0])[unpack_word_row(batch.valid)]
        bits1 = unpack_word_row(batch.alive[1])[unpack_word_row(batch.valid)]
        a, b, c = counts
        assert bits0[:a].all() and not bits0[a:].any()
        assert bits1[a:a + b].all() and not bits1[a + b:].any()

    def test_extended_batch_keeps_word_layout(self):
        """extend_batch on a concatenated base keeps candidate rows and
        alive rows aligned (the factory-backend greedy path)."""
        graph = build_graph(False, seed=14)
        plan = compile_plan(graph)
        rng = np.random.default_rng(5)
        base = concat_batches([sample_worlds(plan, z, rng) for z in (70, 30)])
        row = bernoulli_row(0.5, base.num_samples, rng, valid=base.valid)
        extended = extend_batch(base, row[None, :])
        assert isinstance(extended, WorldBatch)
        assert extended.alive.shape == (plan.num_edges + 1, base.num_words)
        assert not (extended.alive[-1] & ~base.valid).any()
