"""Tests for the persistent reliability index store (`repro.index`)."""

import numpy as np
import pytest

from repro.index import (
    SCHEMA_VERSION,
    IndexStore,
    SchemaMismatchError,
    StoreError,
    StoreLockTimeout,
    describe_store,
    dump_stats_json,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


@pytest.fixture
def store(tmp_path):
    with IndexStore(tmp_path / "store") as s:
        yield s


def words(num_edges=5, width=2, fill=0x5A5A5A5A5A5A5A5A):
    return np.full((num_edges, width), fill, dtype=np.uint64)


class TestBatchRoundTrip:
    def test_save_then_load_is_identical(self, store):
        payload = words()
        assert store.save_batch(HASH_A, 1000, 7, payload)
        loaded = store.load_batch(HASH_A, 1000, 7)
        assert loaded is not None
        assert loaded.dtype == np.uint64
        np.testing.assert_array_equal(np.asarray(loaded), payload)

    def test_load_is_readonly_memmap(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        loaded = store.load_batch(HASH_A, 1000, 7)
        assert isinstance(loaded, np.memmap)
        with pytest.raises((ValueError, RuntimeError)):
            loaded[0, 0] = 1

    def test_missing_batch_is_a_miss(self, store):
        assert store.load_batch(HASH_A, 1000, 7) is None
        assert store.counters.batch_misses == 1

    def test_key_is_hash_z_seed(self, store):
        store.save_batch(HASH_A, 1000, 7, words(fill=1))
        assert store.load_batch(HASH_B, 1000, 7) is None
        assert store.load_batch(HASH_A, 2000, 7) is None
        assert store.load_batch(HASH_A, 1000, 8) is None
        assert store.load_batch(HASH_A, 1000, 7) is not None

    def test_save_is_idempotent(self, store):
        assert store.save_batch(HASH_A, 1000, 7, words(fill=1)) is True
        assert store.save_batch(HASH_A, 1000, 7, words(fill=2)) is False
        # The first write wins: a stored batch is immutable.
        assert int(store.load_batch(HASH_A, 1000, 7)[0, 0]) == 1

    def test_expected_edges_mismatch_prunes(self, store):
        store.save_batch(HASH_A, 1000, 7, words(num_edges=5))
        assert store.load_batch(HASH_A, 1000, 7, expected_edges=9) is None
        assert store.counters.corrupt_batches == 1
        # The row is gone entirely, not just skipped.
        assert store.load_batch(HASH_A, 1000, 7, expected_edges=5) is None

    def test_rejects_non_uint64(self, store):
        with pytest.raises(ValueError):
            store.save_batch(HASH_A, 1000, 7,
                             np.zeros((2, 2), dtype=np.int64))

    def test_survives_reopen(self, tmp_path):
        payload = words(fill=3)
        with IndexStore(tmp_path / "s") as store:
            store.save_batch(HASH_A, 500, 1, payload)
        with IndexStore(tmp_path / "s") as store:
            np.testing.assert_array_equal(
                np.asarray(store.load_batch(HASH_A, 500, 1)), payload
            )


class TestCorruptionDetection:
    def _saved_path(self, store):
        [row] = store.list_batches()
        return store.batches_dir / row["filename"]

    def test_truncated_file_pruned_and_missed(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        path = self._saved_path(store)
        path.write_bytes(path.read_bytes()[:-16])
        assert store.load_batch(HASH_A, 1000, 7) is None
        assert store.counters.corrupt_batches == 1
        assert not path.exists()
        assert store.list_batches() == []

    def test_deleted_file_pruned_and_missed(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        self._saved_path(store).unlink()
        assert store.load_batch(HASH_A, 1000, 7) is None
        assert store.counters.corrupt_batches == 1

    def test_same_size_garbage_pruned(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        path = self._saved_path(store)
        path.write_bytes(b"\x00" * path.stat().st_size)
        assert store.load_batch(HASH_A, 1000, 7) is None
        assert store.counters.corrupt_batches == 1


class TestSchemaVersioning:
    def test_mismatch_refused_untouched(self, tmp_path):
        root = tmp_path / "s"
        with IndexStore(root) as store:
            store.save_batch(HASH_A, 100, 0, words())
            store._conn.execute(
                "UPDATE meta SET value = ? WHERE key = 'schema_version'",
                (str(SCHEMA_VERSION + 1),),
            )
        before = sorted(p.name for p in root.rglob("*") if p.is_file())
        with pytest.raises(SchemaMismatchError):
            IndexStore(root)
        after = sorted(p.name for p in root.rglob("*") if p.is_file())
        assert after == before

    def test_garbage_catalog_refused(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "catalog.sqlite3").write_bytes(b"this is not sqlite at all")
        with pytest.raises(StoreError):
            IndexStore(root)


class TestResultCache:
    def test_put_get_roundtrip(self, store):
        store.put_results(HASH_A, "mc", {(0, 1): 0.25, (0, 2): 0.5}, 1000, 7)
        found = store.get_results(HASH_A, "mc", [(0, 1), (0, 2), (0, 3)],
                                  1000, 7)
        assert found == {(0, 1): 0.25, (0, 2): 0.5}
        assert store.counters.result_hits == 2
        assert store.counters.result_misses == 1

    def test_key_includes_estimator_z_seed_hash(self, store):
        store.put_results(HASH_A, "mc", {(0, 1): 0.25}, 1000, 7)
        assert store.get_results(HASH_A, "lazy", [(0, 1)], 1000, 7) == {}
        assert store.get_results(HASH_A, "mc", [(0, 1)], 2000, 7) == {}
        assert store.get_results(HASH_A, "mc", [(0, 1)], 1000, 8) == {}
        assert store.get_results(HASH_B, "mc", [(0, 1)], 1000, 7) == {}

    def test_clear_results_scoped_by_hash(self, store):
        store.put_results(HASH_A, "mc", {(0, 1): 0.1}, 1000, 7)
        store.put_results(HASH_B, "mc", {(0, 1): 0.2}, 1000, 7)
        assert store.clear_results(HASH_A) == 1
        assert store.get_results(HASH_A, "mc", [(0, 1)], 1000, 7) == {}
        assert store.get_results(HASH_B, "mc", [(0, 1)], 1000, 7) \
            == {(0, 1): 0.2}
        assert store.clear_results() == 1


class TestTypedFailures:
    def test_closed_store_raises_store_error(self, tmp_path):
        store = IndexStore(tmp_path / "s")
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.load_batch(HASH_A, 1000, 7)
        with pytest.raises(StoreError, match="closed"):
            store.get_results(HASH_A, "mc", [(0, 1)], 1000, 7)
        with pytest.raises(StoreError, match="closed"):
            store.stats()
        store.close()  # still idempotent

    def test_sqlite_errors_become_store_errors(self, store):
        # e.g. 'database is locked' under multi-process result writes:
        # raw sqlite3 errors must surface as StoreError so best-effort
        # callers need only one except clause.
        store._conn.close()  # dead connection, store believes it's open
        with pytest.raises(StoreError):
            store.put_results(HASH_A, "mc", {(0, 1): 0.5}, 1000, 7)
        with pytest.raises(StoreError):
            store.get_results(HASH_A, "mc", [(0, 1)], 1000, 7)
        with pytest.raises(StoreError):
            store.save_batch(HASH_A, 1000, 7, words())
        store._conn = None  # skip the double-close in the fixture

    def test_batch_filename_uses_full_hash(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        [row] = store.list_batches()
        # A truncated prefix would let two prefix-colliding graphs
        # os.replace each other's files; the full hash rules that out.
        assert row["filename"].startswith(HASH_A)


class TestWriterLock:
    def test_lock_excludes_second_store(self, tmp_path):
        root = tmp_path / "s"
        with IndexStore(root) as first, IndexStore(root) as second:
            with first.write_lock():
                with pytest.raises(StoreLockTimeout):
                    with second.write_lock(timeout_s=0.05):
                        pass

    def test_lock_released_after_use(self, tmp_path):
        root = tmp_path / "s"
        with IndexStore(root) as first, IndexStore(root) as second:
            with first.write_lock():
                pass
            with second.write_lock(timeout_s=0.05):
                pass  # acquires fine once released


class TestMaintenance:
    def test_vacuum_reaps_tmp_and_orphans(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        (store.batches_dir / "dead.npy.tmp.1234").write_bytes(b"partial")
        (store.batches_dir / "orphan.npy").write_bytes(b"uncataloged")
        report = store.vacuum()
        assert report.removed_tmp_files == 1
        assert report.removed_orphan_files == 1
        assert report.pruned_rows == 0
        assert store.load_batch(HASH_A, 1000, 7) is not None

    def test_vacuum_prunes_stale_rows(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        [row] = store.list_batches()
        (store.batches_dir / row["filename"]).unlink()
        assert store.vacuum().pruned_rows == 1
        assert store.list_batches() == []

    def test_stats_totals(self, store):
        store.save_batch(HASH_A, 1000, 7, words())
        store.put_results(HASH_A, "mc", {(0, 1): 0.5}, 1000, 7)
        stats = store.stats()
        assert stats.num_batches == 1
        assert stats.num_results == 1
        assert stats.batch_bytes > 0
        assert stats.schema_version == SCHEMA_VERSION
        payload = stats.as_dict()
        assert payload["counters"]["batch_stores"] == 1

    def test_describe_and_json_helpers(self, tmp_path):
        root = tmp_path / "s"
        with IndexStore(root) as store:
            store.save_batch(HASH_A, 1000, 7, words())
        text = describe_store(root)
        assert "world batches:  1" in text
        payload = dump_stats_json(root)
        assert '"num_batches": 1' in payload
