"""Tests for the baseline edge-selection methods (§3 + multi-S/T)."""

import itertools

import pytest

from repro.graph import (
    UncertainGraph,
    assign_fixed,
    fixed_new_edge_probability,
    path_graph,
)
from repro.reliability import ExactEstimator, exact_reliability
from repro.baselines import (
    all_missing_edges,
    betweenness_centrality,
    betweenness_centrality_selection,
    dedupe_canonical,
    degree_centrality,
    degree_centrality_selection,
    eigenvalue_selection,
    esssp_selection,
    exact_solution,
    hill_climbing,
    ima_selection,
    individual_top_k,
    leading_eigen,
    random_selection,
)

ZETA = fixed_new_edge_probability(0.5)


@pytest.fixture
def chain():
    g = path_graph(5)
    assign_fixed(g, 0.5)
    return g


class TestCommonHelpers:
    def test_all_missing_edges(self, diamond):
        missing = set(all_missing_edges(diamond))
        assert missing == {(0, 3), (1, 2)}

    def test_all_missing_edges_h(self, chain):
        missing = set(all_missing_edges(chain, h=2))
        assert missing == {(0, 2), (1, 3), (2, 4)}

    def test_all_missing_edges_forbidden(self, diamond):
        missing = set(all_missing_edges(diamond, forbidden_nodes={3}))
        assert missing == {(1, 2)}

    def test_dedupe_canonical(self, diamond):
        result = dedupe_canonical(diamond, [(3, 0), (0, 3), (1, 2)])
        assert result == [(0, 3), (1, 2)]


class TestIndividualTopK:
    def test_prefers_direct_edge(self, chain):
        edges = individual_top_k(
            chain, 0, 4, 1, all_missing_edges(chain), ZETA, ExactEstimator()
        )
        assert [(u, v) for u, v, _ in edges] == [(0, 4)]

    def test_returns_k_edges(self, chain):
        edges = individual_top_k(
            chain, 0, 4, 3, all_missing_edges(chain), ZETA, ExactEstimator()
        )
        assert len(edges) == 3

    def test_invalid_k(self, chain):
        with pytest.raises(ValueError):
            individual_top_k(chain, 0, 4, 0, [], ZETA, ExactEstimator())


class TestHillClimbing:
    def test_first_pick_is_direct_edge(self, chain):
        edges = hill_climbing(
            chain, 0, 4, 1, all_missing_edges(chain), ZETA, ExactEstimator()
        )
        assert [(u, v) for u, v, _ in edges] == [(0, 4)]

    def test_marginal_gains_respected(self, chain):
        """HC's 2-edge pick must match exhaustive search here (tiny case)."""
        candidates = all_missing_edges(chain)
        hc = hill_climbing(chain, 0, 4, 2, candidates, ZETA, ExactEstimator())
        hc_val = exact_reliability(chain, 0, 4, hc)
        best = max(
            exact_reliability(
                chain, 0, 4, [(u, v, 0.5) for u, v in subset]
            )
            for subset in itertools.combinations(candidates, 2)
        )
        # Greedy is not optimal in general, but must be within the
        # single-swap neighborhood here; the chain case is exact.
        assert hc_val == pytest.approx(best, abs=1e-9)

    def test_budget_larger_than_candidates(self, diamond):
        edges = hill_climbing(
            diamond, 0, 3, 10, all_missing_edges(diamond), ZETA, ExactEstimator()
        )
        assert len(edges) == 2  # only two missing edges exist


class TestCentrality:
    def test_degree_centrality_values(self, diamond):
        scores = degree_centrality(diamond)
        assert scores[0] == pytest.approx(0.8 + 0.6)
        assert scores[3] == pytest.approx(0.5 + 0.7)

    def test_betweenness_star_center(self):
        g = UncertainGraph()
        for leaf in range(1, 6):
            g.add_edge(0, leaf, 0.5)
        scores = betweenness_centrality(g)
        assert scores[0] > 0
        assert all(scores[leaf] == 0 for leaf in range(1, 6))

    def test_betweenness_path_middle(self):
        g = path_graph(5)
        scores = betweenness_centrality(g)
        assert scores[2] == max(scores.values())

    def test_degree_selection_connects_hubs(self):
        g = UncertainGraph()
        # Two stars whose centers are not connected.
        for leaf in range(2, 6):
            g.add_edge(0, leaf, 0.9)
        for leaf in range(6, 10):
            g.add_edge(1, leaf, 0.9)
        edges = degree_centrality_selection(g, 1, ZETA)
        assert [(u, v) for u, v, _ in edges] == [(0, 1)]

    def test_selection_with_candidates(self, chain):
        candidates = [(0, 2), (0, 4)]
        edges = degree_centrality_selection(
            chain, 1, ZETA, candidates=candidates
        )
        assert len(edges) == 1
        assert (edges[0][0], edges[0][1]) in candidates

    def test_betweenness_selection_budget(self, chain):
        edges = betweenness_centrality_selection(chain, 2, ZETA)
        assert len(edges) == 2


class TestEigen:
    def test_leading_eigen_star(self):
        g = UncertainGraph()
        for leaf in range(1, 5):
            g.add_edge(0, leaf, 1.0)
        value, left, right = leading_eigen(g)
        # Star K_{1,4} leading eigenvalue = sqrt(4) = 2.
        assert value == pytest.approx(2.0, abs=1e-6)
        assert left[0] == max(left.values())

    def test_selection_prefers_high_scores(self):
        g = UncertainGraph()
        for leaf in range(2, 6):
            g.add_edge(0, leaf, 0.9)
        for leaf in range(6, 8):
            g.add_edge(1, leaf, 0.9)
        edges = eigenvalue_selection(g, 1, ZETA)
        # The missing edge between the two components' hubs or within the
        # large star's periphery — endpoints must include the big hub side.
        (u, v, _), = edges
        assert 0 in (u, v) or {u, v} <= {2, 3, 4, 5}

    def test_selection_with_candidates(self, chain):
        edges = eigenvalue_selection(chain, 1, ZETA, candidates=[(0, 2), (0, 4)])
        assert len(edges) == 1

    def test_invalid_k(self, chain):
        with pytest.raises(ValueError):
            eigenvalue_selection(chain, 0, ZETA)


class TestEsssp:
    def test_connects_disconnected_pair(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.9)
        g.add_edge(2, 3, 0.9)
        edges = esssp_selection(
            g, [0], [3], 1, [(1, 2), (0, 3)], ZETA
        )
        assert len(edges) == 1
        # Either bridge connects; both are acceptable greedy choices.
        assert (edges[0][0], edges[0][1]) in {(1, 2), (0, 3)}

    def test_shortens_path(self, chain):
        edges = esssp_selection(chain, [0], [4], 1, [(0, 4), (1, 3)], ZETA)
        assert [(u, v) for u, v, _ in edges] == [(0, 4)]

    def test_budget(self, chain):
        edges = esssp_selection(
            chain, [0], [4], 2, all_missing_edges(chain), ZETA
        )
        assert len(edges) == 2


class TestIma:
    def test_reaches_targets(self, chain):
        edges = ima_selection(
            chain, [0], [4], 1, all_missing_edges(chain), ZETA, seed=3
        )
        assert len(edges) == 1

    def test_prefers_edges_from_activated_region(self):
        g = UncertainGraph(directed=True)
        g.add_edge(0, 1, 0.9)
        g.add_edge(2, 3, 0.9)
        # Candidates: from the activated region (1) vs from nowhere (3->2).
        edges = ima_selection(
            g, [0], [3], 1, [(1, 2), (3, 2)], ZETA, seed=1
        )
        assert [(u, v) for u, v, _ in edges] == [(1, 2)]


class TestExactSolution:
    def test_matches_bruteforce(self, chain):
        candidates = all_missing_edges(chain)
        best = exact_solution(
            chain, 0, 4, 2, candidates, ZETA, ExactEstimator()
        )
        best_val = exact_reliability(chain, 0, 4, best)
        brute = max(
            exact_reliability(chain, 0, 4, [(u, v, 0.5) for u, v in subset])
            for subset in itertools.combinations(candidates, 2)
        )
        assert best_val == pytest.approx(brute)

    def test_guard_on_huge_spaces(self, chain):
        with pytest.raises(ValueError, match="enumerate"):
            exact_solution(
                chain, 0, 4, 2, all_missing_edges(chain), ZETA,
                ExactEstimator(), max_combinations=1,
            )


class TestRandomSelection:
    def test_deterministic(self):
        candidates = [(0, i) for i in range(1, 20)]
        a = random_selection(candidates, 5, ZETA, seed=4)
        b = random_selection(candidates, 5, ZETA, seed=4)
        assert a == b

    def test_k_larger_than_pool(self):
        edges = random_selection([(0, 1)], 5, ZETA, seed=0)
        assert len(edges) == 1
