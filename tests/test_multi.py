"""Tests for multiple-source-target maximization (Problem 4)."""

import pytest

from repro.graph import UncertainGraph
from repro.reliability import ExactEstimator
from repro.core import MultiSolution, MultiSourceTargetMaximizer


@pytest.fixture
def two_lane_graph():
    """Two parallel weak chains: sources {0, 10}, targets {3, 13}."""
    g = UncertainGraph()
    for base in (0, 10):
        for i in range(3):
            g.add_edge(base + i, base + i + 1, 0.4)
    return g


@pytest.fixture
def solver():
    return MultiSourceTargetMaximizer(
        estimator=ExactEstimator(),
        evaluation_samples=2000,
        r=4,
        l=5,
        k1_fraction=0.5,
    )


class TestAggregates:
    @pytest.mark.parametrize("aggregate", ["average", "minimum", "maximum"])
    def test_runs_and_improves(self, solver, two_lane_graph, aggregate):
        solution = solver.maximize(
            two_lane_graph, [0, 10], [3, 13], k=2, zeta=0.8,
            aggregate=aggregate,
        )
        assert isinstance(solution, MultiSolution)
        assert len(solution.edges) <= 2
        assert solution.new_value >= solution.base_value - 0.02

    @pytest.mark.parametrize("alias,canonical", [
        ("avg", "average"), ("min", "minimum"), ("max", "maximum"),
    ])
    def test_aliases(self, solver, two_lane_graph, alias, canonical):
        solution = solver.maximize(
            two_lane_graph, [0], [3], k=1, zeta=0.8, aggregate=alias
        )
        assert solution.aggregate == canonical

    def test_unknown_aggregate(self, solver, two_lane_graph):
        with pytest.raises(ValueError, match="unknown aggregate"):
            solver.maximize(
                two_lane_graph, [0], [3], k=1, aggregate="median"
            )

    def test_invalid_inputs(self, solver, two_lane_graph):
        with pytest.raises(ValueError):
            solver.maximize(two_lane_graph, [], [3], k=1)
        with pytest.raises(ValueError):
            solver.maximize(two_lane_graph, [0], [3], k=0)
        with pytest.raises(ValueError, match="trivial"):
            solver.maximize(two_lane_graph, [3], [3], k=1)


class TestMinimumStrategy:
    def test_weakest_pair_gets_attention(self, solver):
        g = UncertainGraph()
        # Pair (0, 2) is strong; pair (0, 12) is weak.
        g.add_edge(0, 1, 0.9)
        g.add_edge(1, 2, 0.9)
        g.add_edge(0, 11, 0.1)
        g.add_edge(11, 12, 0.1)
        solution = solver.maximize(
            g, [0], [2, 12], k=1, zeta=0.9, aggregate="minimum"
        )
        # The single new edge must serve the weak 0 -> 12 pair.
        touched = {u for u, v, _ in solution.edges} | {
            v for u, v, _ in solution.edges
        }
        assert touched & {11, 12}
        assert solution.pair_new[(0, 12)] > solution.pair_base[(0, 12)]

    def test_minimum_value_uses_weakest(self, solver, two_lane_graph):
        solution = solver.maximize(
            two_lane_graph, [0, 10], [3, 13], k=2, zeta=0.8,
            aggregate="minimum",
        )
        assert solution.base_value == pytest.approx(
            min(solution.pair_base.values())
        )
        assert solution.new_value == pytest.approx(
            min(solution.pair_new.values())
        )


class TestMaximumStrategy:
    def test_strongest_pair_boosted(self, solver):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.7)
        g.add_edge(1, 2, 0.7)
        g.add_edge(10, 11, 0.1)
        g.add_edge(11, 12, 0.1)
        solution = solver.maximize(
            g, [0, 10], [2, 12], k=1, zeta=0.9, aggregate="maximum"
        )
        touched = {u for u, v, _ in solution.edges} | {
            v for u, v, _ in solution.edges
        }
        assert touched <= {0, 1, 2}


class TestAverageStrategy:
    def test_average_accounts_all_pairs(self, solver, two_lane_graph):
        solution = solver.maximize(
            two_lane_graph, [0, 10], [3, 13], k=4, zeta=0.8,
            aggregate="average",
        )
        assert solution.base_value == pytest.approx(
            sum(solution.pair_base.values()) / len(solution.pair_base)
        )
        assert len(solution.pair_base) == 4  # 2 x 2 pairs

    def test_forbidden_nodes_excluded(self, solver, two_lane_graph):
        solution = solver.maximize(
            two_lane_graph, [0], [3], k=2, zeta=0.8,
            aggregate="average", forbidden_nodes={1},
        )
        touched = {u for u, v, _ in solution.edges} | {
            v for u, v, _ in solution.edges
        }
        assert 1 not in touched


class TestCandidateSpace:
    def test_union_of_sides(self, solver, two_lane_graph):
        space = solver.candidate_space(
            two_lane_graph, [0, 10], [3, 13],
            lambda u, v: 0.5,
        )
        # Both lanes' nodes appear on each side.
        assert any(n < 10 for n in space.source_side)
        assert any(n >= 10 for n in space.source_side)
        assert len(space.edges) > 0
