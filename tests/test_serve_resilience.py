"""Resilience of the serving layer: deadlines, shedding, typed failure.

Companion to ``test_serve_async.py``/``test_serve_http.py``: those pin
the happy-path coalescing contract, these pin how the same machinery
degrades — per-request deadlines enforced at flush (batch companions
bit-for-bit unaffected), bounded admission (``max_pending`` → shed with
503 + Retry-After over HTTP), typed :class:`SessionClosedError` on the
submit/close race, and worker/transport faults injected through the
seeded registry.
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro import faults
from repro.api import ReliabilityQuery, Session, Workload
from repro.graph import assign_uniform, erdos_renyi
from repro.serve import (
    AsyncSession,
    DeadlineExceededError,
    OverloadedError,
    ReliabilityServer,
    SessionClosedError,
)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


def build_graph(num_nodes=60, num_edges=150, seed=3):
    graph = erdos_renyi(num_nodes, num_edges=num_edges, seed=seed)
    return assign_uniform(graph, 0.2, 0.8, seed=seed + 1)


def one_off_results(graph, queries, seed=7):
    results = []
    for query in queries:
        session = Session(graph, seed=seed)
        results.append(session.run(Workload([query]))[0])
    return results


def serve(graph, coroutine_factory, **server_kwargs):
    """Start a server, run ``coroutine_factory(host, port)``, stop."""

    async def _main():
        server = ReliabilityServer(graph, **server_kwargs)
        host, port = await server.start()
        try:
            return await coroutine_factory(host, port)
        finally:
            await server.stop()

    return asyncio.run(_main())


async def request(method, host, port, path, payload=None):
    """One HTTP request from a worker thread: (status, body, headers)."""

    def _call():
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            f"http://{host}:{port}{path}", data=data, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, json.loads(response.read()), dict(
                    response.headers
                )
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read()), dict(error.headers)

    return await asyncio.get_running_loop().run_in_executor(None, _call)


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------

def test_expired_deadline_fails_typed_and_companions_are_untouched():
    graph = build_graph()
    companions = [
        ReliabilityQuery(i, target=50 + i, samples=500) for i in range(4)
    ]
    doomed = ReliabilityQuery(
        5, target=55, samples=500, deadline_ms=1.0
    )

    async def scenario():
        # max_wait_ms far beyond the 1 ms deadline: the query is
        # guaranteed to expire before its batch flushes.
        async with AsyncSession(graph, seed=7, max_wait_ms=60.0) as serving:
            outcomes = await asyncio.gather(
                *(serving.submit(q) for q in [*companions, doomed]),
                return_exceptions=True,
            )
            return outcomes, serving.stats

    outcomes, stats = asyncio.run(scenario())
    assert isinstance(outcomes[-1], DeadlineExceededError)
    assert "deadline_ms=1.0" in str(outcomes[-1])
    assert stats.deadline_expired == 1
    assert stats.batches == 1  # companions still ran as one batch
    # The expired query never joined the workload, so companions are
    # bit-for-bit what a deadline-free run would have produced.
    expected = one_off_results(graph, companions)
    for got, want in zip(outcomes[:-1], expected, strict=True):
        assert got.values == want.values


def test_generous_deadline_is_served_normally():
    graph = build_graph()
    query = ReliabilityQuery(0, target=59, samples=500, deadline_ms=30_000.0)

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=1.0) as serving:
            return await serving.submit(query), serving.stats

    result, stats = asyncio.run(scenario())
    assert result.values == one_off_results(graph, [query])[0].values
    assert stats.deadline_expired == 0


def test_deadline_validation_rejects_nonpositive_and_nan():
    for bad in (0, -5, float("nan")):
        with pytest.raises(ValueError):
            ReliabilityQuery(0, target=1, samples=100, deadline_ms=bad)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------

def test_max_pending_sheds_excess_submissions_then_recovers():
    graph = build_graph()

    def query(i):
        return ReliabilityQuery(i, target=59 - i, samples=300)

    async def scenario():
        async with AsyncSession(
            graph, seed=7, max_wait_ms=100.0, max_pending=2
        ) as serving:
            admitted = [
                asyncio.create_task(serving.submit(query(i)))
                for i in range(2)
            ]
            await asyncio.sleep(0)  # let both enqueue
            with pytest.raises(OverloadedError, match="max_pending=2"):
                await serving.submit(query(2))
            shed_count = serving.stats.shed
            # Once the admitted pair drains, capacity is back.
            results = await asyncio.gather(*admitted)
            late = await serving.submit(query(3))
            return results, late, shed_count, serving.stats

    results, late, shed_count, stats = asyncio.run(scenario())
    assert shed_count == 1
    assert stats.shed == 1
    expected = one_off_results(graph, [query(0), query(1), query(3)])
    for got, want in zip([*results, late], expected, strict=True):
        assert got.values == want.values


def test_max_pending_counts_inflight_batches_not_just_queue():
    graph = build_graph()

    async def scenario():
        async with AsyncSession(
            graph, seed=7, max_wait_ms=0.0, max_pending=1
        ) as serving:
            with faults.inject("serve.worker", latency_ms=200.0, fail=False):
                first = asyncio.create_task(
                    serving.submit(ReliabilityQuery(0, target=59, samples=200))
                )
                # Yield until the batch is on the worker (queue empty,
                # one request in flight).
                while serving.stats.batches == 0:
                    await asyncio.sleep(0.005)
                with pytest.raises(OverloadedError):
                    await serving.submit(
                        ReliabilityQuery(1, target=58, samples=200)
                    )
                await first
            return serving.stats

    stats = asyncio.run(scenario())
    assert stats.shed == 1


def test_constructor_rejects_nonpositive_max_pending():
    graph = build_graph(num_nodes=10, num_edges=20)
    with pytest.raises(ValueError):
        AsyncSession(graph, max_pending=0)


# ----------------------------------------------------------------------
# submit/close race
# ----------------------------------------------------------------------

def test_submit_after_close_raises_session_closed():
    graph = build_graph(num_nodes=20, num_edges=40)

    async def scenario():
        serving = AsyncSession(graph, seed=7)
        await serving.close()
        with pytest.raises(SessionClosedError):
            await serving.submit(ReliabilityQuery(0, target=19, samples=100))
        with pytest.raises(SessionClosedError):
            await serving.swap_graph(graph)

    asyncio.run(scenario())


def test_submit_close_race_resolves_every_caller_typed():
    """Regression: a submit racing close() must never hang.

    Every concurrent caller either gets its result (it landed in the
    final flush) or a typed ``SessionClosedError`` — bounded by a
    wait_for so a stranded future fails the test instead of wedging it.
    """
    graph = build_graph()
    queries = [
        ReliabilityQuery(i % 10, target=40 + i % 10, samples=200)
        for i in range(12)
    ]

    async def client(serving, query):
        try:
            return await serving.submit(query)
        except SessionClosedError as error:
            return error

    async def scenario():
        serving = AsyncSession(graph, seed=7, max_wait_ms=5.0)
        tasks = [
            asyncio.create_task(client(serving, q)) for q in queries[:6]
        ]
        await asyncio.sleep(0)
        close_task = asyncio.create_task(serving.close())
        tasks += [
            asyncio.create_task(client(serving, q)) for q in queries[6:]
        ]
        outcomes = await asyncio.wait_for(
            asyncio.gather(*tasks), timeout=30.0
        )
        await close_task
        return outcomes

    outcomes = asyncio.run(scenario())
    served = [o for o in outcomes if not isinstance(o, Exception)]
    rejected = [o for o in outcomes if isinstance(o, Exception)]
    assert len(served) + len(rejected) == len(queries)
    assert all(isinstance(o, SessionClosedError) for o in rejected)
    # Whatever was served is still bit-for-bit correct.
    for result in served:
        query = ReliabilityQuery(
            result.query.source, target=result.query.targets[0],
            samples=result.query.samples,
        )
        assert result.values == one_off_results(graph, [query])[0].values


# ----------------------------------------------------------------------
# worker faults
# ----------------------------------------------------------------------

def test_worker_latency_fault_slows_but_never_corrupts():
    graph = build_graph()
    queries = [
        ReliabilityQuery(i, target=59 - i, samples=400) for i in range(4)
    ]

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=10.0) as serving:
            with faults.inject(
                "serve.worker", latency_ms=30.0, fail=False, exclusive=True
            ):
                results = await asyncio.gather(
                    *(serving.submit(q) for q in queries)
                )
                fired = faults.fires("serve.worker")
            return results, fired

    results, fired = asyncio.run(scenario())
    assert fired >= 1
    for got, want in zip(
        results, one_off_results(graph, queries), strict=True
    ):
        assert got.values == want.values


def test_worker_failure_falls_back_to_per_query_isolation():
    graph = build_graph()
    queries = [
        ReliabilityQuery(i, target=59 - i, samples=400) for i in range(4)
    ]

    async def scenario():
        async with AsyncSession(graph, seed=7, max_wait_ms=10.0) as serving:
            with faults.inject("serve.worker", count=1, exclusive=True):
                results = await asyncio.gather(
                    *(serving.submit(q) for q in queries)
                )
                fired = faults.fires("serve.worker")
            return results, fired

    results, fired = asyncio.run(scenario())
    assert fired == 1  # the batch attempt failed exactly once
    # The isolation rerun answers every caller with the values the
    # clean batch would have produced (deterministic per (Z, seed)).
    for got, want in zip(
        results, one_off_results(graph, queries), strict=True
    ):
        assert got.values == want.values


# ----------------------------------------------------------------------
# HTTP surface
# ----------------------------------------------------------------------

def test_http_shed_returns_503_with_retry_after():
    graph = build_graph()

    async def scenario(host, port):
        first = asyncio.ensure_future(request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 59, "samples": 400},
        ))
        await asyncio.sleep(0.1)  # first request is now pending
        shed = await request(
            "POST", host, port, "/reliability",
            {"source": 1, "target": 58, "samples": 400},
        )
        served = await first
        health = await request("GET", host, port, "/healthz")
        return served, shed, health

    served, shed, health = serve(
        graph, scenario, seed=7, max_pending=1, max_wait_ms=400.0
    )
    status, body, _ = served
    assert status == 200
    assert body["results"][0]["value"] > 0
    status, body, headers = shed
    assert status == 503
    assert "max_pending=1" in body["error"]
    assert headers["Retry-After"] == "1"
    _, body, _ = health
    assert body["coalescer"]["shed"] == 1
    assert body["coalescer"]["max_pending"] == 1


def test_http_expired_deadline_returns_504():
    graph = build_graph()

    async def scenario(host, port):
        expired = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 59, "samples": 400, "deadline_ms": 1},
        )
        ok = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 59, "samples": 400,
             "deadline_ms": 30_000},
        )
        bad = await request(
            "POST", host, port, "/reliability",
            {"source": 0, "target": 59, "samples": 400, "deadline_ms": -5},
        )
        health = await request("GET", host, port, "/healthz")
        return expired, ok, bad, health

    expired, ok, bad, health = serve(
        graph, scenario, seed=7, max_wait_ms=120.0
    )
    assert expired[0] == 504
    assert "deadline_ms" in expired[1]["error"]
    assert ok[0] == 200
    assert bad[0] == 400
    assert health[1]["coalescer"]["deadline_expired"] == 1


def test_http_write_fault_drops_connection_but_server_survives():
    graph = build_graph(num_nodes=20, num_edges=40)

    async def scenario(host, port):
        with faults.inject("serve.http.write", count=1, exclusive=True):
            def _failing_call():
                req = urllib.request.Request(
                    f"http://{host}:{port}/healthz", method="GET"
                )
                try:
                    with urllib.request.urlopen(req, timeout=10) as response:
                        return response.status
                except Exception as error:  # connection torn down mid-write
                    return error

            outcome = await asyncio.get_running_loop().run_in_executor(
                None, _failing_call
            )
        after = await request("GET", host, port, "/healthz")
        return outcome, after

    outcome, after = serve(graph, scenario, seed=7)
    assert isinstance(outcome, Exception)
    status, body, _ = after
    assert status == 200
    assert body["status"] == "ok"


def test_healthz_reports_seam_fires_when_armed():
    """Chaos runs scrape per-seam fire counts straight off /healthz."""
    graph = build_graph(num_nodes=20, num_edges=40)

    async def scenario(host, port):
        disarmed = await request("GET", host, port, "/healthz")
        faults.arm("serve.worker:p=1.0,latency_ms=1,fail=0", seed=11)
        try:
            served = await request(
                "POST", host, port, "/reliability",
                {"source": 0, "target": 10, "samples": 200},
            )
            armed = await request("GET", host, port, "/healthz")
        finally:
            faults.disarm()
        return disarmed, served, armed

    disarmed, served, armed = serve(graph, scenario, seed=7)
    # Disarmed registry: no "faults" section at all, so monitors can
    # tell "chaos off" from "chaos on, nothing fired yet".
    assert "faults" not in disarmed[1]
    assert served[0] == 200
    status, body, _ = armed
    assert status == 200
    seams = body["faults"]["seams"]
    assert seams["serve.worker"] >= 1
