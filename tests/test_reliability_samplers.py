"""Tests for the sampling estimators: MC, RSS, lazy propagation."""

import pytest

from repro.graph import UncertainGraph, assign_uniform, erdos_renyi
from repro.reliability import (
    LazyPropagationEstimator,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    exact_reliability,
)

SAMPLERS = [
    lambda z, s: MonteCarloEstimator(z, seed=s),
    lambda z, s: RecursiveStratifiedSampler(z, seed=s),
    lambda z, s: LazyPropagationEstimator(z, seed=s),
]
SAMPLER_IDS = ["mc", "rss", "lazy"]


@pytest.fixture
def medium_graph():
    g = erdos_renyi(30, num_edges=60, seed=3)
    return assign_uniform(g, 0.1, 0.9, seed=4)


class TestAgainstExact:
    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_diamond_converges(self, factory, diamond):
        truth = exact_reliability(diamond, 0, 3)
        estimate = factory(8000, 1).reliability(diamond, 0, 3)
        assert estimate == pytest.approx(truth, abs=0.03)

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_series_graph(self, factory):
        g = UncertainGraph.from_edges([(0, 1, 0.6), (1, 2, 0.6)])
        estimate = factory(8000, 2).reliability(g, 0, 2)
        assert estimate == pytest.approx(0.36, abs=0.03)

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_directed(self, factory, directed_diamond):
        truth = exact_reliability(directed_diamond, 0, 3)
        estimate = factory(8000, 3).reliability(directed_diamond, 0, 3)
        assert estimate == pytest.approx(truth, abs=0.03)
        assert factory(2000, 3).reliability(directed_diamond, 3, 0) == 0.0


class TestEdgeCases:
    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_source_equals_target(self, factory, diamond):
        assert factory(10, 0).reliability(diamond, 1, 1) == 1.0

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_missing_nodes(self, factory, diamond):
        assert factory(10, 0).reliability(diamond, 0, 42) == 0.0
        assert factory(10, 0).reliability(diamond, 42, 0) == 0.0

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_certain_edges(self, factory):
        g = UncertainGraph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        assert factory(50, 0).reliability(g, 0, 2) == 1.0

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_impossible_edges(self, factory):
        g = UncertainGraph.from_edges([(0, 1, 0.0)])
        assert factory(200, 0).reliability(g, 0, 1) == 0.0

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_invalid_sample_count(self, factory):
        with pytest.raises(ValueError):
            factory(0, 0)

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_deterministic_given_seed(self, factory, medium_graph):
        a = factory(300, 7).reliability(medium_graph, 0, 29)
        b = factory(300, 7).reliability(medium_graph, 0, 29)
        assert a == b


class TestOverlay:
    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_extra_edges_counted(self, factory):
        g = UncertainGraph()
        g.add_node(0)
        g.add_node(1)
        estimate = factory(6000, 5).reliability(g, 0, 1, [(0, 1, 0.4)])
        assert estimate == pytest.approx(0.4, abs=0.03)

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_overlay_undirected_semantics(self, factory):
        g = UncertainGraph()  # undirected
        g.add_node(0)
        g.add_node(1)
        g.add_node(2)
        # Overlay edge (1, 0) must also carry 0 -> 1 traffic.
        estimate = factory(6000, 6).reliability(
            g, 0, 2, [(1, 0, 0.8), (1, 2, 0.8)]
        )
        assert estimate == pytest.approx(0.64, abs=0.03)


class TestReachabilityVectors:
    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_reachability_from_matches_pointwise(self, factory, diamond):
        reach = factory(8000, 8).reachability_from(diamond, 0)
        assert reach[0] == 1.0
        for node in (1, 2, 3):
            truth = exact_reliability(diamond, 0, node)
            assert reach[node] == pytest.approx(truth, abs=0.04)

    @pytest.mark.parametrize("factory", SAMPLERS, ids=SAMPLER_IDS)
    def test_reachability_to_directed(self, factory, directed_diamond):
        reach = factory(8000, 9).reachability_to(directed_diamond, 3)
        truth = exact_reliability(directed_diamond, 0, 3)
        assert reach[3] == 1.0
        assert reach[0] == pytest.approx(truth, abs=0.04)

    def test_mc_reachability_missing_source(self):
        g = UncertainGraph()
        g.add_edge(0, 1, 0.5)
        assert MonteCarloEstimator(10).reachability_from(g, 9) == {}


class TestSharedWorldQueries:
    def test_pair_reliabilities_match_singles(self, medium_graph):
        pairs = [(0, 10), (0, 20), (5, 25)]
        joint = MonteCarloEstimator(4000, seed=11).pair_reliabilities(
            medium_graph, pairs
        )
        for s, t in pairs:
            single = MonteCarloEstimator(4000, seed=12).reliability(
                medium_graph, s, t
            )
            assert joint[(s, t)] == pytest.approx(single, abs=0.05)

    def test_pair_reliabilities_empty(self, medium_graph):
        assert MonteCarloEstimator(10).pair_reliabilities(medium_graph, []) == {}

    def test_multi_source_union_bounds(self, diamond):
        est = MonteCarloEstimator(4000, seed=13)
        union = est.multi_source_reachability(diamond, [0, 1])
        single = MonteCarloEstimator(4000, seed=14).reachability_from(diamond, 0)
        # Union reachability dominates single-source reachability.
        for node, value in single.items():
            assert union.get(node, 0.0) >= value - 0.05

    def test_multi_source_includes_sources(self, diamond):
        union = MonteCarloEstimator(100, seed=1).multi_source_reachability(
            diamond, [0, 3]
        )
        assert union[0] == 1.0 and union[3] == 1.0


class TestRssSpecifics:
    def test_rss_variance_not_worse_than_mc(self, medium_graph):
        import statistics

        truth_proxy = MonteCarloEstimator(20000, seed=99).reliability(
            medium_graph, 0, 29
        )
        mc_vals = [
            MonteCarloEstimator(200, seed=s).reliability(medium_graph, 0, 29)
            for s in range(25)
        ]
        rss_vals = [
            RecursiveStratifiedSampler(200, seed=s).reliability(medium_graph, 0, 29)
            for s in range(25)
        ]
        mc_err = statistics.mean((v - truth_proxy) ** 2 for v in mc_vals)
        rss_err = statistics.mean((v - truth_proxy) ** 2 for v in rss_vals)
        # RSS's stratification should not inflate the error materially.
        assert rss_err <= mc_err * 1.5

    def test_rss_parameter_validation(self):
        with pytest.raises(ValueError):
            RecursiveStratifiedSampler(num_samples=100, num_stratify_edges=0)


class TestLazySpecifics:
    def test_marginal_frequency_single_edge(self):
        g = UncertainGraph.from_edges([(0, 1, 0.3)])
        estimate = LazyPropagationEstimator(20000, seed=3).reliability(g, 0, 1)
        assert estimate == pytest.approx(0.3, abs=0.02)

    def test_schedule_consistency_across_samples(self):
        # Two serial edges: per-sample states must be independent, so the
        # product law holds.
        g = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.5)])
        estimate = LazyPropagationEstimator(20000, seed=4).reliability(g, 0, 2)
        assert estimate == pytest.approx(0.25, abs=0.02)
