"""`repro serve` lifecycle as a real subprocess: signals and drain.

The graceful-shutdown contract can only be pinned end to end from
outside the process: SIGTERM (or Ctrl-C) must answer every in-flight
request before exiting 0, and only a *second* signal may abandon the
drain with a non-zero exit.  The forced-exit test slows the worker
down through the ``REPRO_FAULTS`` environment profile, which doubles
as coverage for env-based arming in a fresh interpreter.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.graph import UncertainGraph, write_edge_list

SRC = str(Path(__file__).resolve().parents[1] / "src")

pytestmark = pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or os.name != "posix",
    reason="POSIX signal delivery required",
)


@pytest.fixture
def edge_file(tmp_path):
    graph = UncertainGraph.from_edges(
        [(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3), (2, 3, 0.9), (1, 3, 0.4)]
    )
    path = tmp_path / "g.edges"
    write_edge_list(graph, path)
    return str(path)


def spawn_server(edge_file, *extra_args, env_extra=None):
    """Start ``repro serve`` on a free port; return (proc, port)."""
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--file", edge_file,
         "--port", "0", *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 20
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if " on http://" in line:
            port = int(line.rsplit(":", 1)[1].strip())
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"server never came up:\n{''.join(lines)}")
    return proc, port


def background_request(port, samples=500):
    """Fire one /reliability request from a thread; collect the result."""
    outcome = {}

    def _call():
        body = json.dumps(
            {"source": 0, "target": 3, "samples": samples}
        ).encode()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/reliability", data=body,
                timeout=20,
            ) as response:
                outcome["status"] = response.status
                outcome["body"] = json.loads(response.read())
        except Exception as error:
            outcome["error"] = error

    thread = threading.Thread(target=_call, daemon=True)
    thread.start()
    return thread, outcome


def test_sigterm_drains_inflight_request_and_exits_zero(edge_file):
    # A long coalescing window guarantees the request is still pending
    # (not yet flushed) when the signal lands — the drain must flush
    # and answer it, not drop it.
    proc, port = spawn_server(edge_file, "--max-wait-ms", "2000")
    try:
        thread, outcome = background_request(port)
        time.sleep(0.3)  # request is sitting in the coalescer window
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=20)
        thread.join(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0
    assert "signal received: draining" in out
    assert "drained cleanly" in out
    assert outcome.get("status") == 200
    assert outcome["body"]["results"][0]["value"] > 0


def test_sigint_with_no_traffic_exits_zero(edge_file):
    proc, port = spawn_server(edge_file, "--max-wait-ms", "1")
    try:
        proc.send_signal(signal.SIGINT)
        out, _ = proc.communicate(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0
    assert "drained cleanly" in out


def healthz(port):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=20
    ) as response:
        return json.loads(response.read())


def test_shard_kill_mid_flight_is_invisible_to_clients(edge_file):
    """SIGKILL one worker of ``--shards 4`` mid-burst: zero failed responses.

    The latency profile in the child environment pins every batch on a
    worker for 400 ms, so the kill reliably lands while requests are in
    flight; the supervisor must replay them on healthy shards (bit-for-
    bit equal to one-off ``Session.run``) and respawn the dead worker.
    This is the end-to-end assertion behind the chaos CI shard leg.
    """
    from repro.api import ReliabilityQuery, Session, Workload
    from repro.graph import read_edge_list

    proc, port = spawn_server(
        edge_file, "--shards", "4", "--heartbeat-interval-s", "0.1",
        "--max-wait-ms", "5",
        env_extra={"REPRO_FAULTS": "serve.worker:latency_ms=400,fail=0"},
    )
    try:
        pids = [s["pid"] for s in healthz(port)["supervisor"]["shards"]
                if s["live"]]
        assert len(pids) == 4

        # Distinct seeds are distinct routing keys, so the burst spreads
        # over the pool and the killed shard holds real in-flight work.
        queries = [ReliabilityQuery(source=0, target=3, samples=400, seed=k)
                   for k in range(8)]
        outcomes = [{} for _ in queries]

        def call(query, outcome):
            body = json.dumps({
                "source": query.source, "target": query.target,
                "samples": query.samples, "seed": query.seed,
            }).encode()
            try:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/reliability", data=body,
                    timeout=30,
                ) as response:
                    outcome["status"] = response.status
                    outcome["value"] = (
                        json.loads(response.read())["results"][0]["value"]
                    )
            except Exception as error:
                outcome["error"] = error

        threads = [threading.Thread(target=call, args=(q, o), daemon=True)
                   for q, o in zip(queries, outcomes)]
        for t in threads:
            t.start()
        time.sleep(0.3)  # batches are on the workers, asleep in the fault
        os.kill(pids[0], signal.SIGKILL)
        for t in threads:
            t.join(timeout=30)

        session = Session(read_edge_list(edge_file), seed=0)
        for query, outcome in zip(queries, outcomes):
            assert outcome.get("status") == 200, outcome
            expected = session.run(Workload([query]))[0].values[0]
            assert outcome["value"] == expected  # bit-for-bit, post-replay

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            supervisor = healthz(port)["supervisor"]
            live = [s["pid"] for s in supervisor["shards"] if s["live"]]
            if (supervisor["deaths"] >= 1 and len(live) == 4
                    and pids[0] not in live):
                break
            time.sleep(0.1)
        else:
            raise AssertionError(f"shard never respawned: {supervisor}")
        assert supervisor["respawns"] >= 1

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 0
    assert "drained cleanly" in out


def test_second_signal_forces_nonzero_exit(edge_file):
    # REPRO_FAULTS in the child's environment (exercising env arming in
    # a fresh interpreter) adds 3 s of worker latency, so the drain is
    # reliably still in progress when the second signal arrives.
    proc, port = spawn_server(
        edge_file, "--max-wait-ms", "1",
        env_extra={"REPRO_FAULTS": "serve.worker:latency_ms=3000,fail=0"},
    )
    try:
        thread, outcome = background_request(port)
        time.sleep(0.5)  # batch is on the worker, sleeping in the fault
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.5)  # drain is blocked on the slow batch
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=20)
        thread.join(timeout=20)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == 130
    assert "signal received: draining" in out
    assert "second signal: forcing exit" in out
    assert "drained cleanly" not in out
