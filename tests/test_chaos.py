"""Chaos parity: aggressive seeded fault profiles never change answers.

The whole point of best-effort persistence and batch isolation is that
faults shift *where* work happens, never *what* it computes.  These
tests arm the kind of aggressive profiles the CI chaos job uses
(``p≈0.3`` across every store seam, worker latency) and assert the
results stay bit-for-bit equal to a clean run, that the same seed
reproduces the exact same fault schedule, and that a disarmed registry
fires nothing at all.
"""

import asyncio

import pytest

from repro import faults
from repro.api import ReliabilityQuery, Session, Workload
from repro.graph import assign_uniform, erdos_renyi
from repro.index import IndexStore
from repro.serve import AsyncSession

CHAOS_PROFILE = (
    "session.store.*:p=0.3; store.*:p=0.3; "
    "serve.worker:p=0.2,latency_ms=2,fail=0"
)


@pytest.fixture(autouse=True)
def clean_registry():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def graph():
    g = erdos_renyi(50, num_edges=120, seed=9)
    return assign_uniform(g, 0.2, 0.8, seed=10)


QUERIES = [
    ReliabilityQuery(i, target=49 - i, samples=400) for i in range(6)
]


def clean_values(graph):
    session = Session(graph, seed=7)
    return [r.values for r in session.run(Workload(QUERIES))]


def test_flaky_store_session_keeps_bitwise_parity(graph, tmp_path):
    expected = clean_values(graph)
    with IndexStore(tmp_path / "store") as store:
        session = Session(graph, seed=7, store=store)
        faults.arm(CHAOS_PROFILE, seed=1234)
        got = [r.values for r in session.run(Workload(QUERIES))]
        fired = faults.fires()
        faults.disarm()
        assert got == expected
        assert fired > 0  # the profile actually did something
        # And a later clean run over the (partially written) store
        # still agrees with the ground truth.
        healed = Session(graph, seed=7, store=store)
        assert [r.values for r in healed.run(Workload(QUERIES))] == expected


def test_flaky_store_serving_keeps_bitwise_parity(graph, tmp_path):
    expected = clean_values(graph)

    async def scenario(store):
        session = Session(graph, seed=7, store=store)
        async with AsyncSession(session, max_wait_ms=10.0) as serving:
            results = await asyncio.gather(
                *(serving.submit(q) for q in QUERIES)
            )
            return [r.values for r in results], faults.fires()

    with IndexStore(tmp_path / "store") as store:
        faults.arm(CHAOS_PROFILE, seed=99)
        try:
            got, fired = asyncio.run(scenario(store))
        finally:
            faults.disarm()
    assert got == expected
    assert fired > 0


def test_same_seed_reproduces_identical_fault_schedule(graph, tmp_path):
    def chaos_run(seed, store_dir):
        with IndexStore(store_dir) as store:
            session = Session(graph, seed=7, store=store)
            faults.arm("session.store.*:p=0.4; store.*:p=0.4", seed=seed)
            try:
                session.run(Workload(QUERIES))
                return faults.seam_report()
            finally:
                faults.disarm()

    first = chaos_run(42, tmp_path / "a")
    second = chaos_run(42, tmp_path / "b")
    different = chaos_run(43, tmp_path / "c")
    assert first  # non-empty: faults fired
    assert first == second  # same seed → identical seam-by-seam schedule
    assert different != first  # the seed genuinely participates


def test_disarmed_registry_fires_nothing_end_to_end(graph, tmp_path):
    assert not faults.armed()
    expected = clean_values(graph)

    async def scenario(store):
        session = Session(graph, seed=7, store=store)
        async with AsyncSession(session, max_wait_ms=5.0) as serving:
            results = await asyncio.gather(
                *(serving.submit(q) for q in QUERIES)
            )
            return [r.values for r in results]

    with IndexStore(tmp_path / "store") as store:
        got = asyncio.run(scenario(store))
    assert got == expected
    assert faults.fires() == 0
    assert faults.seam_report() == {}
