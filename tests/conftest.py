"""Shared fixtures for the test suite.

Hypothesis strategies live in :mod:`strategies`;
``small_uncertain_graphs`` is re-exported here for backward
compatibility with older ``from conftest import ...`` call sites.
"""

from __future__ import annotations

import pytest

from repro.graph import UncertainGraph
from strategies import small_uncertain_graphs  # noqa: F401  (re-export)


@pytest.fixture
def diamond() -> UncertainGraph:
    """0 -> {1, 2} -> 3 diamond with known exact reliability 0.652."""
    g = UncertainGraph()
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 3, 0.5)
    g.add_edge(0, 2, 0.6)
    g.add_edge(2, 3, 0.7)
    return g


@pytest.fixture
def directed_diamond() -> UncertainGraph:
    g = UncertainGraph(directed=True)
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 3, 0.5)
    g.add_edge(0, 2, 0.6)
    g.add_edge(2, 3, 0.7)
    return g


@pytest.fixture
def figure2_graph() -> UncertainGraph:
    """The paper's Figure 2 counterexample graph (s=0, A=1, t=2)."""
    g = UncertainGraph()
    g.add_node(0)
    g.add_node(1)
    g.add_node(2)
    return g


@pytest.fixture
def figure3_graph() -> UncertainGraph:
    """Figure 3: s=0, A=1, B=2, t=3; edges AB and At with prob alpha."""

    def build(alpha: float) -> UncertainGraph:
        g = UncertainGraph()
        g.add_node(0)
        g.add_edge(1, 2, alpha)  # A-B
        g.add_edge(1, 3, alpha)  # A-t
        return g

    return build


