"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.graph import UncertainGraph


@pytest.fixture
def diamond() -> UncertainGraph:
    """0 -> {1, 2} -> 3 diamond with known exact reliability 0.652."""
    g = UncertainGraph()
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 3, 0.5)
    g.add_edge(0, 2, 0.6)
    g.add_edge(2, 3, 0.7)
    return g


@pytest.fixture
def directed_diamond() -> UncertainGraph:
    g = UncertainGraph(directed=True)
    g.add_edge(0, 1, 0.8)
    g.add_edge(1, 3, 0.5)
    g.add_edge(0, 2, 0.6)
    g.add_edge(2, 3, 0.7)
    return g


@pytest.fixture
def figure2_graph() -> UncertainGraph:
    """The paper's Figure 2 counterexample graph (s=0, A=1, t=2)."""
    g = UncertainGraph()
    g.add_node(0)
    g.add_node(1)
    g.add_node(2)
    return g


@pytest.fixture
def figure3_graph() -> UncertainGraph:
    """Figure 3: s=0, A=1, B=2, t=3; edges AB and At with prob alpha."""

    def build(alpha: float) -> UncertainGraph:
        g = UncertainGraph()
        g.add_node(0)
        g.add_edge(1, 2, alpha)  # A-B
        g.add_edge(1, 3, alpha)  # A-t
        return g

    return build


def small_uncertain_graphs(
    max_nodes: int = 6,
    directed: bool = False,
) -> st.SearchStrategy[UncertainGraph]:
    """Hypothesis strategy: random small graphs with probabilistic edges."""

    @st.composite
    def build(draw) -> UncertainGraph:
        n = draw(st.integers(min_value=2, max_value=max_nodes))
        is_directed = draw(st.booleans()) if directed else False
        g = UncertainGraph(directed=is_directed)
        for u in range(n):
            g.add_node(u)
        max_edges = n * (n - 1) if is_directed else n * (n - 1) // 2
        num_edges = draw(st.integers(min_value=0, max_value=min(max_edges, 9)))
        for _ in range(num_edges):
            u = draw(st.integers(min_value=0, max_value=n - 1))
            v = draw(st.integers(min_value=0, max_value=n - 1))
            if u == v:
                continue
            p = draw(
                st.floats(
                    min_value=0.05, max_value=1.0,
                    allow_nan=False, allow_infinity=False,
                )
            )
            g.add_edge(u, v, p)
        return g

    return build()
