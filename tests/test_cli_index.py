"""Tests for the ``repro index`` and ``repro check`` CLI surfaces.

The operational commands (``inspect``, ``vacuum``) must behave like
good unix citizens: machine-readable output on request, nonzero exits
with a stderr diagnostic on a missing or foreign store, and — above
all — never conjure an empty store directory out of a typo'd path.
"""

import json
import sqlite3

import pytest

from repro.cli import main
from repro.graph import UncertainGraph, write_edge_list


@pytest.fixture
def edge_file(tmp_path):
    graph = UncertainGraph.from_edges(
        [(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3)]
    )
    path = tmp_path / "g.edges"
    write_edge_list(graph, path)
    return str(path)


@pytest.fixture
def built_store(tmp_path, edge_file):
    """A store directory populated via ``repro index build``."""
    store = tmp_path / "store"
    code = main([
        "index", "build", "--file", edge_file, "--store", str(store),
        "--samples", "128", "256",
    ])
    assert code == 0
    return store


class TestIndexInspect:
    def test_human_readable(self, capsys, built_store):
        assert main(["index", "inspect", "--store", str(built_store)]) == 0
        out = capsys.readouterr().out
        assert "schema version:" in out
        assert "world batches:  2" in out

    def test_json_shape(self, capsys, built_store):
        capsys.readouterr()  # flush the build fixture's progress output
        assert main([
            "index", "inspect", "--store", str(built_store), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_batches"] == 2
        assert payload["num_results"] == 0
        # v2: identity-keyed coin scheme (v1 batches byte-incompatible).
        assert payload["schema_version"] == 2
        assert payload["batch_bytes"] > 0
        assert len(payload["batches"]) == 2
        row = payload["batches"][0]
        assert {"graph_hash", "num_samples", "seed",
                "num_edges", "nbytes"} <= set(row)
        assert sorted(r["num_samples"] for r in payload["batches"]) \
            == [128, 256]

    def test_missing_store_exits_nonzero(self, capsys, tmp_path):
        missing = tmp_path / "nope"
        code = main(["index", "inspect", "--store", str(missing)])
        assert code != 0
        assert "no such store directory" in capsys.readouterr().err
        # The typo'd path must NOT have been created as an empty store.
        assert not missing.exists()

    def test_foreign_schema_exits_nonzero(self, capsys, built_store):
        with sqlite3.connect(built_store / "catalog.sqlite3") as conn:
            conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
        code = main(["index", "inspect", "--store", str(built_store)])
        assert code != 0
        assert "schema version 999" in capsys.readouterr().err

    def test_corrupt_catalog_exits_nonzero(self, capsys, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "catalog.sqlite3").write_text("this is not sqlite")
        code = main(["index", "inspect", "--store", str(store)])
        assert code != 0
        assert "not a SQLite database" in capsys.readouterr().err


class TestIndexVacuum:
    def test_vacuum_clean_store(self, capsys, built_store):
        assert main(["index", "vacuum", "--store", str(built_store)]) == 0
        out = capsys.readouterr().out
        assert "removed 0 tmp files" in out
        assert "dropped" not in out

    def test_vacuum_drop_results(self, capsys, built_store, edge_file):
        # Populate the result cache through a store-backed session.
        from repro.api import Session
        from repro.graph import read_edge_list
        from repro.index import IndexStore

        with IndexStore(built_store) as store:
            session = Session(read_edge_list(edge_file), seed=0, store=store)
            session.reliability(0, target=2, samples=128)
        capsys.readouterr()
        assert main([
            "index", "vacuum", "--store", str(built_store), "--drop-results",
        ]) == 0
        assert "dropped" in capsys.readouterr().out
        assert main([
            "index", "inspect", "--store", str(built_store), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_results"] == 0
        assert payload["num_batches"] == 2  # batches survive --drop-results

    def test_missing_store_exits_nonzero(self, capsys, tmp_path):
        missing = tmp_path / "gone"
        code = main(["index", "vacuum", "--store", str(missing)])
        assert code != 0
        assert "no such store directory" in capsys.readouterr().err
        assert not missing.exists()

    def test_foreign_schema_exits_nonzero(self, capsys, built_store):
        with sqlite3.connect(built_store / "catalog.sqlite3") as conn:
            conn.execute(
                "UPDATE meta SET value = '999' "
                "WHERE key = 'schema_version'"
            )
        code = main(["index", "vacuum", "--store", str(built_store)])
        assert code != 0
        assert "schema version 999" in capsys.readouterr().err


class TestCheckSubcommand:
    def test_clean_tree_exits_zero(self, capsys, tmp_path):
        clean = tmp_path / "ok.py"
        clean.write_text("import numpy as np\n"
                         "rng = np.random.default_rng(7)\n")
        assert main(["check", str(clean)]) == 0

    def test_findings_exit_one(self, capsys, tmp_path):
        dirty = tmp_path / "bad.py"
        dirty.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main(["check", str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out

    def test_select_filters_rules(self, capsys, tmp_path):
        dirty = tmp_path / "bad.py"
        dirty.write_text("import numpy as np\nx = np.random.rand(3)\n")
        assert main(["check", str(dirty), "--select", "REP005"]) == 0

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("REP001", "REP002", "REP003", "REP004", "REP005"):
            assert code in out
