"""Tests for Algorithm 3 (most reliable path improvement, Problem 2)."""

import pytest

from repro.graph import fixed_new_edge_probability, path_graph, assign_fixed
from repro.core import improve_most_reliable_path
from repro.paths import most_reliable_path


class TestImprovement:
    def test_direct_edge_wins_when_strong(self, diamond):
        solution = improve_most_reliable_path(
            diamond, 0, 3, k=1, new_edge_prob=fixed_new_edge_probability(0.9)
        )
        assert [(u, v) for u, v, _ in solution.edges] == [(0, 3)]
        assert solution.old_probability == pytest.approx(0.42)
        assert solution.new_probability == pytest.approx(0.9)
        assert solution.path == [0, 3]
        assert solution.improvement == pytest.approx(0.48)

    def test_no_improvement_when_zeta_weak(self, diamond):
        solution = improve_most_reliable_path(
            diamond, 0, 3, k=2, new_edge_prob=fixed_new_edge_probability(0.05)
        )
        assert solution.edges == []
        assert solution.new_probability == solution.old_probability

    def test_multi_edge_shortcut(self):
        # Long weak chain: two new 0.8 edges bridging through the middle
        # beat the blue-only product.
        g = path_graph(7)
        assign_fixed(g, 0.5)
        solution = improve_most_reliable_path(
            g, 0, 6, k=2, new_edge_prob=fixed_new_edge_probability(0.8)
        )
        assert len(solution.edges) <= 2
        assert solution.new_probability > 0.5 ** 6

    def test_candidate_restriction(self, diamond):
        solution = improve_most_reliable_path(
            diamond, 0, 3, k=1,
            new_edge_prob=fixed_new_edge_probability(0.9),
            candidates=[(1, 2)],  # direct st not allowed
        )
        assert (0, 3) not in {(u, v) for u, v, _ in solution.edges}

    def test_h_constraint_limits_universe(self):
        g = path_graph(6)
        assign_fixed(g, 0.5)
        solution = improve_most_reliable_path(
            g, 0, 5, k=1,
            new_edge_prob=fixed_new_edge_probability(0.9),
            h=2,
        )
        for u, v, _ in solution.edges:
            assert abs(u - v) <= 2  # path graph: hops = index distance

    def test_invalid_k(self, diamond):
        with pytest.raises(ValueError):
            improve_most_reliable_path(
                diamond, 0, 3, k=0,
                new_edge_prob=fixed_new_edge_probability(0.5),
            )

    def test_solution_is_optimal_for_k1(self, diamond):
        """For k=1 Algorithm 3 must beat every single-edge alternative."""
        zeta = 0.6
        solution = improve_most_reliable_path(
            diamond, 0, 3, k=1, new_edge_prob=fixed_new_edge_probability(zeta)
        )
        best_alternative = 0.0
        for u, v in diamond.missing_edges():
            _, prob = most_reliable_path(diamond, 0, 3, [(u, v, zeta)])
            best_alternative = max(best_alternative, prob)
        assert solution.new_probability == pytest.approx(best_alternative)

    def test_improved_probability_matches_added_edges(self, diamond):
        zeta = 0.7
        solution = improve_most_reliable_path(
            diamond, 0, 3, k=2, new_edge_prob=fixed_new_edge_probability(zeta)
        )
        if solution.edges:
            _, prob = most_reliable_path(diamond, 0, 3, solution.edges)
            assert prob == pytest.approx(solution.new_probability)
