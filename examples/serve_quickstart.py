"""Serving quickstart: coalesced queries over HTTP (repro.serve).

Starts the stdlib HTTP server in-process, fires a burst of concurrent
client queries at it from worker threads, and shows in the returned
provenance that the burst was *coalesced*: the concurrently-arriving
requests were folded into one ``Session.run`` workload and answered
inside shared sampled worlds — while staying bit-for-bit identical to
what one-off sessions would return.

The same server starts from the command line with::

    repro serve --dataset as-topology --port 8321

Run:  python examples/serve_quickstart.py
      python examples/serve_quickstart.py --smoke   # CI-sized
"""

import asyncio
import json
import sys
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro import datasets
from repro.api import ReliabilityQuery, Session, Workload
from repro.serve import ReliabilityServer

#: CI runs every example with --smoke: same story, smaller numbers.
SMOKE = "--smoke" in sys.argv

NUM_CLIENTS = 4 if SMOKE else 12
SAMPLES = 500 if SMOKE else 2000


def fire_client(url: str, barrier: threading.Barrier, source: int, target: int):
    """One 'user': POST a reliability query, return the JSON response."""
    payload = json.dumps({
        "source": source, "target": target, "samples": SAMPLES,
    }).encode()
    barrier.wait()  # all clients hit the server at the same moment
    with urllib.request.urlopen(
        f"{url}/reliability", data=payload, timeout=30
    ) as response:
        return json.loads(response.read())


async def run_demo() -> None:
    """Start the server, run the concurrent burst, print provenance."""
    graph = datasets.load(
        "as-topology", num_nodes=150 if SMOKE else 400, seed=0
    )
    n = graph.num_nodes
    pairs = [((i * 7) % (n // 2), n - 1 - (i * 13) % (n // 2))
             for i in range(NUM_CLIENTS)]

    # A generous coalescing window so the whole burst lands in one
    # batch; real deployments use a couple of milliseconds.
    server = ReliabilityServer(graph, seed=42, max_wait_ms=300.0)
    host, port = await server.start()
    url = f"http://{host}:{port}"
    print(f"serving {graph} on {url}")
    print(f"firing {NUM_CLIENTS} concurrent clients...\n")

    barrier = threading.Barrier(NUM_CLIENTS)
    loop = asyncio.get_running_loop()
    with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
        responses = await asyncio.gather(*(
            loop.run_in_executor(pool, fire_client, url, barrier, s, t)
            for s, t in pairs
        ))

    print("responses (note the shared-worlds provenance flag):")
    for (s, t), body in zip(pairs, responses):
        value = body["results"][0]["value"]
        prov = body["provenance"]
        shared = "shared worlds" if prov["shared_worlds"] else "own worlds"
        print(f"  R({s:3d},{t:3d}) = {value:.4f}   "
              f"[{prov['estimator']}, Z={prov['samples']}, "
              f"seed={prov['seed']}, {shared}]")

    # (blocking urlopen must not run on the event-loop thread — the
    # server would never get a chance to answer it)
    health = json.loads(await loop.run_in_executor(
        None,
        lambda: urllib.request.urlopen(f"{url}/healthz", timeout=30).read(),
    ))
    stats = health["coalescer"]
    print(f"\ncoalescer: {stats['requests']} requests -> "
          f"{stats['batches']} batch(es), "
          f"mean batch size {stats['mean_batch_size']:.1f}")

    # The whole point: coalescing never changes answers.  Compare one
    # response against a one-off session computing the same query.
    s, t = pairs[0]
    one_off = Session(graph, seed=42).run(Workload([
        ReliabilityQuery(s, target=t, samples=SAMPLES)
    ]))[0]
    assert responses[0]["results"][0]["value"] == one_off.value
    print(f"parity check: coalesced R({s},{t}) == one-off Session.run "
          f"value ({one_off.value:.4f})")

    await server.stop()


def main() -> None:
    """Entry point."""
    asyncio.run(run_demo())


if __name__ == "__main__":
    main()
