"""Targeted influence maximization by link recommendation (§8.4.2).

Senior researchers (high-degree authors of a DBLP-like collaboration
graph) campaign toward junior researchers (low-degree authors).  We
recommend k new collaboration edges that maximize the expected influence
spread under the independent-cascade model, and compare against the
eigenvalue-optimization baseline the paper uses in Figure 8.

Run:  python examples/influence_maximization.py
      python examples/influence_maximization.py --smoke   # CI-sized
"""

import sys

from repro import datasets
from repro.baselines import eigenvalue_selection
from repro.graph import fixed_new_edge_probability
from repro.influence import influence_spread, maximize_targeted_influence

#: CI runs every example with --smoke: same story, smaller numbers.
SMOKE = "--smoke" in sys.argv


def main() -> None:
    num_nodes = 120 if SMOKE else 500
    num_juniors = 10 if SMOKE else 30
    spread_samples = 200 if SMOKE else 1000
    graph = datasets.load("dblp", num_nodes=num_nodes, seed=0)
    ranked = sorted(graph.nodes(), key=lambda u: -graph.degree(u))
    seniors = ranked[:5]
    juniors = [u for u in reversed(ranked) if u not in seniors][:num_juniors]

    print(f"collaboration network: {graph}")
    print(f"seniors (sources): {len(seniors)} highest-degree authors")
    print(f"juniors (targets): {len(juniors)} lowest-degree authors")

    base = influence_spread(
        graph, seniors, juniors, num_samples=spread_samples, seed=3
    )
    print(f"expected influence spread before: {base:.1f} juniors")
    print()

    k = 3 if SMOKE else 8
    # The paper's method: targeted IM = multi-target average reliability.
    solution = maximize_targeted_influence(
        graph, seniors, juniors, k, zeta=0.5, r=6 if SMOKE else 10, l=6,
        spread_samples=spread_samples, seed=4,
    )
    print(f"[paper's method] {len(solution.edges)} recommended edges")
    print(f"  spread after: {solution.new_spread:.1f} "
          f"({solution.gain:+.1f} juniors)")

    # Baseline: global eigenvalue optimization (query-agnostic).
    eo_edges = eigenvalue_selection(
        graph, k, fixed_new_edge_probability(0.5), seed=1
    )
    eo_spread = influence_spread(
        graph, seniors, juniors, num_samples=spread_samples, seed=3,
        extra_edges=eo_edges,
    )
    print(f"[eigen baseline] spread after: {eo_spread:.1f} "
          f"({eo_spread - base:+.1f} juniors)")


if __name__ == "__main__":
    main()
