"""Quickstart: budgeted reliability maximization in 30 lines.

Builds a small uncertain graph, asks for the best k=2 shortcut edges
between a source and a target, and prints the before/after reliability.

Run:  python examples/quickstart.py
"""

from repro import ReliabilityMaximizer, UncertainGraph
from repro.reliability import MonteCarloEstimator


def main() -> None:
    # An uncertain graph: every edge exists only with some probability.
    graph = UncertainGraph(name="quickstart")
    graph.add_edge(0, 1, 0.8)
    graph.add_edge(1, 2, 0.4)
    graph.add_edge(2, 3, 0.7)
    graph.add_edge(0, 4, 0.6)
    graph.add_edge(4, 5, 0.5)
    graph.add_edge(5, 3, 0.6)

    source, target = 0, 3
    base = MonteCarloEstimator(5000, seed=1).reliability(graph, source, target)
    print(f"graph: {graph}")
    print(f"reliability R({source}, {target}) before: {base:.3f}")

    # Ask for the best k=2 new edges, each materializing with zeta=0.5.
    solver = ReliabilityMaximizer(r=6, l=10, evaluation_samples=5000)
    solution = solver.maximize(graph, source, target, k=2, zeta=0.5)

    print(f"selected shortcut edges: "
          f"{[(u, v) for u, v, _ in solution.edges]}")
    print(f"reliability after: {solution.new_reliability:.3f} "
          f"(gain {solution.gain:+.3f})")
    print(f"candidates considered: {solution.num_candidates}, "
          f"selection took {solution.selection_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
