"""Quickstart: sessions, workloads, and budgeted maximization.

Builds a small uncertain graph, answers a batch of reliability queries
through one session (one compiled plan, one shared world batch), then
asks for the best k=2 shortcut edges between a source and a target.

Run:  python examples/quickstart.py
      python examples/quickstart.py --smoke   # CI mode (already tiny)
"""

from repro import MaximizeQuery, ReliabilityQuery, Session, UncertainGraph, Workload


def main() -> None:
    # --smoke is accepted for CI uniformity; this example is already
    # smoke-sized, so full and smoke modes are identical.
    # An uncertain graph: every edge exists only with some probability.
    graph = UncertainGraph(name="quickstart")
    graph.add_edge(0, 1, 0.8)
    graph.add_edge(1, 2, 0.4)
    graph.add_edge(2, 3, 0.7)
    graph.add_edge(0, 4, 0.6)
    graph.add_edge(4, 5, 0.5)
    graph.add_edge(5, 3, 0.6)

    source, target = 0, 3
    session = Session(graph, seed=1, r=6, l=10, evaluation_samples=5000)

    # A workload of queries, all answered inside the same sampled
    # worlds: the multi-target query costs one extra BFS sweep, nothing
    # more.
    workload = Workload([
        ReliabilityQuery(source, target=target, samples=5000),
        ReliabilityQuery(source, targets=(2, 5), samples=5000),
    ])
    direct, fanout = session.run(workload)
    print(f"graph: {graph}")
    print(f"reliability R({source}, {target}) before: {direct.value:.3f}")
    print(f"fan-out from {source}: "
          f"{ {t: round(v, 3) for t, v in fanout.by_target.items()} }")
    print(f"  [{direct.provenance.describe()}]")

    # Ask for the best k=2 new edges, each materializing with zeta=0.5.
    result = session.maximize(
        MaximizeQuery(source, target, k=2, zeta=0.5, method="be")
    )
    solution = result.solution
    print(f"selected shortcut edges: "
          f"{[(u, v) for u, v, _ in solution.edges]}")
    print(f"reliability after: {solution.new_reliability:.3f} "
          f"(gain {solution.gain:+.3f})")
    print(f"candidates considered: {solution.num_candidates}, "
          f"selection took {solution.selection_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
