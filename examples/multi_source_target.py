"""Multiple-source-target reliability maximization (Problem 4, §6).

A communications scenario: a set of gateway nodes must stay reliably
connected to a set of monitoring stations.  We add k new links under all
three aggregate objectives and show how the chosen aggregate changes
which pairs benefit.

Run:  python examples/multi_source_target.py
      python examples/multi_source_target.py --smoke   # CI-sized
"""

import sys

from repro import datasets
from repro.core import MultiSourceTargetMaximizer
from repro.queries import sample_multi_sets
from repro.reliability import RecursiveStratifiedSampler

#: CI runs every example with --smoke: same story, smaller numbers.
SMOKE = "--smoke" in sys.argv


def main() -> None:
    graph = datasets.load(
        "as-topology", num_nodes=200 if SMOKE else 600, seed=0
    )
    sources, targets = sample_multi_sets(graph, 3, seed=17)
    print(f"device network: {graph}")
    print(f"gateways (sources): {sources}")
    print(f"stations (targets): {targets}")
    print()

    solver = MultiSourceTargetMaximizer(
        estimator=RecursiveStratifiedSampler(100 if SMOKE else 150, seed=5),
        r=8 if SMOKE else 12,
        l=10,
        k1_fraction=0.25,
        evaluation_samples=400 if SMOKE else 800,
    )
    for aggregate in ("average", "minimum", "maximum"):
        solution = solver.maximize(
            graph, sources, targets, k=3 if SMOKE else 4, zeta=0.5,
            aggregate=aggregate,
        )
        print(f"objective: {aggregate} reliability over all S x T pairs")
        print(f"  value before: {solution.base_value:.3f}")
        print(f"  value after:  {solution.new_value:.3f} "
              f"({solution.gain:+.3f})")
        print(f"  new links: {[(u, v) for u, v, _ in solution.edges]}")
        weakest = min(solution.pair_new, key=solution.pair_new.get)
        strongest = max(solution.pair_new, key=solution.pair_new.get)
        print(f"  weakest pair after:   {weakest} "
              f"R={solution.pair_new[weakest]:.3f}")
        print(f"  strongest pair after: {strongest} "
              f"R={solution.pair_new[strongest]:.3f}")
        print()


if __name__ == "__main__":
    main()
