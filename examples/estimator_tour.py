"""A tour of the reliability estimators (exact, MC, RSS, lazy).

Shows that the samplers agree with exact computation on a small graph,
then compares their cost/variance trade-off on a larger one — the
substance of the paper's Tables 6 and 7.

Run:  python examples/estimator_tour.py
      python examples/estimator_tour.py --smoke   # CI-sized
"""

import statistics
import sys
import time

#: CI runs every example with --smoke: same story, smaller numbers.
SMOKE = "--smoke" in sys.argv

from repro import datasets
from repro.graph import UncertainGraph
from repro.queries import sample_st_pairs
from repro.reliability import (
    LazyPropagationEstimator,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    exact_reliability,
)


def main() -> None:
    # 1. Agreement with exact computation on a bridge network.
    bridge = UncertainGraph.from_edges(
        [(0, 1, 0.5), (0, 2, 0.5), (1, 2, 0.5), (1, 3, 0.5), (2, 3, 0.5)]
    )
    truth = exact_reliability(bridge, 0, 3)
    print(f"Wheatstone bridge, all p=0.5: exact R(0,3) = {truth:.4f}")
    agree_z = 4000 if SMOKE else 20000
    for name, est in [
        ("monte carlo", MonteCarloEstimator(agree_z, seed=1)),
        ("rss        ", RecursiveStratifiedSampler(agree_z // 4, seed=1)),
        ("lazy       ", LazyPropagationEstimator(agree_z, seed=1)),
    ]:
        print(f"  {name}: {est.reliability(bridge, 0, 3):.4f}")
    print()

    # 2. Variance at a fixed budget on a real-like graph.  Pick a query
    # with moderate reliability — that's the regime where the paper's
    # selection loops live and where stratification pays.
    graph = datasets.load(
        "as-topology", num_nodes=200 if SMOKE else 500, seed=0
    )
    probes = sample_st_pairs(graph, 8, seed=9, min_hops=2, max_hops=3)
    scout = MonteCarloEstimator(500 if SMOKE else 2000, seed=42)
    s, t = min(
        probes,
        key=lambda pair: abs(scout.reliability(graph, *pair) - 0.4),
    )
    budget = 100 if SMOKE else 200
    print(f"{graph}, query {s}->{t}, budget Z={budget} per estimate")
    for name, factory in [
        ("monte carlo", lambda seed: MonteCarloEstimator(budget, seed=seed)),
        ("rss        ", lambda seed: RecursiveStratifiedSampler(budget, seed=seed)),
    ]:
        start = time.perf_counter()
        runs = 10 if SMOKE else 30
        values = [
            factory(seed).reliability(graph, s, t) for seed in range(runs)
        ]
        elapsed = time.perf_counter() - start
        print(f"  {name}: mean={statistics.mean(values):.4f} "
              f"stdev={statistics.stdev(values):.4f} "
              f"({elapsed / runs * 1000:.1f} ms/estimate)")
    print()
    print("RSS reaches the same mean with a lower spread at the same")
    print("sample budget — so it converges with fewer samples, which is")
    print("why the paper swaps MC for RSS in its selection loops")
    print("(Tables 6-7).  The variance edge grows with graph size; at")
    print("this scale it is modest.")


if __name__ == "__main__":
    main()
