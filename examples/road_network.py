"""Road-network delivery reliability (the intro's logistics scenario).

The paper motivates budgeted reliability maximization with road networks
under unexpected congestion: edges are road segments whose probability
is the chance they are passable in time, and the planner may build a
limited number of new segments (bypasses/flyovers) between nearby
intersections to maximize on-time delivery probability from a depot to
a customer.

Run:  python examples/road_network.py
      python examples/road_network.py --smoke   # CI mode (already tiny)
"""

import numpy as np

from repro.core import ReliabilityMaximizer
from repro.graph import UncertainGraph, grid_2d
from repro.reliability import RecursiveStratifiedSampler, reliability_bounds

ROWS, COLS = 10, 10


def build_city(seed: int = 3) -> UncertainGraph:
    """10x10 street grid; arterials are reliable, side streets congest."""
    city = grid_2d(ROWS, COLS, name="city")
    rng = np.random.default_rng(seed)
    for u, v, _ in list(city.edges()):
        on_arterial = (u // COLS == v // COLS == ROWS // 2) or (
            u % COLS == v % COLS == COLS // 2
        )
        if on_arterial:
            p = rng.uniform(0.85, 0.95)   # arterial: nearly always clear
        else:
            p = rng.uniform(0.35, 0.7)    # side street: congestion-prone
        city.set_probability(u, v, float(p))
    return city


def main() -> None:
    # --smoke is accepted for CI uniformity; the 10x10 grid is already
    # smoke-sized, so full and smoke modes are identical.
    city = build_city()
    # Depot in the congested north-west corner; customer at the end of
    # the east-west arterial.  The interesting decision is how to hook
    # the depot onto the reliable arterial with few new segments.
    depot = 0
    customer = (ROWS // 2) * COLS + (COLS - 1)
    print(f"street grid: {city} (depot {depot} -> customer {customer})")

    # New segments only between intersections within 3 blocks (the
    # paper's h-hop physical constraint), each passable with p = 0.8.
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(200, seed=1),
        evaluation_samples=3000,
        r=20,
        l=15,
        h=3,
    )
    for k in (1, 3):
        solution = solver.maximize(city, depot, customer, k, zeta=0.8)
        print(f"\nbudget k={k} new segments:")
        print(f"  on-time delivery probability: "
              f"{solution.base_reliability:.3f} -> "
              f"{solution.new_reliability:.3f} ({solution.gain:+.3f})")
        for u, v, p in solution.edges:
            print(f"  + build segment ({u // COLS},{u % COLS}) <-> "
                  f"({v // COLS},{v % COLS})  (p={p})")
        if not solution.edges:
            print("  (no single segment improves the route — shortcut "
                  "chains need a bigger budget)")
        bracket = reliability_bounds(
            city.with_edges(solution.edges), depot, customer, num_paths=12
        )
        print(f"  certified bracket after construction: "
              f"[{bracket.lower:.3f}, {bracket.upper:.3f}]")

    print(
        "\nNote the k=1 vs k=3 contrast: no individual segment pays off,\n"
        "but a coordinated chain onto the arterial does — the interaction\n"
        "that makes the objective non-submodular and motivates the\n"
        "paper's path-batch selection over per-edge greedy methods."
    )


if __name__ == "__main__":
    main()
