"""The paper's sensor-network case study (Figures 6 and 7).

54 sensors on a simulated Intel-Lab floor plan.  We improve the packet-
delivery reliability between two distant sensors by installing three new
radio links, each constrained to <= 15 meters and carrying the network's
average link quality — exactly the paper's §8.4.1 protocol.

Run:  python examples/sensor_network_case_study.py
      python examples/sensor_network_case_study.py --smoke   # CI-sized
"""

import os
import sys

#: CI runs every example with --smoke: same story, smaller numbers.
SMOKE = "--smoke" in sys.argv

from repro.core import ReliabilityMaximizer
from repro.datasets import intel_lab
from repro.graph import fixed_new_edge_probability
from repro.reliability import RecursiveStratifiedSampler
from repro.viz import save_network_svg


def show_region(positions, sensor):
    x, y = positions[sensor]
    horizontal = "left" if x < 14 else "center" if x < 27 else "right"
    vertical = "bottom" if y < 10 else "middle" if y < 20 else "top"
    return f"{vertical}-{horizontal}"


def main() -> None:
    graph = intel_lab.build()
    positions = intel_lab.sensor_positions()
    zeta = round(intel_lab.average_link_probability(graph), 2)
    allowed = set(intel_lab.candidate_links(graph, positions))

    print(f"sensor network: {graph}")
    print(f"average link probability (used as zeta): {zeta}")
    print(f"installable <=15m links: {len(allowed)}")
    print()

    # r spans half the lab so the <= 15 m candidate rule still leaves
    # installable pairs between the two relevant regions.
    solver = ReliabilityMaximizer(
        estimator=RecursiveStratifiedSampler(100 if SMOKE else 200, seed=7),
        evaluation_samples=500 if SMOKE else 2000,
        r=26,
        l=15,
    )
    prob_model = fixed_new_edge_probability(zeta)

    scenarios = [
        ("cross-lab (right wall -> top-left)", 5, 41),
        ("diagonal (bottom strip -> top wall)", 15, 44),
    ]
    for label, s, t in scenarios:
        space = solver.candidates(graph, s, t, prob_model)
        space.edges = [
            (u, v, p) for u, v, p in space.edges if (u, v) in allowed
        ]
        solution = solver.maximize(
            graph, s, t, 3, zeta=zeta, method="be", candidate_space=space
        )
        print(f"scenario: {label}")
        print(f"  sensor {s} ({show_region(positions, s)}) -> "
              f"sensor {t} ({show_region(positions, t)})")
        print(f"  reliability before: {solution.base_reliability:.3f}")
        print(f"  reliability after:  {solution.new_reliability:.3f}")
        for u, v, p in solution.edges:
            print(f"  + install link {u} -> {v}  "
                  f"({show_region(positions, u)} to "
                  f"{show_region(positions, v)}, p={p})")
        svg_path = f"sensor_case_{s}_{t}.svg"
        save_network_svg(
            svg_path, graph, positions,
            new_edges=solution.edges,
            highlight_nodes=[s, t],
            min_probability=0.33,
        )
        print(f"  map written to {os.path.abspath(svg_path)}")
        print()


if __name__ == "__main__":
    main()
