"""Descriptive statistics over uncertain graphs (the columns of Table 8).

Provides edge-probability summaries, (sampled) average shortest-path
length, an approximate longest shortest path (diameter) via double BFS,
and the average clustering coefficient.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .uncertain_graph import UncertainGraph


@dataclass
class GraphSummary:
    """One row of the paper's Table 8."""

    name: str
    num_nodes: int
    num_edges: int
    prob_mean: float
    prob_std: float
    prob_quartiles: Tuple[float, float, float]
    directed: bool
    avg_shortest_path: float
    longest_shortest_path: int
    clustering_coefficient: float

    def row(self) -> List[str]:
        """Formatted cells in the paper's Table 8 column order."""
        q1, q2, q3 = self.prob_quartiles
        return [
            self.name,
            str(self.num_nodes),
            str(self.num_edges),
            f"{self.prob_mean:.2f}±{self.prob_std:.2f} "
            f"{{{q1:.2f}, {q2:.2f}, {q3:.2f}}}",
            "Directed" if self.directed else "Undirected",
            f"{self.avg_shortest_path:.1f}",
            str(self.longest_shortest_path),
            f"{self.clustering_coefficient:.2f}",
        ]


def probability_summary(
    graph: UncertainGraph,
) -> Tuple[float, float, Tuple[float, float, float]]:
    """Mean, standard deviation and quartiles of edge probabilities."""
    probs = np.array([p for _, _, p in graph.edges()], dtype=float)
    if probs.size == 0:
        return 0.0, 0.0, (0.0, 0.0, 0.0)
    q1, q2, q3 = np.percentile(probs, [25, 50, 75])
    return float(probs.mean()), float(probs.std()), (float(q1), float(q2), float(q3))


def average_shortest_path_length(
    graph: UncertainGraph,
    num_sources: int = 50,
    seed: int = 0,
) -> float:
    """Mean hop distance over sampled sources (exact on small graphs).

    Unreachable pairs are skipped, matching the convention of reporting
    the average over connected pairs.
    """
    nodes = list(graph.nodes())
    if len(nodes) <= 1:
        return 0.0
    rng = np.random.default_rng(seed)
    if len(nodes) <= num_sources:
        sources = nodes
    else:
        idx = rng.choice(len(nodes), size=num_sources, replace=False)
        sources = [nodes[i] for i in idx.tolist()]
    total, count = 0.0, 0
    for s in sources:
        dist = graph.hop_distances(s)
        for v, d in dist.items():
            if v != s:
                total += d
                count += 1
    return total / count if count else math.inf


def approximate_diameter(graph: UncertainGraph, seed: int = 0) -> int:
    """Longest shortest path (lower bound) via the double-BFS sweep."""
    nodes = list(graph.nodes())
    if not nodes:
        return 0
    rng = np.random.default_rng(seed)
    start = nodes[int(rng.integers(0, len(nodes)))]
    dist = graph.hop_distances(start)
    far = max(dist, key=dist.get)
    dist2 = graph.hop_distances(far)
    return max(dist2.values()) if dist2 else 0


def clustering_coefficient(graph: UncertainGraph, num_nodes: int = 500, seed: int = 0) -> float:
    """Average local clustering coefficient over sampled nodes.

    Direction is ignored (neighbors = union of in/out), which matches the
    usual convention for reporting C.Coe. on directed device networks.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    rng = np.random.default_rng(seed)
    if len(nodes) <= num_nodes:
        sample = nodes
    else:
        idx = rng.choice(len(nodes), size=num_nodes, replace=False)
        sample = [nodes[i] for i in idx.tolist()]
    total = 0.0
    for u in sample:
        neighbors = set(graph.successors(u)) | set(graph.predecessors(u))
        neighbors.discard(u)
        k = len(neighbors)
        if k < 2:
            continue
        links = 0
        neighbor_list = list(neighbors)
        for i, a in enumerate(neighbor_list):
            succ_a = graph.successors(a)
            pred_a = graph.predecessors(a)
            for b in neighbor_list[i + 1:]:
                if b in succ_a or b in pred_a:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(sample)


def summarize(graph: UncertainGraph, seed: int = 0) -> GraphSummary:
    """Compute a full Table-8-style summary row for ``graph``."""
    mean, std, quartiles = probability_summary(graph)
    return GraphSummary(
        name=graph.name or "graph",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        prob_mean=mean,
        prob_std=std,
        prob_quartiles=quartiles,
        directed=graph.directed,
        avg_shortest_path=average_shortest_path_length(graph, seed=seed),
        longest_shortest_path=approximate_diameter(graph, seed=seed),
        clustering_coefficient=clustering_coefficient(graph, seed=seed),
    )
