"""The uncertain graph data structure.

An uncertain graph ``G = (V, E, p)`` attaches an independent existence
probability ``p(e) in [0, 1]`` to every edge.  Under possible-world
semantics the graph represents a distribution over ``2^m`` deterministic
graphs, each obtained by independently sampling every edge.

This module provides :class:`UncertainGraph`, the substrate every other
subsystem of the library builds on.  It supports directed and undirected
graphs, cheap copies, edge addition/removal, h-hop neighborhoods and
possible-world enumeration (for small graphs).
"""

from __future__ import annotations

import hashlib
import itertools
import math
import struct
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

Edge = Tuple[int, int]
ProbEdge = Tuple[int, int, float]


class UncertainGraph:
    """A probabilistic graph with per-edge existence probabilities.

    Parameters
    ----------
    directed:
        When ``False`` (default) every edge is stored in both directions
        and reported once in canonical ``(min, max)`` order.
    name:
        Optional label used by datasets and experiment harnesses.

    Examples
    --------
    >>> g = UncertainGraph()
    >>> g.add_edge(0, 1, 0.5)
    >>> g.add_edge(1, 2, 0.9)
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> g.probability(2, 1)
    0.9
    """

    def __init__(self, directed: bool = False, name: str = "") -> None:
        self.directed = directed
        self.name = name
        self._succ: Dict[int, Dict[int, float]] = {}
        self._pred: Dict[int, Dict[int, float]] = {}
        self._num_edges = 0
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[ProbEdge],
        directed: bool = False,
        name: str = "",
    ) -> "UncertainGraph":
        """Build a graph from an iterable of ``(u, v, p)`` triples."""
        graph = cls(directed=directed, name=name)
        for u, v, p in edges:
            graph.add_edge(u, v, p)
        return graph

    def add_node(self, u: int) -> None:
        """Add an isolated node (no-op if it already exists)."""
        if u not in self._succ:
            self._succ[u] = {}
            self._pred[u] = {}
            self._version += 1

    def add_edge(self, u: int, v: int, p: float) -> None:
        """Add edge ``(u, v)`` with probability ``p``.

        Self-loops are rejected (they never affect reachability).  Adding
        an existing edge overwrites its probability.
        """
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) is not allowed")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"edge probability {p!r} outside [0, 1]")
        self.add_node(u)
        self.add_node(v)
        is_new = v not in self._succ[u]
        self._succ[u][v] = p
        self._pred[v][u] = p
        if not self.directed:
            self._succ[v][u] = p
            self._pred[u][v] = p
        if is_new:
            self._num_edges += 1
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove edge ``(u, v)``; raises ``KeyError`` when absent."""
        if v not in self._succ.get(u, {}):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        del self._succ[u][v]
        del self._pred[v][u]
        if not self.directed:
            del self._succ[v][u]
            del self._pred[u][v]
        self._num_edges -= 1
        self._version += 1

    def set_probability(self, u: int, v: int, p: float) -> None:
        """Update the probability of an existing edge."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u}, {v}) not in graph")
        self.add_edge(u, v, p)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Mutation counter: bumps on any node/edge change.

        Compiled representations (e.g. the vectorized engine's CSR
        cache, see :mod:`repro.engine`) key their per-graph caches on
        this counter so they recompile exactly when the graph changes.
        """
        return self._version

    def content_hash(self) -> str:
        """Stable hex digest of the graph *content* (nodes, edges, probs).

        Unlike :attr:`version` — a per-instance mutation counter on
        which two distinct graph objects can collide — the content hash
        identifies what the graph *is*: two graphs with the same node
        set, the same edges and bit-identical probabilities hash equal
        regardless of construction history or insertion order, and any
        semantic difference changes the digest.  This is the key the
        persistent reliability index (:mod:`repro.index`) files world
        batches and cached results under, so an index survives process
        restarts and ``POST /graph`` hot-swaps invalidate exactly when
        the served graph really changed.

        The digest is cached per :attr:`version`, so repeated calls
        between mutations are free.

        Examples
        --------
        >>> a = UncertainGraph.from_edges([(0, 1, 0.5), (1, 2, 0.9)])
        >>> b = UncertainGraph.from_edges([(1, 2, 0.9), (0, 1, 0.5)])
        >>> a.content_hash() == b.content_hash()
        True
        >>> b.add_edge(0, 2, 0.1)
        >>> a.content_hash() == b.content_hash()
        False
        """
        cached = getattr(self, "_content_hash_cache", None)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        digest = hashlib.sha256()
        digest.update(b"repro-graph-v1|")
        digest.update(b"directed|" if self.directed else b"undirected|")
        # Probabilities hash by their exact float64 bits: estimates are
        # deterministic functions of those bits, so equal hash => equal
        # sampling behavior, and any reweighting invalidates.
        # The sorted order here is load-bearing: the engine compiler
        # (repro.engine.csr._compile) assigns edge ids in the same
        # sorted order, so equal hash => identical edge-id layout =>
        # a persisted world batch's coin rows line up for every graph
        # that hashes to it.
        for u, v, p in sorted(self.edges()):
            digest.update(struct.pack("<qqd", u, v, p))
        digest.update(b"|nodes|")
        for u in sorted(self._succ):
            digest.update(struct.pack("<q", u))
        value = digest.hexdigest()
        self._content_hash_cache = (self._version, value)
        return value

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        """Number of edges (undirected edges counted once)."""
        return self._num_edges

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._succ)

    def has_node(self, u: int) -> bool:
        """True when node ``u`` exists."""
        return u in self._succ

    def has_edge(self, u: int, v: int) -> bool:
        """True when edge ``(u, v)`` exists (either direction if undirected)."""
        return v in self._succ.get(u, {})

    def probability(self, u: int, v: int) -> float:
        """Existence probability of edge ``(u, v)``."""
        try:
            return self._succ[u][v]
        except KeyError:
            raise KeyError(f"edge ({u}, {v}) not in graph") from None

    def successors(self, u: int) -> Dict[int, float]:
        """Mapping ``v -> p(u, v)`` of out-neighbors.  Do not mutate."""
        return self._succ.get(u, {})

    def predecessors(self, u: int) -> Dict[int, float]:
        """Mapping ``v -> p(v, u)`` of in-neighbors.  Do not mutate."""
        return self._pred.get(u, {})

    def edges(self) -> Iterator[ProbEdge]:
        """Iterate ``(u, v, p)`` triples, each undirected edge once."""
        for u, nbrs in self._succ.items():
            for v, p in nbrs.items():
                if self.directed or u <= v:
                    yield (u, v, p)

    def edge_set(self) -> Set[Edge]:
        """All edges as a set of ``(u, v)`` pairs (canonical for undirected)."""
        return {(u, v) for u, v, _ in self.edges()}

    def degree(self, u: int) -> int:
        """Number of distinct neighbors (in + out for directed graphs)."""
        if self.directed:
            merged = set(self._succ.get(u, {})) | set(self._pred.get(u, {}))
            return len(merged)
        return len(self._succ.get(u, {}))

    def weighted_degree(self, u: int) -> float:
        """Sum of incident edge probabilities (the paper's degree centrality)."""
        total = sum(self._succ.get(u, {}).values())
        if self.directed:
            total += sum(self._pred.get(u, {}).values())
        return total

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "UncertainGraph":
        """Deep copy (adjacency dictionaries are copied, node ids shared)."""
        clone = UncertainGraph(directed=self.directed, name=self.name)
        clone._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        clone._pred = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        clone._num_edges = self._num_edges
        return clone

    def with_edges(self, extra: Iterable[ProbEdge]) -> "UncertainGraph":
        """Copy of this graph with extra ``(u, v, p)`` edges added."""
        clone = self.copy()
        for u, v, p in extra:
            clone.add_edge(u, v, p)
        return clone

    def reverse(self) -> "UncertainGraph":
        """Graph with every directed edge flipped (self for undirected)."""
        if not self.directed:
            return self
        flipped = UncertainGraph(directed=True, name=self.name)
        for u in self._succ:
            flipped.add_node(u)
        for u, v, p in self.edges():
            flipped.add_edge(v, u, p)
        return flipped

    def subgraph(self, keep: Iterable[int]) -> "UncertainGraph":
        """Induced subgraph on ``keep`` (nodes preserved even if isolated)."""
        keep_set = set(keep)
        sub = UncertainGraph(directed=self.directed, name=self.name)
        for u in keep_set:
            if u in self._succ:
                sub.add_node(u)
        for u, v, p in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge(u, v, p)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "UncertainGraph":
        """Subgraph containing exactly ``edges`` (with their probabilities)."""
        sub = UncertainGraph(directed=self.directed, name=self.name)
        for u, v in edges:
            sub.add_edge(u, v, self.probability(u, v))
        return sub

    # ------------------------------------------------------------------
    # traversal helpers
    # ------------------------------------------------------------------
    def hop_distances(self, source: int, max_hops: Optional[int] = None) -> Dict[int, int]:
        """BFS hop distance from ``source`` to every reachable node.

        Edge probabilities are ignored: this is distance in the *topology*,
        used for the h-hop candidate constraint and query generation.
        """
        if source not in self._succ:
            raise KeyError(f"node {source} not in graph")
        dist = {source: 0}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            d = dist[u]
            if max_hops is not None and d >= max_hops:
                continue
            for v in self._succ[u]:
                if v not in dist:
                    dist[v] = d + 1
                    frontier.append(v)
        return dist

    def within_hops(self, source: int, h: int) -> Set[int]:
        """Nodes within ``h`` hops of ``source`` (excluding ``source``)."""
        dist = self.hop_distances(source, max_hops=h)
        del dist[source]
        return set(dist)

    def connected_components(self) -> List[Set[int]]:
        """Weakly connected components (ignores direction and probability)."""
        seen: Set[int] = set()
        components = []
        for start in self._succ:
            if start in seen:
                continue
            comp = {start}
            frontier = deque([start])
            seen.add(start)
            while frontier:
                u = frontier.popleft()
                neighbors = set(self._succ[u]) | set(self._pred[u])
                for v in neighbors:
                    if v not in seen:
                        seen.add(v)
                        comp.add(v)
                        frontier.append(v)
            components.append(comp)
        return components

    # ------------------------------------------------------------------
    # possible-world semantics
    # ------------------------------------------------------------------
    def possible_worlds(self) -> Iterator[Tuple[Set[Edge], float]]:
        """Enumerate every possible world as ``(present_edges, probability)``.

        Exponential in the number of edges — intended for graphs with at
        most ~20 edges (validation, tests, exact baselines).
        """
        edge_list = list(self.edges())
        if len(edge_list) > 25:
            raise ValueError(
                f"refusing to enumerate 2^{len(edge_list)} possible worlds; "
                "use a sampling estimator instead"
            )
        for mask in itertools.product((False, True), repeat=len(edge_list)):
            prob = 1.0
            present: Set[Edge] = set()
            for include, (u, v, p) in zip(mask, edge_list, strict=True):
                if include:
                    prob *= p
                    present.add((u, v))
                else:
                    prob *= 1.0 - p
            if prob > 0.0:
                yield present, prob

    def world_probability(self, present: Set[Edge]) -> float:
        """Probability of observing exactly the world ``present`` (Eq. 1)."""
        prob = 1.0
        for u, v, p in self.edges():
            prob *= p if (u, v) in present else 1.0 - p
        return prob

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def log_weight(self, u: int, v: int) -> float:
        """``-log p(u, v)`` — the additive weight used by path algorithms."""
        p = self.probability(u, v)
        if p <= 0.0:
            return math.inf
        return -math.log(p)

    def missing_edges(self) -> Iterator[Edge]:
        """All node pairs that are *not* edges (candidate universe).

        O(n^2); only call on small graphs or after search-space reduction.
        """
        nodes = list(self._succ)
        if self.directed:
            for u in nodes:
                for v in nodes:
                    if u != v and not self.has_edge(u, v):
                        yield (u, v)
        else:
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    if not self.has_edge(u, v):
                        yield (u, v)

    def __contains__(self, u: int) -> bool:
        return u in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<UncertainGraph{label} {kind} "
            f"n={self.num_nodes} m={self.num_edges}>"
        )
