"""Uncertain-graph substrate: data structure, generators, probabilities."""

from .uncertain_graph import Edge, ProbEdge, UncertainGraph
from .generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    node_sampled_subgraph,
    path_graph,
    powerlaw_cluster,
    random_regular,
    watts_strogatz,
)
from .probability import (
    NewEdgeProbability,
    assign_distance_decay,
    assign_exponential_counts,
    assign_fixed,
    assign_inverse_out_degree,
    assign_snapshot_frequency,
    assign_uniform,
    fixed_new_edge_probability,
    normal_new_edge_probability,
    uniform_new_edge_probability,
)
from .stats import (
    GraphSummary,
    approximate_diameter,
    average_shortest_path_length,
    clustering_coefficient,
    probability_summary,
    summarize,
)
from .io import read_edge_list, write_edge_list

__all__ = [
    "Edge",
    "ProbEdge",
    "UncertainGraph",
    "barabasi_albert",
    "erdos_renyi",
    "grid_2d",
    "node_sampled_subgraph",
    "path_graph",
    "powerlaw_cluster",
    "random_regular",
    "watts_strogatz",
    "NewEdgeProbability",
    "assign_distance_decay",
    "assign_exponential_counts",
    "assign_fixed",
    "assign_inverse_out_degree",
    "assign_snapshot_frequency",
    "assign_uniform",
    "fixed_new_edge_probability",
    "normal_new_edge_probability",
    "uniform_new_edge_probability",
    "GraphSummary",
    "approximate_diameter",
    "average_shortest_path_length",
    "clustering_coefficient",
    "probability_summary",
    "summarize",
    "read_edge_list",
    "write_edge_list",
]
