"""Reading and writing uncertain graphs.

The on-disk format is the conventional probabilistic edge list used by
uncertain-graph research code: one ``u v p`` triple per line, ``#``
comments, with an optional header comment recording directedness.
"""

from __future__ import annotations

import os
from typing import IO, Iterable, Union

from .uncertain_graph import UncertainGraph

PathLike = Union[str, "os.PathLike[str]"]


def write_edge_list(graph: UncertainGraph, path: PathLike) -> None:
    """Write ``graph`` as a probabilistic edge list."""
    with open(path, "w", encoding="utf-8") as handle:
        _write(graph, handle)


def _write(graph: UncertainGraph, handle: IO[str]) -> None:
    kind = "directed" if graph.directed else "undirected"
    handle.write(f"# repro uncertain graph: {kind}\n")
    if graph.name:
        handle.write(f"# name: {graph.name}\n")
    isolated = [u for u in graph.nodes() if graph.degree(u) == 0]
    if isolated:
        handle.write("# isolated: " + " ".join(str(u) for u in isolated) + "\n")
    for u, v, p in graph.edges():
        handle.write(f"{u} {v} {p:.10g}\n")


def read_edge_list(path: PathLike) -> UncertainGraph:
    """Read a probabilistic edge list written by :func:`write_edge_list`.

    Files without the header comment are treated as undirected.
    """
    directed = False
    name = ""
    isolated: Iterable[int] = ()
    edges = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("repro uncertain graph:"):
                    directed = "directed" in body.split(":", 1)[1] and \
                        "undirected" not in body.split(":", 1)[1]
                elif body.startswith("name:"):
                    name = body.split(":", 1)[1].strip()
                elif body.startswith("isolated:"):
                    isolated = [int(x) for x in body.split(":", 1)[1].split()]
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ValueError(f"malformed edge line: {line!r}")
            edges.append((int(parts[0]), int(parts[1]), float(parts[2])))
    graph = UncertainGraph.from_edges(edges, directed=directed, name=name)
    for u in isolated:
        graph.add_node(u)
    return graph
