"""Edge-probability assignment models.

The paper evaluates several ways of attaching probabilities to edges
(§8.1 "Edge probability models"):

* measured link quality (Intel Lab, AS Topology) — simulated here via
  distance decay / snapshot persistence;
* inverse out-degree (LastFM);
* ``1 - exp(-t / mu)`` over an interaction count ``t`` (DBLP, Twitter);
* uniform at random in a range (synthetic datasets);

and several models for probabilities of *new* edges (Table 16): fixed
``zeta``, uniform ranges, and a truncated normal.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .uncertain_graph import UncertainGraph

NewEdgeProbability = Callable[[int, int], float]


def assign_fixed(graph: UncertainGraph, p: float) -> UncertainGraph:
    """Set every edge's probability to ``p`` (in place; returns graph)."""
    for u, v, _ in list(graph.edges()):
        graph.set_probability(u, v, p)
    return graph


def assign_uniform(
    graph: UncertainGraph,
    low: float = 0.0,
    high: float = 0.6,
    seed: int = 0,
) -> UncertainGraph:
    """Uniform probabilities in ``(low, high]`` (the synthetic-data model)."""
    rng = np.random.default_rng(seed)
    for u, v, _ in list(graph.edges()):
        p = float(rng.uniform(low, high))
        graph.set_probability(u, v, max(p, 1e-9))
    return graph


def assign_inverse_out_degree(graph: UncertainGraph) -> UncertainGraph:
    """LastFM model: ``p(u, v) = 1 / out_degree(u)``.

    For undirected graphs the out-degree of the canonical source endpoint
    is used, matching how the paper treats LastFM as undirected.
    """
    for u, v, _ in list(graph.edges()):
        out_deg = max(1, len(graph.successors(u)))
        graph.set_probability(u, v, 1.0 / out_deg)
    return graph


def assign_exponential_counts(
    graph: UncertainGraph,
    mu: float = 20.0,
    mean_count: float = 4.0,
    seed: int = 0,
    counts: Optional[Dict[Tuple[int, int], int]] = None,
) -> UncertainGraph:
    """DBLP/Twitter model: ``p = 1 - exp(-t / mu)`` for a count ``t``.

    When ``counts`` is not supplied, per-edge interaction counts are drawn
    from a geometric distribution with the given mean, mimicking the
    heavy-tailed collaboration/retweet counts of the real datasets.
    """
    rng = np.random.default_rng(seed)
    for u, v, _ in list(graph.edges()):
        if counts is not None:
            t = counts.get((u, v), counts.get((v, u), 1))
        else:
            t = 1 + int(rng.geometric(1.0 / mean_count))
        p = 1.0 - math.exp(-t / mu)
        graph.set_probability(u, v, max(p, 1e-9))
    return graph


def assign_snapshot_frequency(
    graph: UncertainGraph,
    num_snapshots: int = 120,
    persistence_alpha: float = 2.0,
    persistence_beta: float = 5.0,
    seed: int = 0,
) -> UncertainGraph:
    """AS-Topology model: probability = fraction of snapshots with the edge.

    Each edge gets a latent persistence drawn from a Beta distribution and
    its probability is the empirical frequency over ``num_snapshots``
    simulated monthly snapshots — matching how the paper derives AS edge
    probabilities from ten years of monthly BGP snapshots.
    """
    rng = np.random.default_rng(seed)
    for u, v, _ in list(graph.edges()):
        persistence = float(rng.beta(persistence_alpha, persistence_beta))
        observed = int(rng.binomial(num_snapshots, persistence))
        p = max(observed, 1) / num_snapshots
        graph.set_probability(u, v, p)
    return graph


def assign_distance_decay(
    graph: UncertainGraph,
    positions: Dict[int, Tuple[float, float]],
    scale: float = 8.0,
    cutoff: float = 20.0,
    noise: float = 0.05,
    seed: int = 0,
) -> UncertainGraph:
    """Sensor-network model: link quality decays with distance.

    ``p = exp(-dist / scale)`` plus slight noise, zeroed beyond ``cutoff``
    meters (the paper observes Intel-Lab links >20 m have probability
    close to 0 and drops edges with p < 0.1).
    """
    rng = np.random.default_rng(seed)
    for u, v, _ in list(graph.edges()):
        (x1, y1), (x2, y2) = positions[u], positions[v]
        dist = math.hypot(x1 - x2, y1 - y2)
        if dist > cutoff:
            p = 1e-9
        else:
            p = math.exp(-dist / scale) + float(rng.normal(0.0, noise))
        graph.set_probability(u, v, min(max(p, 1e-9), 1.0))
    return graph


# ----------------------------------------------------------------------
# Probability models for *new* (candidate) edges — Table 16.
# ----------------------------------------------------------------------

def fixed_new_edge_probability(zeta: float) -> NewEdgeProbability:
    """Every new edge gets probability ``zeta`` (the default model)."""
    if not 0.0 < zeta <= 1.0:
        raise ValueError(f"zeta must be in (0, 1], got {zeta}")

    def model(u: int, v: int) -> float:
        return zeta

    return model


def uniform_new_edge_probability(
    low: float,
    high: float,
    seed: int = 0,
) -> NewEdgeProbability:
    """New-edge probabilities uniform in ``(low, high)``.

    Deterministic per pair: the draw is keyed by ``(u, v)`` so repeated
    queries about the same candidate edge agree.
    """

    def model(u: int, v: int) -> float:
        pair_seed = (seed * 1_000_003 + u * 92_821 + v * 31) % (2**32)
        rng = np.random.default_rng(pair_seed)
        return float(max(rng.uniform(low, high), 1e-9))

    return model


def normal_new_edge_probability(
    mean: float = 0.5,
    std: float = 0.038,
    seed: int = 0,
) -> NewEdgeProbability:
    """Truncated-normal new-edge probabilities (the paper's N(0.5, 0.038))."""

    def model(u: int, v: int) -> float:
        pair_seed = (seed * 1_000_003 + u * 92_821 + v * 31 + 7) % (2**32)
        rng = np.random.default_rng(pair_seed)
        p = float(rng.normal(mean, std))
        return min(max(p, 1e-9), 1.0)

    return model
