"""Synthetic graph generators (topology only, probabilities added later).

The paper's synthetic evaluation (Table 8) uses four families generated
with NetworkX: Erdős–Rényi random, k-regular, Watts–Strogatz small-world
and Barabási–Albert scale-free.  These are re-implemented here from
scratch so the substrate is self-contained; all take a ``seed`` and are
fully deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from .uncertain_graph import UncertainGraph

_PLACEHOLDER_PROB = 1.0  # topology generators assign probabilities later


def _empty(n: int, directed: bool, name: str) -> UncertainGraph:
    graph = UncertainGraph(directed=directed, name=name)
    for u in range(n):
        graph.add_node(u)
    return graph


def erdos_renyi(
    n: int,
    num_edges: Optional[int] = None,
    p: Optional[float] = None,
    seed: int = 0,
    directed: bool = False,
    name: str = "random",
) -> UncertainGraph:
    """G(n, m) or G(n, p) random graph.

    Exactly one of ``num_edges`` / ``p`` must be given.  The G(n, m)
    variant (used for the paper's *Random 1/2* with a fixed edge count)
    samples distinct node pairs uniformly without replacement.
    """
    if (num_edges is None) == (p is None):
        raise ValueError("provide exactly one of num_edges= or p=")
    rng = np.random.default_rng(seed)
    graph = _empty(n, directed, name)
    if p is not None:
        # G(n, p): geometric skipping over the ~n^2/2 pair sequence.
        max_pairs = n * (n - 1) if directed else n * (n - 1) // 2
        expected = int(max_pairs * p)
        num_edges = int(rng.binomial(max_pairs, p)) if expected < max_pairs else max_pairs
    edges: Set[Tuple[int, int]] = set()
    target = int(num_edges)
    max_pairs = n * (n - 1) if directed else n * (n - 1) // 2
    if target > max_pairs:
        raise ValueError(f"cannot place {target} edges among {max_pairs} pairs")
    while len(edges) < target:
        batch = max(1024, target - len(edges))
        us = rng.integers(0, n, size=batch)
        vs = rng.integers(0, n, size=batch)
        for u, v in zip(us.tolist(), vs.tolist(), strict=True):
            if u == v:
                continue
            key = (u, v) if directed else (min(u, v), max(u, v))
            if key not in edges:
                edges.add(key)
                if len(edges) >= target:
                    break
    for u, v in edges:
        graph.add_edge(u, v, _PLACEHOLDER_PROB)
    return graph


def random_regular(
    n: int,
    degree: int,
    seed: int = 0,
    name: str = "regular",
    max_retries: int = 200,
) -> UncertainGraph:
    """Random d-regular undirected graph via the pairing (stub) model.

    Retries the pairing until a simple matching is found; with
    ``n * degree`` even and ``degree << n`` this succeeds quickly.
    """
    if (n * degree) % 2 != 0:
        raise ValueError("n * degree must be even for a regular graph")
    if degree >= n:
        raise ValueError("degree must be smaller than n")
    rng = np.random.default_rng(seed)
    for _ in range(max_retries):
        edges = _pairing_attempt(rng, n, degree)
        if edges is not None:
            graph = _empty(n, False, name)
            for u, v in edges:
                graph.add_edge(u, v, _PLACEHOLDER_PROB)
            return graph
    raise RuntimeError(
        f"failed to build a simple {degree}-regular graph in {max_retries} tries"
    )


def _pairing_attempt(rng, n: int, degree: int) -> Optional[Set[Tuple[int, int]]]:
    """One stub-matching attempt; unsuitable pairs are reshuffled.

    A raw pairing almost surely contains collisions for degree >~ 4, so
    colliding stubs are returned to the pool and re-paired until either
    all stubs are matched or no progress can be made (restart).
    """
    stubs = np.repeat(np.arange(n), degree)
    edges: Set[Tuple[int, int]] = set()
    while stubs.size:
        stubs = rng.permutation(stubs)
        leftover: List[int] = []
        progress = False
        for u, v in stubs.reshape(-1, 2).tolist():
            key = (min(u, v), max(u, v))
            if u != v and key not in edges:
                edges.add(key)
                progress = True
            else:
                leftover.extend((u, v))
        if not progress:
            return None
        stubs = np.array(leftover, dtype=np.int64)
    return edges


def watts_strogatz(
    n: int,
    k: int,
    beta: float = 0.3,
    seed: int = 0,
    name: str = "smallworld",
) -> UncertainGraph:
    """Watts–Strogatz small-world graph.

    Starts from a ring lattice where every node connects to its ``k``
    nearest neighbors (``k`` rounded up to the next even number of lattice
    links), then rewires each edge's far endpoint with probability
    ``beta``.
    """
    if k >= n:
        raise ValueError("k must be smaller than n")
    rng = np.random.default_rng(seed)
    graph = _empty(n, False, name)
    half = max(1, k // 2)
    edges: Set[Tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, half + 1):
            v = (u + offset) % n
            edges.add((min(u, v), max(u, v)))
    # If k is odd, add one extra "across" link per alternate node so the
    # average degree matches k more closely.
    if k % 2 == 1:
        for u in range(0, n, 2):
            v = (u + half + 1) % n
            if u != v:
                edges.add((min(u, v), max(u, v)))
    rewired: Set[Tuple[int, int]] = set()
    edge_list = sorted(edges)
    for u, v in edge_list:
        if rng.random() < beta:
            for _ in range(10):
                w = int(rng.integers(0, n))
                key = (min(u, w), max(u, w))
                if w != u and key not in rewired and key not in edges:
                    rewired.add(key)
                    break
            else:
                rewired.add((u, v))
        else:
            rewired.add((u, v))
    for u, v in rewired:
        graph.add_edge(u, v, _PLACEHOLDER_PROB)
    return graph


def barabasi_albert(
    n: int,
    m: int = 2,
    seed: int = 0,
    name: str = "scalefree",
    m_schedule: Optional[Sequence[int]] = None,
) -> UncertainGraph:
    """Barabási–Albert preferential-attachment graph.

    ``m_schedule`` lets callers alternate attachment counts per new node
    (the paper alternates m=2 and m=3 for *ScaleFree 1* to hit a target
    edge count); when given, it is cycled over and ``m`` is ignored.
    """
    schedule: List[int] = list(m_schedule) if m_schedule else [m]
    m_max = max(schedule)
    if m_max < 1 or m_max >= n:
        raise ValueError("attachment count must be in [1, n)")
    rng = np.random.default_rng(seed)
    graph = _empty(n, False, name)
    # Seed clique on the first m_max + 1 nodes.
    targets: List[int] = []  # repeated-node list realizes degree weighting
    start = m_max + 1
    for u in range(start):
        for v in range(u + 1, start):
            graph.add_edge(u, v, _PLACEHOLDER_PROB)
            targets.extend((u, v))
    for idx, u in enumerate(range(start, n)):
        mi = schedule[idx % len(schedule)]
        chosen: Set[int] = set()
        while len(chosen) < mi:
            v = targets[int(rng.integers(0, len(targets)))]
            if v != u:
                chosen.add(v)
        for v in chosen:
            graph.add_edge(u, v, _PLACEHOLDER_PROB)
            targets.extend((u, v))
    return graph


def powerlaw_cluster(
    n: int,
    m: int = 2,
    triad_probability: float = 0.5,
    seed: int = 0,
    name: str = "powerlaw-cluster",
) -> UncertainGraph:
    """Holme–Kim powerlaw-cluster graph (BA + triad closure).

    Preferential attachment like Barabási–Albert, but after each
    attachment a triangle is closed with ``triad_probability`` by linking
    to a random neighbor of the last target — yielding scale-free degree
    with the high clustering coefficient social graphs exhibit.
    """
    if m < 1 or m >= n:
        raise ValueError("attachment count must be in [1, n)")
    rng = np.random.default_rng(seed)
    graph = _empty(n, False, name)
    targets: List[int] = []
    start = m + 1
    for u in range(start):
        for v in range(u + 1, start):
            graph.add_edge(u, v, _PLACEHOLDER_PROB)
            targets.extend((u, v))
    for u in range(start, n):
        added: Set[int] = set()
        last_target: Optional[int] = None
        while len(added) < m:
            close_triad = (
                last_target is not None
                and rng.random() < triad_probability
            )
            if close_triad:
                neighbors = [
                    w for w in graph.successors(last_target)
                    if w != u and w not in added
                ]
                if neighbors:
                    v = neighbors[int(rng.integers(0, len(neighbors)))]
                else:
                    close_triad = False
            if not close_triad:
                v = targets[int(rng.integers(0, len(targets)))]
                if v == u or v in added:
                    continue
            graph.add_edge(u, v, _PLACEHOLDER_PROB)
            targets.extend((u, v))
            added.add(v)
            last_target = v
    return graph


def grid_2d(
    rows: int,
    cols: int,
    diagonal: bool = False,
    name: str = "grid",
) -> UncertainGraph:
    """Rectangular grid graph (used by sensor-network fixtures)."""
    graph = _empty(rows * cols, False, name)

    def node(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(node(r, c), node(r, c + 1), _PLACEHOLDER_PROB)
            if r + 1 < rows:
                graph.add_edge(node(r, c), node(r + 1, c), _PLACEHOLDER_PROB)
            if diagonal and r + 1 < rows and c + 1 < cols:
                graph.add_edge(node(r, c), node(r + 1, c + 1), _PLACEHOLDER_PROB)
    return graph


def path_graph(n: int, name: str = "path") -> UncertainGraph:
    """Simple path 0-1-...-(n-1); handy for tests."""
    graph = _empty(n, False, name)
    for u in range(n - 1):
        graph.add_edge(u, u + 1, _PLACEHOLDER_PROB)
    return graph


def node_sampled_subgraph(
    graph: UncertainGraph,
    num_nodes: int,
    seed: int = 0,
) -> UncertainGraph:
    """Uniform node-induced subgraph (the paper's Table 22 scaling knob)."""
    rng = np.random.default_rng(seed)
    nodes = list(graph.nodes())
    if num_nodes >= len(nodes):
        return graph.copy()
    keep = rng.choice(len(nodes), size=num_nodes, replace=False)
    return graph.subgraph(nodes[i] for i in keep.tolist())
