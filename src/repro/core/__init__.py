"""The paper's primary contribution: budgeted reliability maximization."""

from .search_space import (
    CandidateSpace,
    PathInfo,
    PathSet,
    candidate_edges_between,
    eliminate_search_space,
    select_top_l_paths,
    top_r_nodes,
)
from .selection import (
    batch_selection,
    build_path_batches,
    individual_path_selection,
)
from .mrp_improvement import MRPSolution, improve_most_reliable_path
from .probability_budget import (
    BudgetedMRPSolution,
    improve_mrp_with_probability_budget,
)
from .facade import METHODS, ReliabilityMaximizer, Solution
from .multi import (
    AGGREGATES,
    MultiSolution,
    MultiSourceTargetMaximizer,
)

__all__ = [
    "CandidateSpace",
    "PathInfo",
    "PathSet",
    "candidate_edges_between",
    "eliminate_search_space",
    "select_top_l_paths",
    "top_r_nodes",
    "batch_selection",
    "build_path_batches",
    "individual_path_selection",
    "MRPSolution",
    "improve_most_reliable_path",
    "BudgetedMRPSolution",
    "improve_mrp_with_probability_budget",
    "METHODS",
    "ReliabilityMaximizer",
    "Solution",
    "AGGREGATES",
    "MultiSolution",
    "MultiSourceTargetMaximizer",
]
