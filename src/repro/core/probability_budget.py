"""Total-probability-budget reliability maximization (future work, §9).

The paper's conclusion proposes replacing the fixed per-edge probability
``zeta`` with a *total reliability budget*: the solver may both choose
which edges to add and how to split a probability budget ``B`` across
them.  This module implements that extension for the most-reliable-path
objective, where it admits a clean optimal structure:

For a path that uses ``j`` new edges with allocations ``p_1 .. p_j``
summing to ``B``, the path probability is maximized by the *even* split
``p_i = B / j`` (AM-GM: the product of positives with a fixed sum is
maximized when they are equal).  So the optimal solution is found by
running the budget-constrained path search once per ``j`` with red-edge
probability ``min(B / j, 1)`` and keeping the best outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph import UncertainGraph
from ..paths import constrained_most_reliable_paths, most_reliable_path
from ..baselines.common import Edge, ProbEdge, all_missing_edges


@dataclass
class BudgetedMRPSolution:
    """Outcome of probability-budget MRP maximization."""

    edges: List[ProbEdge]
    """New edges with their allocated probabilities (even split)."""

    old_probability: float
    new_probability: float
    path: Optional[List[int]]

    @property
    def improvement(self) -> float:
        """Probability gained on the most reliable path."""
        return self.new_probability - self.old_probability

    @property
    def budget_spent(self) -> float:
        """Total probability allocated to the chosen edges."""
        return sum(p for _, _, p in self.edges)


def improve_mrp_with_probability_budget(
    graph: UncertainGraph,
    source: int,
    target: int,
    max_new_edges: int,
    total_probability: float,
    candidates: Optional[Sequence[Edge]] = None,
    h: Optional[int] = None,
) -> BudgetedMRPSolution:
    """Optimal MRP improvement under a total probability budget.

    Parameters
    ----------
    max_new_edges:
        Upper bound ``k`` on how many new edges may be added.
    total_probability:
        The budget ``B`` split across the chosen edges; each edge's
        probability is capped at 1.

    Notes
    -----
    Optimal for the most-reliable-path objective among even splits,
    which are optimal overall by the AM-GM argument in the module
    docstring.  Runs ``k`` constrained searches — one per possible
    new-edge count.
    """
    if max_new_edges < 1:
        raise ValueError("max_new_edges must be positive")
    if total_probability <= 0.0:
        raise ValueError("total_probability must be positive")
    candidate_pairs = (
        list(candidates) if candidates is not None
        else all_missing_edges(graph, h=h)
    )
    _, old_prob = most_reliable_path(graph, source, target)

    best_prob = old_prob
    best_edges: List[ProbEdge] = []
    best_path: Optional[List[int]] = None
    for j in range(1, max_new_edges + 1):
        per_edge = min(total_probability / j, 1.0)
        if per_edge <= 0.0:
            continue
        red = [(u, v, per_edge) for u, v in candidate_pairs]
        by_count = constrained_most_reliable_paths(
            graph, source, target, j, red
        )
        found = by_count.get(j)
        if found is None or len(found.red_edges) != j:
            continue
        if found.probability > best_prob:
            best_prob = found.probability
            best_edges = [(u, v, per_edge) for u, v in found.red_edges]
            best_path = found.nodes
    if not best_edges:
        blue_path, _ = most_reliable_path(graph, source, target)
        return BudgetedMRPSolution(
            edges=[],
            old_probability=old_prob,
            new_probability=old_prob,
            path=blue_path,
        )
    return BudgetedMRPSolution(
        edges=best_edges,
        old_probability=old_prob,
        new_probability=best_prob,
        path=best_path,
    )
