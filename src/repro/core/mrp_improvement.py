"""Most reliable path improvement (Problem 2, Algorithm 3).

The restricted problem — maximize the probability of the *most reliable
path* rather than the full reliability — is solvable exactly in
polynomial time (Theorem 3).  The layered-graph search of Algorithm 3 is
realized by :func:`repro.paths.constrained_most_reliable_paths`; this
module wraps it into the end-to-end MRP method evaluated throughout the
paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..graph import UncertainGraph
from ..paths import (
    best_improvement,
    constrained_most_reliable_paths,
    most_reliable_path,
)
from ..baselines.common import (
    Edge,
    NewEdgeProbability,
    ProbEdge,
    all_missing_edges,
)


@dataclass
class MRPSolution:
    """Outcome of Algorithm 3."""

    edges: List[ProbEdge]
    """New (red) edges on the improved most reliable path (may be < k)."""

    old_probability: float
    """Probability of the most reliable path before addition."""

    new_probability: float
    """Probability of the most reliable path after adding ``edges``."""

    path: Optional[List[int]]
    """The improved most reliable path (None when no improvement exists)."""

    @property
    def improvement(self) -> float:
        """Probability gained on the most reliable path."""
        return self.new_probability - self.old_probability


def improve_most_reliable_path(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    new_edge_prob: NewEdgeProbability,
    candidates: Optional[Sequence[Edge]] = None,
    h: Optional[int] = None,
) -> MRPSolution:
    """Algorithm 3: the optimal <=k new edges for the MRP objective.

    ``candidates`` restricts the red-edge universe (post-elimination or
    h-hop constrained); ``None`` uses every missing edge, matching the
    unrestricted Problem 2 (quadratic — small graphs only).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if candidates is None:
        candidate_pairs = all_missing_edges(graph, h=h)
    else:
        candidate_pairs = list(candidates)
    red_edges = [(u, v, new_edge_prob(u, v)) for u, v in candidate_pairs]

    _, old_prob = most_reliable_path(graph, source, target)
    by_count = constrained_most_reliable_paths(graph, source, target, k, red_edges)
    best = best_improvement(by_count)
    if best is None or best.probability <= old_prob:
        blue = by_count.get(0)
        return MRPSolution(
            edges=[],
            old_probability=old_prob,
            new_probability=old_prob,
            path=blue.nodes if blue is not None else None,
        )
    prob_lookup = {}
    for u, v, p in red_edges:
        prob_lookup[(u, v)] = p
        if not graph.directed:
            prob_lookup[(v, u)] = p
    chosen = [(u, v, prob_lookup[(u, v)]) for u, v in best.red_edges]
    return MRPSolution(
        edges=chosen,
        old_probability=old_prob,
        new_probability=best.probability,
        path=best.nodes,
    )
