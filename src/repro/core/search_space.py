"""Search-space elimination (Algorithm 4) and top-l path pruning (§5.1).

Step 1 — *reliability-based elimination*: a candidate edge ``(u, v)``
only matters when ``u`` is reasonably reachable from the source and
``v`` reasonably reaches the target; keep the top-``r`` nodes on each
side and take the missing edges between them, reducing the candidate
universe from ``O(n^2)`` to ``O(r^2)``.

Step 2 — *top-l path pruning*: add the surviving candidates to the graph
(probability from the new-edge model), extract the top-``l`` most
reliable s-t paths, and drop every candidate edge that appears on none
of them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from ..paths import top_l_most_reliable_paths
from ..reliability import ReliabilityEstimator
from ..baselines.common import Edge, NewEdgeProbability, ProbEdge


@dataclass
class CandidateSpace:
    """Result of reliability-based search-space elimination."""

    source_side: List[int]
    """Top-r nodes with the highest reliability *from* the source."""

    target_side: List[int]
    """Top-r nodes with the highest reliability *to* the target."""

    edges: List[ProbEdge]
    """Relevant candidate edges ``E+`` with model probabilities."""

    elapsed_seconds: float = 0.0

    def edge_pairs(self) -> List[Edge]:
        """Candidate edges as bare ``(u, v)`` pairs."""
        return [(u, v) for u, v, _ in self.edges]


@dataclass
class PathSet:
    """Top-l most reliable paths with candidate-edge annotations."""

    paths: List["PathInfo"]
    surviving_candidates: List[ProbEdge]
    elapsed_seconds: float = 0.0


@dataclass
class PathInfo:
    """A path plus the candidate edges it would require."""

    nodes: List[int]
    probability: float
    candidate_edges: FrozenSet[Edge]
    existing_edges: Tuple[Edge, ...] = field(default_factory=tuple)


def top_r_nodes(reachability: Dict[int, float], r: int, must_include: int) -> List[int]:
    """Highest-probability nodes, guaranteed to include the anchor node."""
    ranked = sorted(reachability.items(), key=lambda item: (-item[1], item[0]))
    chosen = [node for node, _ in ranked[:r]]
    if must_include not in chosen:
        chosen = [must_include, *chosen[: max(r - 1, 0)]]
    return chosen


def eliminate_search_space(
    graph: UncertainGraph,
    source: int,
    target: int,
    r: int,
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
    h: Optional[int] = None,
    forbidden_nodes: Optional[Set[int]] = None,
) -> CandidateSpace:
    """Algorithm 4: relevant candidate edges for one s-t query.

    Parameters
    ----------
    r:
        Number of relevant nodes kept on each side.
    h:
        Optional hop-distance constraint: a candidate ``(u, v)`` is kept
        only when ``v`` is within ``h`` hops of ``u`` in the input graph.
    forbidden_nodes:
        Nodes that may not be endpoints of new edges (used by the
        influence application to protect its virtual super-source).
    """
    start = time.perf_counter()
    reach_from = estimator.reachability_from(graph, source)
    reach_to = estimator.reachability_to(graph, target)
    c_source = top_r_nodes(reach_from, r, source)
    c_target = top_r_nodes(reach_to, r, target)
    edges = candidate_edges_between(
        graph, c_source, c_target, new_edge_prob, h=h,
        forbidden_nodes=forbidden_nodes,
    )
    elapsed = time.perf_counter() - start
    return CandidateSpace(
        source_side=c_source,
        target_side=c_target,
        edges=edges,
        elapsed_seconds=elapsed,
    )


def candidate_edges_between(
    graph: UncertainGraph,
    source_side: Sequence[int],
    target_side: Sequence[int],
    new_edge_prob: NewEdgeProbability,
    h: Optional[int] = None,
    forbidden_nodes: Optional[Set[int]] = None,
) -> List[ProbEdge]:
    """Missing edges from the source side to the target side.

    Applies the h-hop physical constraint when requested.  For undirected
    graphs edges are canonicalized and de-duplicated.
    """
    forbidden = forbidden_nodes or set()
    target_set = [v for v in target_side if v not in forbidden]
    hop_cache: Dict[int, Set[int]] = {}
    seen: Set[Edge] = set()
    edges: List[ProbEdge] = []
    for u in source_side:
        if u in forbidden:
            continue
        if h is not None:
            if u not in hop_cache:
                hop_cache[u] = graph.within_hops(u, h)
            allowed = hop_cache[u]
        for v in target_set:
            if u == v or graph.has_edge(u, v):
                continue
            if h is not None and v not in allowed:
                continue
            key = (u, v) if graph.directed or u <= v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            edges.append((key[0], key[1], new_edge_prob(key[0], key[1])))
    return edges


def select_top_l_paths(
    graph: UncertainGraph,
    source: int,
    target: int,
    l: int,
    candidates: Sequence[ProbEdge],
) -> PathSet:
    """§5.1.2: top-l most reliable paths in ``G+`` and surviving candidates.

    Candidate edges that appear on none of the l paths are dropped from
    the search space.
    """
    start = time.perf_counter()
    raw_paths = top_l_most_reliable_paths(graph, source, target, l, candidates)
    candidate_keys = {
        ((u, v) if graph.directed or u <= v else (v, u)): p
        for u, v, p in candidates
    }
    infos: List[PathInfo] = []
    used: Set[Edge] = set()
    for nodes, prob in raw_paths:
        cand_on_path: Set[Edge] = set()
        existing: List[Edge] = []
        for a, b in zip(nodes, nodes[1:], strict=False):
            key = (a, b) if graph.directed or a <= b else (b, a)
            if graph.has_edge(a, b):
                existing.append(key)
            elif key in candidate_keys:
                cand_on_path.add(key)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"path edge {key} neither existing nor candidate")
        used |= cand_on_path
        infos.append(
            PathInfo(
                nodes=nodes,
                probability=prob,
                candidate_edges=frozenset(cand_on_path),
                existing_edges=tuple(existing),
            )
        )
    surviving = [
        (u, v, p) for (u, v), p in candidate_keys.items() if (u, v) in used
    ]
    elapsed = time.perf_counter() - start
    return PathSet(paths=infos, surviving_candidates=surviving, elapsed_seconds=elapsed)
