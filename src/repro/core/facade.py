"""Legacy high-level API for single-source-target reliability maximization.

.. deprecated::
    :class:`ReliabilityMaximizer` is kept as a thin back-compat shim.
    New code should use the declarative session API instead::

        from repro.api import Session, MaximizeQuery
        session = Session(graph, r=100, l=30)
        result = session.maximize(MaximizeQuery(s, t, k=10, zeta=0.5))
        result.solution.edges, result.gain

    A session amortizes one CSR compilation and shared evaluation
    worlds across a whole workload; the facade builds a fresh session
    per call and therefore pays those costs every time.

:class:`ReliabilityMaximizer` wires together search-space elimination
(Algorithm 4), top-l path pruning, and any of the paper's selection
methods behind one call:

>>> from repro import ReliabilityMaximizer, datasets
>>> graph = datasets.load("lastfm")                         # doctest: +SKIP
>>> solver = ReliabilityMaximizer(r=100, l=30)              # doctest: +SKIP
>>> solution = solver.maximize(graph, s, t, k=10, zeta=0.5) # doctest: +SKIP
>>> solution.edges, solution.gain                           # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator, make_estimator
from ..baselines.common import NewEdgeProbability, ProbEdge
from .search_space import CandidateSpace, eliminate_search_space

#: Methods accepted by :meth:`ReliabilityMaximizer.maximize` and
#: :class:`repro.api.MaximizeQuery`.
METHODS = (
    "be",           # path-batch edge selection (the paper's method)
    "ip",           # individual path-based edge selection
    "mrp",          # most reliable path improvement (Algorithm 3)
    "hc",           # hill climbing (Algorithm 1)
    "topk",         # individual top-k (§3.1)
    "degree",       # degree-centrality baseline (§3.3)
    "betweenness",  # betweenness-centrality baseline (§3.3)
    "eigen",        # eigenvalue-based baseline (Algorithm 2)
    "random",       # random candidate edges (ablation)
    "exact",        # exhaustive subset enumeration (Table 11)
)


@dataclass
class Solution:
    """Result of one budgeted reliability-maximization run."""

    method: str
    edges: List[ProbEdge]
    base_reliability: float
    new_reliability: float
    elimination_seconds: float = 0.0
    selection_seconds: float = 0.0
    num_candidates: int = 0

    @property
    def gain(self) -> float:
        """Reliability gain achieved by the selected edges."""
        return self.new_reliability - self.base_reliability

    @property
    def total_seconds(self) -> float:
        """End-to-end time: elimination plus selection."""
        return self.elimination_seconds + self.selection_seconds


class ReliabilityMaximizer:
    """End-to-end solver for Problem 1 (single source-target).

    .. deprecated::
        Thin shim over :class:`repro.api.Session` — see the module
        docstring for the replacement.  Each ``maximize`` call builds a
        one-shot session, so nothing is shared across calls.

    Parameters
    ----------
    estimator:
        Sampler used *inside* selection loops (default: RSS with 250
        samples, the paper's converged configuration).
    evaluation_samples / evaluation_seed:
        Monte Carlo configuration used to score the base and final
        reliability of solutions.  Fixed seeds make method comparisons
        paired: every method's gain is measured in the same worlds.
    r, l, h:
        Search-space parameters — top-``r`` relevant nodes per side,
        top-``l`` most reliable paths, optional ``h``-hop constraint on
        new edges.
    """

    def __init__(
        self,
        estimator: Optional[ReliabilityEstimator] = None,
        evaluation_samples: int = 1000,
        evaluation_seed: int = 9_999,
        r: int = 100,
        l: int = 30,
        h: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.estimator = estimator or make_estimator("rss", 250, seed=seed)
        self.evaluation_samples = evaluation_samples
        self.evaluation_seed = evaluation_seed
        self.r = r
        self.l = l
        self.h = h
        self.seed = seed

    def _session(self, graph: UncertainGraph):
        """A one-shot session configured like this solver."""
        from ..api import Session  # local: facade is imported by repro.core

        return Session(
            graph,
            seed=self.seed,
            estimator=self.estimator,
            evaluation_samples=self.evaluation_samples,
            evaluation_seed=self.evaluation_seed,
            r=self.r,
            l=self.l,
            h=self.h,
        )

    # ------------------------------------------------------------------
    def candidates(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        new_edge_prob: NewEdgeProbability,
        forbidden_nodes: Optional[Set[int]] = None,
    ) -> CandidateSpace:
        """Algorithm 4 with this solver's parameters."""
        return eliminate_search_space(
            graph,
            source,
            target,
            r=self.r,
            new_edge_prob=new_edge_prob,
            estimator=self.estimator,
            h=self.h,
            forbidden_nodes=forbidden_nodes,
        )

    def evaluate(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> float:
        """Reliability under the paired evaluation sampler.

        .. deprecated:: use :meth:`repro.api.Session.evaluate`, which
           batches evaluations through the session world cache.
        """
        estimator = make_estimator(
            "mc", self.evaluation_samples, seed=self.evaluation_seed
        )
        return estimator.reliability(
            graph, source, target, list(extra_edges) if extra_edges else None
        )

    def reliability_many(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> List[float]:
        """Batched paired-seed evaluation of many s-t pairs.

        .. deprecated:: use :meth:`repro.api.Session.evaluate_pairs`.

        Returns reliabilities aligned with ``pairs``.  All pairs are
        answered against one compiled plan and one shared world batch
        (see :mod:`repro.engine`).
        """
        return self._session(graph).evaluate_pairs(pairs, extra_edges)

    # ------------------------------------------------------------------
    def maximize(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        k: int,
        zeta: float = 0.5,
        method: str = "be",
        new_edge_prob: Optional[NewEdgeProbability] = None,
        candidate_space: Optional[CandidateSpace] = None,
        eliminate: bool = True,
    ) -> Solution:
        """Select ``k`` new edges with the requested method.

        .. deprecated:: build a :class:`repro.api.Session` and submit a
           :class:`repro.api.MaximizeQuery`; this shim does exactly that
           with a fresh session per call.

        ``candidate_space`` lets callers share one elimination across
        several methods (how the paper's comparison tables are built);
        ``eliminate=False`` reproduces the no-elimination rows of
        Table 4 by using every missing edge (h-hop constrained when the
        solver has ``h`` set).
        """
        from ..api import MaximizeQuery

        query = MaximizeQuery(
            source,
            target,
            k=k,
            zeta=zeta,
            method=method,
            new_edge_prob=new_edge_prob,
            candidate_space=candidate_space,
            eliminate=eliminate,
        )
        return self._session(graph).maximize(query).solution
