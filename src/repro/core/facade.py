"""High-level API for single-source-target reliability maximization.

:class:`ReliabilityMaximizer` wires together search-space elimination
(Algorithm 4), top-l path pruning, and any of the paper's selection
methods behind one call:

>>> from repro import ReliabilityMaximizer, datasets
>>> graph = datasets.load("lastfm")                         # doctest: +SKIP
>>> solver = ReliabilityMaximizer(r=100, l=30)              # doctest: +SKIP
>>> solution = solver.maximize(graph, s, t, k=10, zeta=0.5) # doctest: +SKIP
>>> solution.edges, solution.gain                           # doctest: +SKIP
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph, fixed_new_edge_probability
from ..reliability import (
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    ReliabilityEstimator,
)
from ..baselines import (
    all_missing_edges,
    betweenness_centrality_selection,
    degree_centrality_selection,
    eigenvalue_selection,
    exact_solution,
    hill_climbing,
    individual_top_k,
    random_selection,
)
from ..baselines.common import NewEdgeProbability, ProbEdge
from .search_space import (
    CandidateSpace,
    eliminate_search_space,
    select_top_l_paths,
)
from .selection import batch_selection, individual_path_selection
from .mrp_improvement import improve_most_reliable_path

#: Methods accepted by :meth:`ReliabilityMaximizer.maximize`.
METHODS = (
    "be",           # path-batch edge selection (the paper's method)
    "ip",           # individual path-based edge selection
    "mrp",          # most reliable path improvement (Algorithm 3)
    "hc",           # hill climbing (Algorithm 1)
    "topk",         # individual top-k (§3.1)
    "degree",       # degree-centrality baseline (§3.3)
    "betweenness",  # betweenness-centrality baseline (§3.3)
    "eigen",        # eigenvalue-based baseline (Algorithm 2)
    "random",       # random candidate edges (ablation)
    "exact",        # exhaustive subset enumeration (Table 11)
)


@dataclass
class Solution:
    """Result of one budgeted reliability-maximization run."""

    method: str
    edges: List[ProbEdge]
    base_reliability: float
    new_reliability: float
    elimination_seconds: float = 0.0
    selection_seconds: float = 0.0
    num_candidates: int = 0

    @property
    def gain(self) -> float:
        """Reliability gain achieved by the selected edges."""
        return self.new_reliability - self.base_reliability

    @property
    def total_seconds(self) -> float:
        """End-to-end time: elimination plus selection."""
        return self.elimination_seconds + self.selection_seconds


class ReliabilityMaximizer:
    """End-to-end solver for Problem 1 (single source-target).

    Parameters
    ----------
    estimator:
        Sampler used *inside* selection loops (default: RSS with 250
        samples, the paper's converged configuration).
    evaluation_samples / evaluation_seed:
        Monte Carlo configuration used to score the base and final
        reliability of solutions.  Fixed seeds make method comparisons
        paired: every method's gain is measured in the same worlds.
    r, l, h:
        Search-space parameters — top-``r`` relevant nodes per side,
        top-``l`` most reliable paths, optional ``h``-hop constraint on
        new edges.
    """

    def __init__(
        self,
        estimator: Optional[ReliabilityEstimator] = None,
        evaluation_samples: int = 1000,
        evaluation_seed: int = 9_999,
        r: int = 100,
        l: int = 30,
        h: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.estimator = estimator or RecursiveStratifiedSampler(
            num_samples=250, seed=seed
        )
        self.evaluation_samples = evaluation_samples
        self.evaluation_seed = evaluation_seed
        self.r = r
        self.l = l
        self.h = h
        self.seed = seed

    # ------------------------------------------------------------------
    def candidates(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        new_edge_prob: NewEdgeProbability,
        forbidden_nodes: Optional[Set[int]] = None,
    ) -> CandidateSpace:
        """Algorithm 4 with this solver's parameters."""
        return eliminate_search_space(
            graph,
            source,
            target,
            r=self.r,
            new_edge_prob=new_edge_prob,
            estimator=self.estimator,
            h=self.h,
            forbidden_nodes=forbidden_nodes,
        )

    def evaluate(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> float:
        """Reliability under the paired evaluation sampler."""
        estimator = MonteCarloEstimator(
            self.evaluation_samples, seed=self.evaluation_seed
        )
        return estimator.reliability(
            graph, source, target, list(extra_edges) if extra_edges else None
        )

    def reliability_many(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> List[float]:
        """Batched paired-seed evaluation of many s-t pairs.

        Returns reliabilities aligned with ``pairs``.  All pairs are
        answered against one compiled plan and one shared world batch
        (see :mod:`repro.engine`), so scoring thousands of pairs costs
        roughly one single-pair evaluation plus a cheap per-pair reduce
        — the entry point multi-source/selection loops should use.
        """
        estimator = MonteCarloEstimator(
            self.evaluation_samples, seed=self.evaluation_seed
        )
        return estimator.reliability_many(
            graph, list(pairs), list(extra_edges) if extra_edges else None
        )

    # ------------------------------------------------------------------
    def maximize(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        k: int,
        zeta: float = 0.5,
        method: str = "be",
        new_edge_prob: Optional[NewEdgeProbability] = None,
        candidate_space: Optional[CandidateSpace] = None,
        eliminate: bool = True,
    ) -> Solution:
        """Select ``k`` new edges with the requested method.

        ``candidate_space`` lets callers share one elimination across
        several methods (how the paper's comparison tables are built);
        ``eliminate=False`` reproduces the no-elimination rows of
        Table 4 by using every missing edge (h-hop constrained when the
        solver has ``h`` set).
        """
        if method not in METHODS:
            raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
        if k < 1:
            raise ValueError("k must be positive")
        prob_model = new_edge_prob or fixed_new_edge_probability(zeta)

        elimination_seconds = 0.0
        if candidate_space is not None:
            space = candidate_space
            elimination_seconds = space.elapsed_seconds
        elif eliminate and method not in ("degree", "betweenness", "eigen"):
            space = self.candidates(graph, source, target, prob_model)
            elimination_seconds = space.elapsed_seconds
        elif eliminate:
            # Centrality/eigen baselines still benefit from elimination
            # (Table 5): restrict them to the relevant candidate set.
            space = self.candidates(graph, source, target, prob_model)
            elimination_seconds = space.elapsed_seconds
        else:
            start = time.perf_counter()
            pairs = all_missing_edges(graph, h=self.h)
            space = CandidateSpace(
                source_side=[],
                target_side=[],
                edges=[(u, v, prob_model(u, v)) for u, v in pairs],
                elapsed_seconds=time.perf_counter() - start,
            )
            elimination_seconds = space.elapsed_seconds

        start = time.perf_counter()
        edges = self._dispatch(
            graph, source, target, k, method, prob_model, space, eliminate
        )
        selection_seconds = time.perf_counter() - start

        base = self.evaluate(graph, source, target)
        new = self.evaluate(graph, source, target, edges) if edges else base
        return Solution(
            method=method,
            edges=edges,
            base_reliability=base,
            new_reliability=new,
            elimination_seconds=elimination_seconds,
            selection_seconds=selection_seconds,
            num_candidates=len(space.edges),
        )

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        k: int,
        method: str,
        prob_model: NewEdgeProbability,
        space: CandidateSpace,
        eliminated: bool,
    ) -> List[ProbEdge]:
        pairs = space.edge_pairs()
        if method in ("be", "ip"):
            path_set = select_top_l_paths(graph, source, target, self.l, space.edges)
            if method == "be":
                return batch_selection(
                    graph, source, target, k, path_set, self.estimator
                )
            return individual_path_selection(
                graph, source, target, k, path_set, self.estimator
            )
        if method == "mrp":
            return improve_most_reliable_path(
                graph, source, target, k, prob_model, candidates=pairs
            ).edges
        if method == "hc":
            return hill_climbing(
                graph, source, target, k, pairs, prob_model, self.estimator
            )
        if method == "topk":
            return individual_top_k(
                graph, source, target, k, pairs, prob_model, self.estimator
            )
        if method == "degree":
            return degree_centrality_selection(
                graph, k, prob_model, candidates=pairs if eliminated else None
            )
        if method == "betweenness":
            return betweenness_centrality_selection(
                graph, k, prob_model,
                candidates=pairs if eliminated else None,
                seed=self.seed,
            )
        if method == "eigen":
            return eigenvalue_selection(
                graph, k, prob_model,
                candidates=pairs if eliminated else None,
                seed=self.seed,
            )
        if method == "random":
            return random_selection(pairs, k, prob_model, seed=self.seed)
        if method == "exact":
            return exact_solution(
                graph, source, target, k, pairs, prob_model, self.estimator
            )
        raise AssertionError(f"unhandled method {method!r}")  # pragma: no cover
