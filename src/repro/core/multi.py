"""Multiple-source-target reliability maximization (Problem 4, §6).

Three aggregate objectives over all ``(s, t)`` pairs in ``S x T``:

* **average** (§6.1) — one global batch selection over the union of all
  pairs' top-l paths, scoring batches by average-reliability gain;
* **minimum** (§6.2) — repeatedly improve the currently-weakest pair
  with a ``k1``-edge installment of the single-pair solver;
* **maximum** (§6.3) — the same loop aimed at the currently-strongest
  pair.

All three share Algorithm 4's elimination (run per source / per target)
and the path-batch machinery of §5.2.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph, fixed_new_edge_probability
from ..reliability import ReliabilityEstimator, make_estimator
from ..baselines.common import Edge, NewEdgeProbability, ProbEdge
from .search_space import (
    CandidateSpace,
    PathInfo,
    candidate_edges_between,
    select_top_l_paths,
    top_r_nodes,
)
from .selection import build_path_batches
from .facade import ReliabilityMaximizer

AGGREGATES = ("average", "minimum", "maximum")
_ALIASES = {"avg": "average", "min": "minimum", "max": "maximum"}

Pair = Tuple[int, int]


@dataclass
class MultiSolution:
    """Result of a multi-source-target run."""

    aggregate: str
    edges: List[ProbEdge]
    base_value: float
    new_value: float
    pair_base: Dict[Pair, float] = field(default_factory=dict)
    pair_new: Dict[Pair, float] = field(default_factory=dict)
    elimination_seconds: float = 0.0
    selection_seconds: float = 0.0

    @property
    def gain(self) -> float:
        """Improvement of the aggregate objective."""
        return self.new_value - self.base_value


def _normalize_aggregate(aggregate: str) -> str:
    aggregate = _ALIASES.get(aggregate, aggregate)
    if aggregate not in AGGREGATES:
        raise ValueError(
            f"unknown aggregate {aggregate!r}; expected one of {AGGREGATES}"
        )
    return aggregate


def _aggregate_value(values: Dict[Pair, float], aggregate: str) -> float:
    if not values:
        return 0.0
    if aggregate == "average":
        return sum(values.values()) / len(values)
    if aggregate == "minimum":
        return min(values.values())
    return max(values.values())


class MultiSourceTargetMaximizer:
    """Solver for Problem 4 under average / minimum / maximum aggregates.

    Parameters mirror :class:`ReliabilityMaximizer`; ``k1`` is the
    per-round installment for the min/max strategies (the paper's
    default is ``k1 = 10% of k``).
    """

    def __init__(
        self,
        estimator: Optional[ReliabilityEstimator] = None,
        evaluation_samples: int = 500,
        evaluation_seed: int = 9_999,
        r: int = 100,
        l: int = 30,
        h: Optional[int] = None,
        k1_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        self.estimator = estimator or make_estimator("rss", 250, seed=seed)
        self.evaluation_samples = evaluation_samples
        self.evaluation_seed = evaluation_seed
        self.r = r
        self.l = l
        self.h = h
        self.k1_fraction = k1_fraction
        self.seed = seed

    # ------------------------------------------------------------------
    def evaluate_pairs(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Pair],
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> Dict[Pair, float]:
        """Paired-seed evaluation of every pair's reliability.

        Goes through the batched ``reliability_many`` entry point, so
        one compiled plan and one shared world batch are amortized
        across the whole ``S x T`` workload.
        """
        pairs = list(pairs)
        estimator = make_estimator(
            "mc", self.evaluation_samples, seed=self.evaluation_seed
        )
        values = estimator.reliability_many(
            graph, pairs, list(extra_edges) if extra_edges else None
        )
        return dict(zip(pairs, values, strict=True))

    def candidate_space(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        targets: Sequence[int],
        new_edge_prob: NewEdgeProbability,
        forbidden_nodes: Optional[Set[int]] = None,
    ) -> CandidateSpace:
        """Union-of-sides elimination (§6.1): C(s) over S and C(t) over T."""
        start = time.perf_counter()
        source_side: Dict[int, float] = {}
        for s in sources:
            for node, value in self.estimator.reachability_from(graph, s).items():
                if value > source_side.get(node, 0.0):
                    source_side[node] = value
        target_side: Dict[int, float] = {}
        for t in targets:
            for node, value in self.estimator.reachability_to(graph, t).items():
                if value > target_side.get(node, 0.0):
                    target_side[node] = value
        c_source: List[int] = []
        for s in sources:
            c_source.extend(top_r_nodes(source_side, self.r, s))
        c_target: List[int] = []
        for t in targets:
            c_target.extend(top_r_nodes(target_side, self.r, t))
        c_source = list(dict.fromkeys(c_source))
        c_target = list(dict.fromkeys(c_target))
        edges = candidate_edges_between(
            graph, c_source, c_target, new_edge_prob, h=self.h,
            forbidden_nodes=forbidden_nodes,
        )
        return CandidateSpace(
            source_side=c_source,
            target_side=c_target,
            edges=edges,
            elapsed_seconds=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------
    def maximize(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        targets: Sequence[int],
        k: int,
        zeta: float = 0.5,
        aggregate: str = "average",
        new_edge_prob: Optional[NewEdgeProbability] = None,
        forbidden_nodes: Optional[Set[int]] = None,
    ) -> MultiSolution:
        """Problem 4: top-k edges maximizing the aggregate reliability."""
        aggregate = _normalize_aggregate(aggregate)
        if k < 1:
            raise ValueError("k must be positive")
        if not sources or not targets:
            raise ValueError("sources and targets must be non-empty")
        prob_model = new_edge_prob or fixed_new_edge_probability(zeta)
        pairs = [(s, t) for s in sources for t in targets if s != t]
        if not pairs:
            raise ValueError("S x T contains only trivial pairs (s == t)")

        if aggregate == "average":
            return self._maximize_average(
                graph, sources, targets, pairs, k, prob_model, forbidden_nodes
            )
        return self._maximize_extreme(
            graph, pairs, k, prob_model, aggregate, forbidden_nodes
        )

    # ------------------------------------------------------------------
    def _maximize_average(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        targets: Sequence[int],
        pairs: List[Pair],
        k: int,
        prob_model: NewEdgeProbability,
        forbidden_nodes: Optional[Set[int]],
    ) -> MultiSolution:
        space = self.candidate_space(
            graph, sources, targets, prob_model, forbidden_nodes
        )
        start = time.perf_counter()
        # Top-l paths per pair, merged into one labeled pool.
        pair_paths: Dict[Pair, List[PathInfo]] = {}
        candidate_probs: Dict[Edge, float] = {}
        for s, t in pairs:
            path_set = select_top_l_paths(graph, s, t, self.l, space.edges)
            pair_paths[(s, t)] = path_set.paths
            for u, v, p in path_set.surviving_candidates:
                candidate_probs[(u, v)] = p
        edges = self._batch_select_pairs(
            graph, pairs, pair_paths, candidate_probs, k
        )
        selection_seconds = time.perf_counter() - start

        pair_base = self.evaluate_pairs(graph, pairs)
        pair_new = self.evaluate_pairs(graph, pairs, edges) if edges else pair_base
        return MultiSolution(
            aggregate="average",
            edges=edges,
            base_value=_aggregate_value(pair_base, "average"),
            new_value=_aggregate_value(pair_new, "average"),
            pair_base=pair_base,
            pair_new=pair_new,
            elimination_seconds=space.elapsed_seconds,
            selection_seconds=selection_seconds,
        )

    def _batch_select_pairs(
        self,
        graph: UncertainGraph,
        pairs: List[Pair],
        pair_paths: Dict[Pair, List[PathInfo]],
        candidate_probs: Dict[Edge, float],
        k: int,
    ) -> List[ProbEdge]:
        """§6.1's batch greedy with the average-reliability objective."""
        all_paths = [p for paths in pair_paths.values() for p in paths]
        path_pair: Dict[int, Pair] = {}
        for pair, paths in pair_paths.items():
            for p in paths:
                path_pair[id(p)] = pair
        batches = build_path_batches(all_paths)

        chosen: List[PathInfo] = list(batches.pop(frozenset(), []))
        selected: Set[Edge] = set()

        def value_of(paths: List[PathInfo]) -> float:
            if not paths:
                return 0.0
            per_pair: Dict[Pair, List[PathInfo]] = {}
            for p in paths:
                per_pair.setdefault(path_pair[id(p)], []).append(p)
            existing: Set[Edge] = set()
            needed: Set[Edge] = set()
            for p in paths:
                existing.update(p.existing_edges)
                needed.update(p.candidate_edges)
            sub = graph.edge_subgraph(existing)
            overlay = [(u, v, candidate_probs[(u, v)]) for u, v in needed]
            total = 0.0
            for s, t in pairs:
                sub.add_node(s)
                sub.add_node(t)
            values = self.estimator.pair_reliabilities(
                sub, [p for p in pairs if per_pair.get(p)], overlay
            )
            total = sum(values.values())
            return total / len(pairs)

        current = value_of(chosen)
        while len(selected) < k and batches:
            free = [label for label in batches if label <= selected]
            for label in free:
                chosen.extend(batches.pop(label))
            if free:
                current = value_of(chosen)
            best_label: Optional[FrozenSet[Edge]] = None
            best_norm = float("-inf")
            best_value = current
            best_activated: List[FrozenSet[Edge]] = []
            for label in batches:
                new_edges = label - selected
                if not new_edges or len(selected) + len(new_edges) > k:
                    continue
                would_have = selected | new_edges
                activated = [
                    other for other in batches
                    if other != label and other <= would_have
                ]
                trial = list(chosen) + list(batches[label])
                for other in activated:
                    trial.extend(batches[other])
                value = value_of(trial)
                norm = (value - current) / len(new_edges)
                if norm > best_norm:
                    best_norm, best_label = norm, label
                    best_value, best_activated = value, activated
            if best_label is None:
                break
            selected |= best_label
            chosen.extend(batches.pop(best_label))
            for other in best_activated:
                chosen.extend(batches.pop(other))
            current = best_value
        return [(u, v, candidate_probs[(u, v)]) for u, v in sorted(selected)]

    # ------------------------------------------------------------------
    def _maximize_extreme(
        self,
        graph: UncertainGraph,
        pairs: List[Pair],
        k: int,
        prob_model: NewEdgeProbability,
        aggregate: str,
        forbidden_nodes: Optional[Set[int]],
    ) -> MultiSolution:
        """§6.2 / §6.3: k1-installment improvement of the extreme pair."""
        k1 = max(1, int(round(k * self.k1_fraction)))
        pick_min = aggregate == "minimum"

        elimination_seconds = 0.0
        start = time.perf_counter()
        working = graph.copy()
        added: List[ProbEdge] = []
        saturated: Set[Pair] = set()

        pair_values = self.estimator.pair_reliabilities(working, pairs)
        single = ReliabilityMaximizer(
            estimator=self.estimator,
            evaluation_samples=self.evaluation_samples,
            evaluation_seed=self.evaluation_seed,
            r=self.r,
            l=self.l,
            h=self.h,
            seed=self.seed,
        )
        while len(added) < k:
            active = {p: v for p, v in pair_values.items() if p not in saturated}
            if not active:
                break
            chooser = min if pick_min else max
            pair = chooser(active, key=lambda p: (active[p], p))
            budget = min(k1, k - len(added))
            space = single.candidates(
                working, pair[0], pair[1], prob_model,
                forbidden_nodes=forbidden_nodes,
            )
            elimination_seconds += space.elapsed_seconds
            solution = single.maximize(
                working, pair[0], pair[1], budget,
                method="be",
                new_edge_prob=prob_model,
                candidate_space=space,
            )
            if not solution.edges:
                saturated.add(pair)
                continue
            for u, v, p in solution.edges:
                working.add_edge(u, v, p)
                added.append((u, v, p))
            saturated.clear()
            pair_values = self.estimator.pair_reliabilities(working, pairs)
        selection_seconds = time.perf_counter() - start - elimination_seconds

        pair_base = self.evaluate_pairs(graph, pairs)
        pair_new = self.evaluate_pairs(graph, pairs, added) if added else pair_base
        return MultiSolution(
            aggregate=aggregate,
            edges=added,
            base_value=_aggregate_value(pair_base, aggregate),
            new_value=_aggregate_value(pair_new, aggregate),
            pair_base=pair_base,
            pair_new=pair_new,
            elimination_seconds=elimination_seconds,
            selection_seconds=max(selection_seconds, 0.0),
        )
