"""Top-k edge selection along most reliable paths (§5.2).

Two selectors over the pruned path set:

* :func:`individual_path_selection` (IP, Algorithm 5) — greedily include
  whole paths, one per round, maximizing the reliability of the subgraph
  induced by the chosen paths.
* :func:`batch_selection` (BE, Algorithm 6 + §5.2.2) — group paths that
  need the same candidate edges into *batches*, include one batch per
  round, score batches by marginal gain **normalized by the number of
  genuinely new edges**, and activate for free every batch whose
  candidate edges are already covered.  BE is the paper's ultimate
  method.

Both evaluate reliability only on the small subgraph induced by the
selected paths (Problem 3's objective ``R(s, t, P1)``), which is what
makes them orders of magnitude faster than hill climbing.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from ..baselines.common import Edge, ProbEdge
from .search_space import PathInfo, PathSet


def _evaluate_path_set(
    graph: UncertainGraph,
    source: int,
    target: int,
    paths: Sequence[PathInfo],
    candidate_probs: Dict[Edge, float],
    estimator: ReliabilityEstimator,
) -> float:
    """``R(s, t, P1)`` — reliability on the subgraph induced by ``paths``."""
    if not paths:
        return 0.0
    existing: Set[Edge] = set()
    needed: Set[Edge] = set()
    for path in paths:
        existing.update(path.existing_edges)
        needed.update(path.candidate_edges)
    sub = graph.edge_subgraph(existing)
    sub.add_node(source)
    sub.add_node(target)
    overlay = [(u, v, candidate_probs[(u, v)]) for u, v in needed]
    return estimator.reliability(sub, source, target, overlay)


def individual_path_selection(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    path_set: PathSet,
    estimator: ReliabilityEstimator,
) -> List[ProbEdge]:
    """Algorithm 5: greedy per-path inclusion under the k-edge budget."""
    if k < 1:
        raise ValueError("k must be positive")
    candidate_probs = {(u, v): p for u, v, p in path_set.surviving_candidates}
    chosen: List[PathInfo] = [p for p in path_set.paths if not p.candidate_edges]
    remaining: List[PathInfo] = [p for p in path_set.paths if p.candidate_edges]
    selected_edges: Set[Edge] = set()

    while len(selected_edges) < k and remaining:
        best_path: Optional[PathInfo] = None
        best_value = -1.0
        for path in remaining:
            if len(selected_edges | path.candidate_edges) > k:
                continue
            value = _evaluate_path_set(
                graph, source, target, [*chosen, path], candidate_probs, estimator
            )
            if value > best_value:
                best_value = value
                best_path = path
        if best_path is None:
            break
        chosen.append(best_path)
        selected_edges |= best_path.candidate_edges
        remaining = [
            p for p in remaining
            if p is not best_path
            and len(selected_edges | p.candidate_edges) <= k
        ]
    return [(u, v, candidate_probs[(u, v)]) for u, v in sorted(selected_edges)]


def build_path_batches(paths: Sequence[PathInfo]) -> Dict[FrozenSet[Edge], List[PathInfo]]:
    """Algorithm 6: group paths by their candidate-edge label."""
    batches: Dict[FrozenSet[Edge], List[PathInfo]] = {}
    for path in paths:
        batches.setdefault(path.candidate_edges, []).append(path)
    return batches


def batch_selection(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    path_set: PathSet,
    estimator: ReliabilityEstimator,
    normalize: bool = True,
) -> List[ProbEdge]:
    """BE (§5.2.2): batch-at-a-time greedy with per-new-edge normalization.

    Every round evaluates each feasible batch *together with* all batches
    it would activate (label a subset of the would-be selected edges) and
    includes the batch with the best normalized marginal gain.
    ``normalize=False`` disables the per-new-edge normalization (ablation:
    reverts the scoring to Example 3's "raw gain" variant, which prefers
    the individually-best path batch).
    """
    if k < 1:
        raise ValueError("k must be positive")
    candidate_probs = {(u, v): p for u, v, p in path_set.surviving_candidates}
    batches = build_path_batches(path_set.paths)

    chosen: List[PathInfo] = list(batches.pop(frozenset(), []))
    selected_edges: Set[Edge] = set()
    current_value = _evaluate_path_set(
        graph, source, target, chosen, candidate_probs, estimator
    )

    while len(selected_edges) < k and batches:
        # Batches already fully covered by selected edges come for free.
        free_labels = [
            label for label in batches if label <= selected_edges
        ]
        for label in free_labels:
            chosen.extend(batches.pop(label))
        if free_labels:
            current_value = _evaluate_path_set(
                graph, source, target, chosen, candidate_probs, estimator
            )
        best_label: Optional[FrozenSet[Edge]] = None
        best_norm_gain = float("-inf")
        best_value = current_value
        best_activated: List[FrozenSet[Edge]] = []
        for label in batches:
            new_edges = label - selected_edges
            if not new_edges or len(selected_edges) + len(new_edges) > k:
                continue
            would_have = selected_edges | new_edges
            activated = [
                other for other in batches
                if other != label and other <= would_have
            ]
            trial_paths = list(chosen) + list(batches[label])
            for other in activated:
                trial_paths.extend(batches[other])
            value = _evaluate_path_set(
                graph, source, target, trial_paths, candidate_probs, estimator
            )
            divisor = len(new_edges) if normalize else 1
            norm_gain = (value - current_value) / divisor
            if norm_gain > best_norm_gain:
                best_norm_gain = norm_gain
                best_label = label
                best_value = value
                best_activated = activated
        if best_label is None:
            break
        selected_edges |= best_label
        chosen.extend(batches.pop(best_label))
        for other in best_activated:
            chosen.extend(batches.pop(other))
        current_value = best_value
    return [(u, v, candidate_probs[(u, v)]) for u, v in sorted(selected_edges)]
