"""repro — Reliability Maximization in Uncertain Graphs.

A pure-Python reproduction of Ke, Khan, Al Hasan & Rezvansangsari,
"Reliability Maximization in Uncertain Graphs" (ICDE 2021 / TKDE;
arXiv:1903.08587): add ``k`` shortcut edges to an uncertain graph to
maximize s-t reliability.

Quickstart
----------
>>> from repro import UncertainGraph, Session, MaximizeQuery
>>> g = UncertainGraph()
>>> g.add_edge(0, 1, 0.8); g.add_edge(1, 2, 0.5); g.add_edge(2, 3, 0.7)
>>> session = Session(g, r=10, l=10)
>>> result = session.maximize(MaximizeQuery(0, 3, k=1, zeta=0.5))
>>> len(result.edges)
1
>>> round(session.reliability(0, target=3, samples=4000).value, 1)
0.3

(The legacy ``ReliabilityMaximizer`` facade still works as a thin shim
over a per-call session.)

Subpackages
-----------
``repro.api``
    Declarative query/session layer: ``Session``, ``Workload``,
    ``ReliabilityQuery``/``MaximizeQuery``, structured results.
``repro.serve``
    Async serving: request-coalescing ``AsyncSession`` and the
    stdlib HTTP endpoint (``repro serve``).
``repro.graph``
    Uncertain-graph substrate, generators, probability models.
``repro.reliability``
    Exact / Monte Carlo / RSS / lazy-propagation estimators.
``repro.paths``
    Most reliable path, top-l paths, budget-constrained search.
``repro.baselines``
    Individual top-k, hill climbing, centrality, eigenvalue, ESSSP,
    IMA, exhaustive exact solution.
``repro.core``
    The paper's method: search-space elimination + path-batch selection;
    Problems 1-4 solvers.
``repro.influence``
    Independent-cascade influence application.
``repro.datasets`` / ``repro.queries`` / ``repro.experiments``
    Evaluation substrate.
"""

from .graph import UncertainGraph
from .reliability import (
    ExactEstimator,
    LazyPropagationEstimator,
    MonteCarloEstimator,
    RecursiveStratifiedSampler,
    ReliabilityEstimator,
    exact_reliability,
)
from .paths import most_reliable_path, top_l_most_reliable_paths
from .core import (
    METHODS,
    MultiSolution,
    MultiSourceTargetMaximizer,
    ReliabilityMaximizer,
    Solution,
    improve_most_reliable_path,
)
from .influence import influence_spread, maximize_targeted_influence
from .reliability import make_estimator
from .api import MaximizeQuery, ReliabilityQuery, Session, Workload
from . import api, baselines, datasets, experiments, graph, influence, paths, queries, reliability

__version__ = "1.0.0"

__all__ = [
    "UncertainGraph",
    "ExactEstimator",
    "LazyPropagationEstimator",
    "MonteCarloEstimator",
    "RecursiveStratifiedSampler",
    "ReliabilityEstimator",
    "exact_reliability",
    "most_reliable_path",
    "top_l_most_reliable_paths",
    "METHODS",
    "MultiSolution",
    "MultiSourceTargetMaximizer",
    "ReliabilityMaximizer",
    "Solution",
    "improve_most_reliable_path",
    "influence_spread",
    "maximize_targeted_influence",
    "make_estimator",
    "MaximizeQuery",
    "ReliabilityQuery",
    "Session",
    "Workload",
    "api",
    "baselines",
    "datasets",
    "experiments",
    "graph",
    "influence",
    "paths",
    "queries",
    "reliability",
    "__version__",
]
