"""Micro-batching asyncio facade over :class:`repro.api.Session`.

A :class:`Session` already makes *whole-workload* execution the cheap
unit of work: one compiled plan, one coin-flip pass, one fused sweep
group per ``(estimator, Z, seed)``.  What a server needs on top is
**request coalescing** — concurrently arriving single-query requests
should be folded into one workload so they share that amortized cost.

:class:`AsyncSession` is that coalescer.  Awaiting callers submit
individual queries; the session collects them for up to ``max_wait_ms``
(or until ``max_batch`` queries are pending), executes the collected
batch as **one** ``Session.run`` workload on a single worker thread,
and fans the results back to the awaiting callers.  Because execution
goes through the ordinary session path, coalesced responses are
bit-for-bit identical to one-off ``Session.run`` calls with the same
configuration — the property ``tests/test_serve_async.py`` and
``benchmarks/bench_serve_async.py`` pin down.

Concurrency model
-----------------
All coalescer state is touched only from the event-loop thread; the
blocking ``Session.run`` happens on a dedicated single-thread executor,
so session caches (compiled plan, world batches) are only ever accessed
by one thread at a time.  Graph hot-swaps (:meth:`AsyncSession.swap_graph`)
run on the same executor and therefore serialize with in-flight batches:
a batch sees either the old graph or the new one, never a mix.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from types import TracebackType
from typing import Any, List, Optional, Sequence, Tuple, Type, Union

from ..api import DeltaReport, GraphDelta, Query, Session, Workload
from ..api.queries import MaximizeQuery, ReliabilityQuery
from ..api.results import MaximizeResult, ReliabilityResult
from ..faults import fault_point
from ..graph import UncertainGraph

Result = Union[ReliabilityResult, MaximizeResult]

#: Default coalescing window in milliseconds — long enough to collect a
#: burst of concurrent requests, short enough to stay invisible next to
#: sampling cost.
DEFAULT_MAX_WAIT_MS = 2.0

#: Default batch-size cap: a full batch flushes immediately instead of
#: waiting out the window.
DEFAULT_MAX_BATCH = 64


class SessionClosedError(RuntimeError):
    """Submitted to an :class:`AsyncSession` that is (or went) closed.

    Raised both at submission time and for requests caught mid-close by
    the submit/close race: a query whose batch can no longer reach the
    worker fails fast with this instead of hanging.  HTTP maps it to
    503.  Subclasses ``RuntimeError`` for backward compatibility with
    callers that caught the old untyped error.
    """


class OverloadedError(RuntimeError):
    """Admission control shed this request: too many pending queries.

    Raised by :meth:`AsyncSession.submit` when ``max_pending`` queries
    are already waiting or executing.  The request never entered a
    batch; retrying after a short backoff is safe (HTTP maps this to
    503 with a ``Retry-After`` header).
    """


class DeadlineExceededError(TimeoutError):
    """The request's ``deadline_ms`` expired before its batch started.

    Deadlines are enforced at flush time: an expired query is failed
    with this error *instead of* entering the shared workload, so its
    batch companions pay nothing for it and their results are
    bit-for-bit unchanged.  HTTP maps it to 504.
    """


@dataclass
class CoalescerStats:
    """Counters describing how requests were batched.

    Attributes
    ----------
    requests : int
        Queries submitted (including later-cancelled ones).
    cancelled : int
        Queries dropped before execution because the awaiting caller
        cancelled.
    batches : int
        ``Session.run`` workloads executed.
    batched_requests : int
        Queries that executed inside those workloads.
    largest_batch : int
        Size of the largest single workload.
    graph_swaps : int
        Completed :meth:`AsyncSession.swap_graph` calls.
    graph_deltas : int
        Completed :meth:`AsyncSession.apply_delta` calls (streaming
        edge edits absorbed without a full swap).
    shed : int
        Submissions rejected by admission control (``max_pending``).
    deadline_expired : int
        Queries whose ``deadline_ms`` ran out before their batch
        started; they were failed at flush time without executing.
    """

    requests: int = 0
    cancelled: int = 0
    batches: int = 0
    batched_requests: int = 0
    largest_batch: int = 0
    graph_swaps: int = 0
    graph_deltas: int = 0
    shed: int = 0
    deadline_expired: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average executed workload size (0.0 before the first batch)."""
        if not self.batches:
            return 0.0
        return self.batched_requests / self.batches

    def as_dict(self) -> dict:
        """Plain-dict view (what ``/healthz`` reports)."""
        return {
            "requests": self.requests,
            "cancelled": self.cancelled,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
            "graph_swaps": self.graph_swaps,
            "graph_deltas": self.graph_deltas,
            "shed": self.shed,
            "deadline_expired": self.deadline_expired,
        }


@dataclass
class _PendingRequest:
    """One submitted query waiting for its coalesced batch to run.

    ``expires_at`` is the absolute :func:`time.monotonic` deadline
    derived from the query's ``deadline_ms`` at submission, or ``None``
    for no deadline.
    """

    query: Query
    future: "asyncio.Future[Result]" = field(repr=False)
    expires_at: Optional[float] = None


class _Failure:
    """Per-query failure marker inside an otherwise-successful batch."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException) -> None:
        self.error = error


class AsyncSession:
    """Coalesce concurrent queries into batched ``Session.run`` calls.

    Parameters
    ----------
    target : UncertainGraph or Session
        Either a graph (a :class:`~repro.api.Session` is built from it
        with ``**session_kwargs``) or an existing session to wrap.  The
        wrapped session must not be used concurrently from outside.
    max_batch : int, optional
        Flush as soon as this many queries are pending, without waiting
        out the coalescing window.
    max_wait_ms : float, optional
        Coalescing window: the longest a submitted query waits for
        companions before its batch is flushed.  ``0`` flushes on the
        next event-loop tick — concurrent submitters still coalesce,
        but no extra latency is ever added.
    max_pending : int, optional
        Admission-control bound: when this many queries are already
        waiting or executing, further submissions are shed with
        :class:`OverloadedError` instead of growing the queue without
        bound.  ``None`` (the default) disables shedding.
    **session_kwargs
        Forwarded to the :class:`~repro.api.Session` constructor when
        ``target`` is a graph (``seed``, ``estimator``,
        ``fuse_max_words``, ...).

    Notes
    -----
    Results are **bit-for-bit identical** to one-off ``Session.run``
    calls: coalescing only changes *when* queries execute, never what
    they compute, because ``Session.run`` groups by
    ``(estimator, Z, seed)`` and answers each group from the same
    deterministic world batch a single-query workload would use.

    Examples
    --------
    Two concurrent clients share one compiled plan, one coin-flip pass
    and one fused sweep:

    >>> import asyncio
    >>> from repro.graph import UncertainGraph
    >>> from repro.api import ReliabilityQuery
    >>> from repro.serve import AsyncSession
    >>> g = UncertainGraph.from_edges([(0, 1, 0.8), (1, 2, 0.5)])
    >>> async def clients():
    ...     async with AsyncSession(g, seed=7, max_wait_ms=5.0) as serving:
    ...         return await asyncio.gather(
    ...             serving.submit(ReliabilityQuery(0, target=1, samples=2000)),
    ...             serving.submit(ReliabilityQuery(0, target=2, samples=2000)),
    ...         )
    >>> results = asyncio.run(clients())
    >>> [round(r.value, 1) for r in results]
    [0.8, 0.4]
    >>> all(r.provenance.shared_worlds for r in results)
    True
    """

    def __init__(
        self,
        target: Union[UncertainGraph, Session],
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: Optional[int] = None,
        **session_kwargs: Any,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be positive (or None)")
        if isinstance(target, Session):
            if session_kwargs:
                raise TypeError(
                    "session_kwargs only apply when constructing from a "
                    "graph; configure the Session directly instead"
                )
            self.session = target
        else:
            self.session = Session(target, **session_kwargs)
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_pending = max_pending
        self.stats = CoalescerStats()
        self._pending: List[_PendingRequest] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: List["asyncio.Future"] = []
        # Queries dispatched to the worker whose results have not fanned
        # out yet — the executing half of the admission-control load.
        self._inflight_requests = 0
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._closed = False
        # Ownership hand-off for the sanitizer's race detector: from
        # here on, the single worker thread owns the session (and its
        # store's write paths) — a wrapped session that was used on the
        # constructing thread before is explicitly re-homed.  Reads the
        # coalescer itself performs from the event loop (store_stats,
        # graph identity) stay unguarded by design.
        self.session._affinity.rebind()
        if self.session.store is not None:
            self.session.store._write_affinity.rebind()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, query: Query) -> Result:
        """Submit one query; await its result.

        The query joins the current coalescing window and executes in
        one ``Session.run`` workload together with every other query
        pending when the window flushes.  Cancelling the awaiting task
        before the flush drops the query from the batch entirely.

        Parameters
        ----------
        query : ReliabilityQuery or MaximizeQuery
            The query to execute.

        Returns
        -------
        ReliabilityResult or MaximizeResult
            Exactly what ``Session.run(Workload([query]))[0]`` returns.

        Raises
        ------
        SessionClosedError
            The coalescer is closed (or closed while this query was
            pending).
        OverloadedError
            ``max_pending`` queries are already waiting or executing;
            this one was shed without entering a batch.
        DeadlineExceededError
            The query's ``deadline_ms`` expired before its batch
            started executing.
        """
        if self._closed:
            raise SessionClosedError("AsyncSession is closed")
        Workload._check(query)
        self.stats.requests += 1
        if self.max_pending is not None:
            load = len(self._pending) + self._inflight_requests
            if load >= self.max_pending:
                self.stats.shed += 1
                raise OverloadedError(
                    f"{load} queries already pending or executing "
                    f"(max_pending={self.max_pending}); request shed"
                )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Result]" = loop.create_future()
        deadline_ms = query.deadline_ms
        expires_at = (
            None if deadline_ms is None
            else time.monotonic() + deadline_ms / 1000.0
        )
        self._pending.append(_PendingRequest(query, future, expires_at))
        if len(self._pending) >= self.max_batch:
            self._flush(loop)
        elif self._timer is None:
            self._timer = loop.call_later(
                self.max_wait_ms / 1000.0, self._flush, loop
            )
        return await future

    async def run(self, queries: Union[Workload, Sequence[Query]]) -> List[Result]:
        """Submit several queries concurrently; results align with input.

        Each query is submitted individually, so it can coalesce not
        just with its siblings but with every other client's concurrent
        requests.

        Parameters
        ----------
        queries : Workload or sequence of queries
            The queries to execute.

        Returns
        -------
        list of ReliabilityResult or MaximizeResult
            In the same order as ``queries``.
        """
        return list(await asyncio.gather(*(self.submit(q) for q in queries)))

    async def reliability(
        self,
        source: int,
        target: Optional[int] = None,
        targets: Optional[Sequence[int]] = None,
        estimator: str = "mc",
        samples: int = 1000,
        seed: Optional[int] = None,
    ) -> ReliabilityResult:
        """One-call coalescible reliability estimate.

        Mirrors :meth:`repro.api.Session.reliability`; see
        :class:`~repro.api.ReliabilityQuery` for parameter semantics.
        """
        return await self.submit(ReliabilityQuery(
            source,
            target=target,
            targets=tuple(targets) if targets is not None else None,
            estimator=estimator,
            samples=samples,
            seed=seed,
        ))

    async def maximize(self, query: MaximizeQuery) -> MaximizeResult:
        """Execute one maximize query through the coalescer.

        Maximize queries batch their paired base evaluations with every
        other maximize query in the same flush (one shared-world
        ``evaluate_pairs`` pass), exactly as ``Session.run`` does.
        """
        return await self.submit(query)

    # ------------------------------------------------------------------
    # graph hot-swap
    # ------------------------------------------------------------------
    async def swap_graph(self, graph: UncertainGraph) -> int:
        """Replace the served graph; returns the new graph's version.

        The swap runs on the same single-thread executor as batch
        execution, so it serializes with in-flight workloads: batches
        flushed before the swap complete against the old graph, batches
        flushed after it run against the new one.  Queries already
        *pending* in the coalescing window are flushed first — a query
        accepted while the old graph was being served must never
        silently execute against the new one.  The session's compiled
        plan and every cached world batch are evicted explicitly — two
        distinct graph objects may share a ``version`` counter value,
        so the version check alone cannot be trusted across a swap.
        Entries in an attached persistent store need no eviction at
        all: they are keyed by the graph's **content hash**
        (:meth:`repro.graph.UncertainGraph.content_hash`), so the new
        graph simply reads and writes its own namespace — the
        version-collision hazard cannot reach the disk tier.
        """
        if self._closed:
            raise SessionClosedError("AsyncSession is closed")
        loop = asyncio.get_running_loop()
        if self._pending:
            # Pin pre-swap submissions to the old graph: their batch is
            # enqueued on the executor ahead of the swap job.
            self._flush(loop)

        def _swap() -> int:
            self.session.graph = graph
            self.session.invalidate()
            return graph.version

        version = await loop.run_in_executor(self._executor, _swap)
        self.stats.graph_swaps += 1
        return version

    async def apply_delta(self, delta: GraphDelta) -> DeltaReport:
        """Apply streaming edge edits to the served graph in place.

        Like :meth:`swap_graph`, the edit runs on the single-thread
        executor and therefore serializes with in-flight workloads:
        batches flushed before the delta answer against the pre-edit
        graph, batches flushed after it against the post-edit graph —
        never a mix.  Pending coalesced queries are flushed first for
        the same reason as in :meth:`swap_graph`.  Unlike a swap, the
        session keeps (and repairs) its cached world batches via
        :meth:`repro.api.Session.apply_delta`; the returned
        :class:`~repro.api.DeltaReport` says whether repair or eviction
        ran.
        """
        if self._closed:
            raise SessionClosedError("AsyncSession is closed")
        loop = asyncio.get_running_loop()
        if self._pending:
            # Pin pre-delta submissions to the pre-edit graph.
            self._flush(loop)

        def _apply() -> DeltaReport:
            return self.session.apply_delta(delta)

        report = await loop.run_in_executor(self._executor, _apply)
        self.stats.graph_deltas += 1
        return report

    @property
    def graph(self) -> UncertainGraph:
        """The graph the wrapped session currently serves."""
        return self.session.graph

    def store_stats(self) -> Optional[dict]:
        """Persistent-index statistics of the wrapped session.

        ``None`` when the session has no :class:`repro.index.IndexStore`
        attached; otherwise the dict ``/healthz`` embeds under
        ``"store"`` (catalog sizes plus hit/miss counters).  Reading
        SQLite aggregates from the event-loop thread is safe: the
        catalog connection is WAL-mode and the worker thread only ever
        appends.
        """
        return self.session.store_stats()

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Execute every pending (non-cancelled) query as one workload.

        Deadlines are enforced here, at the last moment before the
        batch is committed to the worker: an expired query fails with
        :class:`DeadlineExceededError` and never joins the workload, so
        companions' results are bit-for-bit what they would have been
        without it.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        now = time.monotonic()
        batch: List[_PendingRequest] = []
        for p in self._pending:
            if p.future.cancelled():
                self.stats.cancelled += 1
            elif p.expires_at is not None and now >= p.expires_at:
                self.stats.deadline_expired += 1
                p.future.set_exception(DeadlineExceededError(
                    f"deadline_ms={p.query.deadline_ms} expired before "
                    f"the batch started"
                ))
            else:
                batch.append(p)
        self._pending.clear()
        if not batch:
            return
        self.stats.batches += 1
        self.stats.batched_requests += len(batch)
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        queries = [p.query for p in batch]
        futures = [p.future for p in batch]
        try:
            task = loop.run_in_executor(
                self._executor, self._run_batch, queries
            )
        except RuntimeError:
            # Submit/close race: the executor shut down between this
            # flush being scheduled and running.  Fail the batch fast
            # and typed instead of stranding its awaiting callers.
            error = SessionClosedError(
                "AsyncSession closed while the batch was pending"
            )
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        self._inflight_requests += len(futures)
        self._inflight.append(task)
        task.add_done_callback(
            lambda done, futures=futures: self._fan_out(done, futures)
        )

    def _run_batch(self, queries: List[Query]) -> List[object]:
        """Worker-thread body: one ordinary ``Session.run`` call.

        A query that makes the whole workload raise must not poison its
        batch companions: on failure the batch re-runs query by query,
        so every caller gets its own result — or its own exception —
        instead of someone else's.  Reliability answers are
        deterministic per ``(estimator, Z, seed)``, so the isolation
        rerun returns the same values the clean run would have.
        Maximize companions of a *failed* batch may observe advanced
        state on a stateful session selection estimator (the failed
        attempt consumed RNG draws); queries validate what they can at
        construction (method, estimator names, ``k``) precisely to
        keep failures out of shared batches.
        """
        try:
            fault_point("serve.worker")
            return self.session.run(Workload(queries))
        except Exception:
            outcomes: List[object] = []
            for query in queries:
                try:
                    outcomes.append(self.session.run(Workload([query]))[0])
                except Exception as error:  # per-caller fault isolation
                    outcomes.append(_Failure(error))
            return outcomes

    def _fan_out(
        self,
        done: "asyncio.Future[List[Result]]",
        futures: List["asyncio.Future[Result]"],
    ) -> None:
        """Deliver a finished batch to its awaiting callers."""
        self._inflight_requests -= len(futures)
        if done in self._inflight:
            self._inflight.remove(done)
        if done.cancelled():
            for future in futures:
                if not future.done():
                    future.cancel()
            return
        error = done.exception()
        if error is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
            return
        for future, result in zip(futures, done.result(), strict=True):
            if future.done():
                continue
            if isinstance(result, _Failure):
                future.set_exception(result.error)
            else:
                future.set_result(result)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Flush pending queries, drain in-flight batches, shut down.

        Idempotent.  Queries submitted after ``close`` raise
        :class:`SessionClosedError`; a query racing ``close`` either
        lands in the final flush (and completes normally) or fails
        fast with the same typed error — it never hangs.
        """
        if self._closed:
            return
        self._closed = True
        loop = asyncio.get_running_loop()
        if self._pending:
            self._flush(loop)
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        self._executor.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncSession":
        """Enter the async context manager; returns self."""
        return self

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Close the session on context exit."""
        await self.close()


def split_batchable(
    queries: Sequence[Query],
    session_seed: Optional[int] = None,
) -> List[Tuple[Tuple[str, int, Optional[int]], List[Query]]]:
    """Group queries the way ``Session.run`` will batch them.

    Purely diagnostic — the session does its own grouping — but useful
    for asserting coalescing behavior in tests and for capacity
    planning.  Keys are resolved exactly as the session resolves them:
    the estimator name is canonicalized through the registry (aliases
    collapse onto their entry) and ``seed=None`` resolves to
    ``session_seed``, so a ``seed=None`` query and an explicit
    ``seed=session_seed`` query land in the same group.  Maximize
    queries land in a single ``("maximize", 0, None)`` group because
    their base evaluations batch together regardless of configuration.

    Parameters
    ----------
    queries : sequence of queries
        The queries of one coalesced batch.
    session_seed : int or None, optional
        The session's default seed, used to resolve per-query
        ``seed=None``.  ``None`` keeps unresolved seeds distinct from
        every explicit seed.

    Returns
    -------
    list of ((estimator, samples, seed), queries)
        Insertion-ordered groups.
    """
    from ..reliability import estimator_spec  # local: avoid import cycle

    groups: dict = {}
    for query in queries:
        if isinstance(query, MaximizeQuery):
            key = ("maximize", 0, None)
        else:
            seed = query.seed
            if seed is None and session_seed is not None:
                seed = session_seed
            key = (estimator_spec(query.estimator).name, query.samples, seed)
        groups.setdefault(key, []).append(query)
    return list(groups.items())
