"""Async serving layer: request coalescing over sessions, plus HTTP.

The scaling path named in ROADMAP.md: :class:`~repro.api.Session`
already executes *whole workloads* against one compiled plan and shared
sampled worlds, so a server's job reduces to folding concurrently
arriving single-query requests into workloads.  This package provides
exactly that, in two layers:

:class:`AsyncSession`
    An asyncio facade over a session.  Concurrent ``submit`` calls are
    **coalesced** — collected for up to ``max_wait_ms`` (or until
    ``max_batch`` queries are pending) and executed as one
    ``Session.run`` workload on a worker thread — bit-for-bit identical
    to one-off session calls, ≥3× faster at 64 concurrent clients
    (gated by ``benchmarks/bench_serve_async.py``).
:class:`ShardSupervisor`
    A self-healing pool of N worker processes (one ``AsyncSession``
    each, stdlib socket IPC).  Requests route by a stable hash of the
    same ``(estimator, Z, seed)`` key coalescing groups by, so
    shared-world batching still fires within a shard; a shard death
    (pipe EOF, heartbeat timeout, SIGKILL) triggers respawn under
    doubling backoff and bit-for-bit replay of its in-flight requests
    on a healthy shard.  Graph swaps broadcast in two phases
    (prepare/commit) so the pool never answers from two graphs.
:class:`ReliabilityServer`
    A stdlib-only HTTP/1.1 JSON endpoint over an ``AsyncSession`` or
    ``ShardSupervisor``: ``POST /reliability``, ``POST /maximize``,
    ``POST /graph`` (hot swap, keyed on ``UncertainGraph.version``),
    ``PATCH /edges`` (streaming edits that repair cached world batches
    in place), ``GET /healthz``.  Start it from the command line with
    ``repro serve`` (``--shards N`` for the supervised pool).

See ``docs/architecture.md`` ("Serving layer") for the data flow and
the coalescer tuning knobs, and ``examples/serve_quickstart.py`` for a
runnable end-to-end tour.
"""

from .async_session import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    AsyncSession,
    CoalescerStats,
    DeadlineExceededError,
    OverloadedError,
    SessionClosedError,
    split_batchable,
)
from .http import (
    HttpError,
    ReliabilityServer,
    maximize_response,
    parse_delta,
    parse_graph,
    parse_maximize_query,
    parse_reliability_query,
    provenance_dict,
    reliability_response,
    retry_after_seconds,
)
from .shard import (
    ShardCrashError,
    ShardError,
    ShardSpawnError,
    ShardSupervisor,
    SupervisorStats,
    route_key,
    shard_index,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_WAIT_MS",
    "AsyncSession",
    "CoalescerStats",
    "DeadlineExceededError",
    "OverloadedError",
    "SessionClosedError",
    "split_batchable",
    "HttpError",
    "ReliabilityServer",
    "maximize_response",
    "parse_delta",
    "parse_graph",
    "parse_maximize_query",
    "parse_reliability_query",
    "provenance_dict",
    "reliability_response",
    "retry_after_seconds",
    "ShardCrashError",
    "ShardError",
    "ShardSpawnError",
    "ShardSupervisor",
    "SupervisorStats",
    "route_key",
    "shard_index",
]
