"""Self-healing multi-process shard pool over :class:`AsyncSession`.

One :class:`AsyncSession` coalesces beautifully but runs every batch on
a single worker thread inside a single process: one crash kills every
client and one core answers all of them.  :class:`ShardSupervisor`
spreads the load over ``N`` worker *processes* — each one owning its
own :class:`repro.api.Session` + :class:`AsyncSession` — while keeping
the two properties that make the serving layer trustworthy:

**Deterministic routing.**  Requests are routed by a stable hash of the
same ``(estimator, Z, seed)`` key that :func:`split_batchable` uses for
coalescing, so concurrently arriving requests that *would* share a
possible-world batch in a single-process server still land on the same
shard and still share one coin-flip pass there.  Routing depends only
on the query, never on load, so a replayed request reproduces the
original shard's answer bit-for-bit on any other shard.

**Exactness-preserving crash recovery.**  Everything below the session
is deterministic in ``(graph content, estimator, Z, seed)``, so a
request is safe to replay.  The supervisor detects shard death three
ways — pipe EOF (SIGKILL, crash), heartbeat timeout (hang, SIGSTOP),
and IPC write failure — then SIGKILLs the remains, respawns the worker
under doubling backoff, and transparently re-dispatches the dead
shard's in-flight requests to a healthy shard (or parks them until one
respawns).  A crash mid-burst yields zero failed responses; replayed
responses are bit-for-bit equal to one-off ``Session.run`` calls.

IPC protocol
------------
Each worker talks to the supervisor over one ``socket.socketpair()``
(AF_UNIX).  Frames are 4-byte big-endian length prefixes followed by a
pickled ``(kind, payload)`` tuple.  Supervisor → worker kinds:
``request``, ``ping``, ``prepare``, ``commit``, ``stats``,
``shutdown``.  Worker → supervisor kinds: ``ready``, ``result``,
``pong``, ``prepared``, ``committed``, ``stats``, ``bye``.  Workers are
started with the ``spawn`` start method (never ``fork``: the parent
runs an asyncio loop and holds locks), and the child's socket end is
passed as a ``Process`` argument via multiprocessing's fd-passing
reduction.

Graph hot-swap is a two-phase broadcast: phase one ships the new graph
to every shard (``prepare``), phase two flips them over (``commit``).
A shard that dies mid-swap is respawned directly on the pending graph,
so it counts as both prepared and committed; clients never observe a
pool that answers from two different graphs after a swap returns.
Streaming deltas (:meth:`ShardSupervisor.apply_delta`) ride the same
two-phase machinery: the prepare frame carries the
:class:`~repro.api.GraphDelta` instead of a whole graph, each worker's
commit repairs its session caches in place, and a shard that dies
mid-delta respawns directly on the supervisor's precomputed post-delta
graph — a fresh session needs no repair.

Fault seams ``shard.spawn``, ``shard.heartbeat``, ``shard.ipc.read``
and ``shard.ipc.write`` (see :mod:`repro.faults`) let the chaos suite
exercise every recovery path deterministically.
"""

from __future__ import annotations

import asyncio
import hashlib
import multiprocessing
import os
import pickle
import signal
import socket
import struct
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Dict, List, Optional, Tuple, Type, Union

from ..api import DeltaReport, GraphDelta, Query, Session, Workload
from ..api.queries import MaximizeQuery
from ..faults import fault_point
from ..graph import UncertainGraph
from .async_session import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    AsyncSession,
    OverloadedError,
    Result,
    SessionClosedError,
)

#: Frame header: 4-byte big-endian payload length.
_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single IPC frame; anything larger is a protocol
#: error, not a graph (a multi-million-edge graph pickles well below
#: this).
_MAX_FRAME_BYTES = 1 << 30


class ShardError(RuntimeError):
    """Base class for shard-pool failures."""


class ShardSpawnError(ShardError):
    """Spawning a worker process failed (exec, handshake, or timeout).

    At :meth:`ShardSupervisor.start` this propagates to the caller —
    a pool that cannot start should fail loudly.  During respawn it is
    swallowed and retried under the same doubling backoff.
    """


class ShardCrashError(ShardError):
    """A request exhausted its replay budget across shard crashes.

    Raised to the submitting caller after ``replay_budget`` consecutive
    shard deaths each took this request down with them.  The request
    never produced a (possibly torn) partial answer — retrying is safe,
    and HTTP maps this to 503 with ``Retry-After``.
    """


# ----------------------------------------------------------------------
# Frame codec (shared by supervisor and worker)
# ----------------------------------------------------------------------


def _encode_frame(kind: str, payload: object) -> bytes:
    data = pickle.dumps((kind, payload), protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME_HEADER.pack(len(data)) + data


async def _read_frame(reader: asyncio.StreamReader) -> Tuple[str, Any]:
    header = await reader.readexactly(_FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME_BYTES:
        raise ShardError(f"oversized IPC frame ({length} bytes)")
    kind, payload = pickle.loads(await reader.readexactly(length))
    return kind, payload


def _portable_error(error: BaseException) -> BaseException:
    """Return ``error`` if it survives a pickle round-trip, else a repr wrapper."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")


# ----------------------------------------------------------------------
# Deterministic routing
# ----------------------------------------------------------------------


def route_key(query: Query, session_seed: Optional[int]) -> Tuple[str, int, Optional[int]]:
    """Coalescing key of ``query`` — the unit the router keeps together.

    Exactly the key :func:`split_batchable` groups by: estimator name
    canonicalized through the registry, sample count, and the seed with
    per-query ``None`` resolved to the session default.  Maximize
    queries collapse onto one key because their base evaluations batch
    together regardless of configuration.

    Parameters
    ----------
    query : ReliabilityQuery or MaximizeQuery
        The query to route.
    session_seed : int or None
        The worker sessions' default seed (resolves ``seed=None``).

    Returns
    -------
    (estimator, samples, seed)
        A stable, hashable routing key.
    """
    from ..reliability import estimator_spec  # local: avoid import cycle

    if isinstance(query, MaximizeQuery):
        return ("maximize", 0, None)
    seed = query.seed
    if seed is None and session_seed is not None:
        seed = session_seed
    return (estimator_spec(query.estimator).name, query.samples, seed)


def shard_index(key: Tuple[str, int, Optional[int]], num_shards: int) -> int:
    """Map a routing key onto a shard index with a stable hash.

    Uses the first 8 bytes of SHA-256 over ``repr(key)`` so the mapping
    is identical across processes, Python versions and restarts (no
    ``PYTHONHASHSEED`` dependence) — a replay after a respawn computes
    the same home shard the original dispatch did.

    Parameters
    ----------
    key : (estimator, samples, seed)
        Routing key from :func:`route_key`.
    num_shards : int
        Pool size.

    Returns
    -------
    int
        Home shard in ``range(num_shards)``.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------


def _worker_stats(serving: AsyncSession) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "pid": os.getpid(),
        "coalescer": serving.stats.as_dict(),
    }
    store = serving.store_stats()
    if store is not None:
        payload["store"] = store
    return payload


async def _shard_worker(sock: socket.socket, graph: UncertainGraph, options: Dict[str, Any]) -> None:
    reader, writer = await asyncio.open_connection(sock=sock)
    store = None
    store_path = options.get("store_path")
    if store_path is not None:
        from ..index import IndexStore

        store = IndexStore(store_path)
    session = Session(graph, store=store, **options.get("session_kwargs", {}))
    serving = AsyncSession(
        session,
        max_batch=options["max_batch"],
        max_wait_ms=options["max_wait_ms"],
        max_pending=None,  # the supervisor owns admission control
    )
    write_lock = asyncio.Lock()
    pending_graphs: Dict[int, Union[UncertainGraph, GraphDelta]] = {}
    tasks: set = set()

    async def send(kind: str, payload: object) -> None:
        frame = _encode_frame(kind, payload)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    def spawn(coro: Any) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        tasks.add(task)
        task.add_done_callback(tasks.discard)

    async def answer(request_id: int, query: Query) -> None:
        try:
            result = await serving.submit(query)
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            await send("result", (request_id, False, _portable_error(error)))
        else:
            await send("result", (request_id, True, result))

    async def commit(generation: int) -> None:
        pending = pending_graphs.pop(generation, None)
        if isinstance(pending, GraphDelta):
            # Streaming edit: repair this worker's session caches in
            # place instead of evicting them via a full swap.
            await serving.apply_delta(pending)
        elif pending is not None:
            await serving.swap_graph(pending)
        await send("committed", generation)

    await send("ready", {"pid": os.getpid(), "index": options.get("index", -1)})
    try:
        while True:
            try:
                kind, payload = await _read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            if kind == "request":
                request_id, query = payload
                spawn(answer(request_id, query))
            elif kind == "ping":
                spawn(send("pong", payload))
            elif kind == "prepare":
                generation, staged = payload  # whole graph or GraphDelta
                # One swap at a time (the supervisor serializes them):
                # a newer prepare obsoletes any stale pending payload.
                pending_graphs.clear()
                pending_graphs[generation] = staged
                spawn(send("prepared", generation))
            elif kind == "commit":
                spawn(commit(payload))
            elif kind == "stats":
                spawn(send("stats", (payload, _worker_stats(serving))))
            elif kind == "shutdown":
                break
    finally:
        await serving.close()  # flush + answer every in-flight query
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        if store is not None:
            store.close()
        try:
            async with write_lock:
                writer.write(_encode_frame("bye", None))
                await writer.drain()
            writer.close()
        except (ConnectionError, RuntimeError):
            pass


def _shard_worker_main(sock: socket.socket, graph: UncertainGraph, options: Dict[str, Any]) -> None:
    """Entry point of one shard worker process (``spawn``-picklable).

    Ignores SIGINT so a terminal Ctrl-C (delivered to the whole
    foreground process group) cannot kill workers out from under the
    supervisor's graceful drain; shutdown arrives over the socket.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        asyncio.run(_shard_worker(sock, graph, options))
    except (ConnectionError, KeyboardInterrupt):
        pass


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------


@dataclass
class SupervisorStats:
    """Counters the supervisor exposes under ``/healthz``.

    Attributes
    ----------
    requests, shed : int
        Total submissions and admission-control rejections.
    replays : int
        In-flight requests re-dispatched after a shard death.
    crashed : int
        Requests that exhausted ``replay_budget`` (failed typed).
    respawns : int
        Successful worker respawns after a death.
    spawn_failures : int
        Respawn attempts that failed and backed off.
    deaths : int
        Shard deaths detected (EOF, heartbeat, write failure).
    heartbeat_timeouts : int
        Deaths declared specifically by heartbeat staleness.
    graph_swaps : int
        Completed two-phase graph swaps.
    graph_deltas : int
        Completed two-phase streaming deltas
        (:meth:`ShardSupervisor.apply_delta`).
    """

    requests: int = 0
    shed: int = 0
    replays: int = 0
    crashed: int = 0
    respawns: int = 0
    spawn_failures: int = 0
    deaths: int = 0
    heartbeat_timeouts: int = 0
    graph_swaps: int = 0
    graph_deltas: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Return the counters as a plain dict (JSON-ready)."""
        return {
            "requests": self.requests,
            "shed": self.shed,
            "replays": self.replays,
            "crashed": self.crashed,
            "respawns": self.respawns,
            "spawn_failures": self.spawn_failures,
            "deaths": self.deaths,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "graph_swaps": self.graph_swaps,
            "graph_deltas": self.graph_deltas,
        }


class _Inflight:
    __slots__ = ("request_id", "query", "future", "attempts")

    def __init__(self, request_id: int, query: Query, future: "asyncio.Future[Result]") -> None:
        self.request_id = request_id
        self.query = query
        self.future = future
        self.attempts = 0


class _Shard:
    """Supervisor-side handle for one worker process."""

    def __init__(self, index: int, backoff_s: float) -> None:
        self.index = index
        self.live = False
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pid: Optional[int] = None
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.reader_task: Optional["asyncio.Task[None]"] = None
        self.heartbeat_task: Optional["asyncio.Task[None]"] = None
        self.respawn_task: Optional["asyncio.Task[None]"] = None
        self.inflight: Dict[int, _Inflight] = {}
        self.acks: Dict[Tuple[str, int], "asyncio.Future[Any]"] = {}
        self.generation = 0
        self.backoff_s = backoff_s
        self.respawns = 0
        self.spawned_at = 0.0
        self.last_seen = 0.0
        self.write_lock = asyncio.Lock()


class ShardSupervisor:
    """Supervised pool of ``num_shards`` worker processes.

    Drop-in serving target for :class:`repro.serve.ReliabilityServer`:
    exposes the same ``submit`` / ``swap_graph`` / ``close`` surface as
    :class:`AsyncSession`, but spreads requests over worker processes,
    survives worker crashes by replaying in-flight requests, and keeps
    graph swaps atomic across the pool via a two-phase broadcast.

    Parameters
    ----------
    graph : UncertainGraph
        The graph every worker serves initially.
    num_shards : int, optional
        Worker-process count (default 2).
    max_batch, max_wait_ms : optional
        Per-worker coalescing knobs, forwarded to each worker's
        :class:`AsyncSession`.
    max_pending : int or None, optional
        Pool-wide admission cap; beyond it submissions are shed with
        :class:`OverloadedError` (workers themselves never shed).
    heartbeat_interval_s, heartbeat_timeout_s : float, optional
        Ping cadence and the staleness beyond which a silent worker is
        declared dead and SIGKILLed.
    replay_budget : int, optional
        How many shard deaths one request may survive (be replayed
        past) before failing typed with :class:`ShardCrashError`.
    respawn_backoff_s, respawn_backoff_ceiling_s : float, optional
        Initial and maximum delay between respawn attempts (doubling).
        The backoff resets once a worker stays up ``backoff_reset_s``.
    backoff_reset_s : float, optional
        Uptime after which a shard's backoff resets to the initial
        value (guards against crash-loop spin without penalizing a
        one-off kill).
    spawn_timeout_s : float, optional
        Deadline for a spawned worker's ``ready`` handshake.
    store_path : str or None, optional
        Directory of a shared :class:`repro.index.IndexStore`; each
        worker opens its own handle (flock + breakers handle
        contention).
    drain_timeout_s : float, optional
        How long :meth:`close` waits for in-flight answers.
    **session_kwargs
        Forwarded to each worker's :class:`repro.api.Session`
        (``seed``, ``estimator``, sample budgets, ...).
    """

    def __init__(
        self,
        graph: UncertainGraph,
        num_shards: int = 2,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: Optional[int] = None,
        heartbeat_interval_s: float = 1.0,
        heartbeat_timeout_s: float = 5.0,
        replay_budget: int = 3,
        respawn_backoff_s: float = 0.05,
        respawn_backoff_ceiling_s: float = 2.0,
        backoff_reset_s: float = 5.0,
        spawn_timeout_s: float = 60.0,
        store_path: Optional[str] = None,
        drain_timeout_s: float = 10.0,
        **session_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replay_budget < 0:
            raise ValueError(f"replay_budget must be >= 0, got {replay_budget}")
        if heartbeat_timeout_s <= heartbeat_interval_s:
            raise ValueError("heartbeat_timeout_s must exceed heartbeat_interval_s")
        self._graph = graph
        self.num_shards = num_shards
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_pending = max_pending
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.replay_budget = replay_budget
        self.respawn_backoff_s = respawn_backoff_s
        self.respawn_backoff_ceiling_s = respawn_backoff_ceiling_s
        self.backoff_reset_s = backoff_reset_s
        self.spawn_timeout_s = spawn_timeout_s
        self.store_path = store_path
        self.drain_timeout_s = drain_timeout_s
        self.session_kwargs = dict(session_kwargs)
        self.stats = SupervisorStats()
        self._session_seed: Optional[int] = session_kwargs.get("seed", 0)
        self._shards = [_Shard(i, respawn_backoff_s) for i in range(num_shards)]
        self._parked: List[_Inflight] = []
        self._next_request_id = 0
        self._generation = 0
        self._pending_graph: Optional[UncertainGraph] = None
        self._started = False
        self._closed = False
        self._swap_lock: Optional[asyncio.Lock] = None
        self._topology_event: Optional[asyncio.Event] = None
        self._mp_context = multiprocessing.get_context("spawn")

    # -- lifecycle -----------------------------------------------------

    @property
    def graph(self) -> UncertainGraph:
        """The graph the pool currently serves (committed, not pending)."""
        return self._graph

    @property
    def started(self) -> bool:
        """Whether :meth:`start` has run."""
        return self._started

    async def start(self) -> None:
        """Spawn every worker and wait for all ``ready`` handshakes.

        Raises
        ------
        ShardSpawnError
            A worker failed to start; already-started workers are torn
            down before the error propagates.
        """
        if self._started:
            raise RuntimeError("ShardSupervisor is already started")
        if self._closed:
            raise SessionClosedError("ShardSupervisor is closed")
        self._started = True
        self._swap_lock = asyncio.Lock()
        self._topology_event = asyncio.Event()
        try:
            await asyncio.gather(*(self._spawn_worker(s) for s in self._shards))
        except BaseException:
            await self.close()
            raise

    async def close(self) -> None:
        """Drain in-flight requests, stop every worker, reap processes.

        Idempotent.  Parked requests that never reached a worker fail
        typed with :class:`SessionClosedError`; in-flight requests get
        up to ``drain_timeout_s`` to finish (workers flush and answer
        their pending batches on shutdown).
        """
        if self._closed:
            return
        self._closed = True
        if not self._started:
            return
        for shard in self._shards:
            if shard.respawn_task is not None:
                shard.respawn_task.cancel()
            if shard.heartbeat_task is not None:
                shard.heartbeat_task.cancel()
        parked, self._parked = self._parked, []
        for entry in parked:
            if not entry.future.done():
                entry.future.set_exception(SessionClosedError("ShardSupervisor is closed"))
        waiting = [
            entry.future
            for shard in self._shards
            for entry in shard.inflight.values()
            if not entry.future.done()
        ]
        for shard in self._shards:
            if shard.live:
                try:
                    await self._send(shard, "shutdown", None)
                except (ShardError, ConnectionError, RuntimeError):
                    pass
        if waiting:
            await asyncio.wait(waiting, timeout=self.drain_timeout_s)
        self._wake_topology_waiters()
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            shard.live = False
            if shard.reader_task is not None:
                shard.reader_task.cancel()
            if shard.writer is not None:
                shard.writer.close()
            for entry in shard.inflight.values():
                if not entry.future.done():
                    entry.future.set_exception(SessionClosedError("ShardSupervisor is closed"))
            shard.inflight.clear()
            for ack in shard.acks.values():
                if not ack.done():
                    ack.set_exception(SessionClosedError("ShardSupervisor is closed"))
            shard.acks.clear()
            process = shard.process
            if process is not None and process.is_alive():
                await loop.run_in_executor(None, process.join, 5.0)
                if process.is_alive():
                    process.kill()
                    await loop.run_in_executor(None, process.join, 5.0)

    async def __aenter__(self) -> "ShardSupervisor":
        """Start the pool on entry."""
        await self.start()
        return self

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Close the pool on exit."""
        await self.close()

    # -- spawning and death --------------------------------------------

    async def _spawn_worker(self, shard: _Shard) -> None:
        fault_point("shard.spawn", ShardSpawnError)
        loop = asyncio.get_running_loop()
        parent_sock, child_sock = socket.socketpair()
        graph = self._pending_graph if self._pending_graph is not None else self._graph
        generation = self._generation
        options = {
            "index": shard.index,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "store_path": self.store_path,
            "session_kwargs": self.session_kwargs,
        }
        process = self._mp_context.Process(
            target=_shard_worker_main,
            args=(child_sock, graph, options),
            daemon=True,
            name=f"repro-shard-{shard.index}",
        )
        try:
            try:
                await loop.run_in_executor(None, process.start)
            finally:
                child_sock.close()
            reader, writer = await asyncio.open_connection(sock=parent_sock)
        except BaseException as error:
            parent_sock.close()
            if process.is_alive():
                process.kill()
            raise ShardSpawnError(f"shard {shard.index}: spawn failed: {error}") from error
        try:
            kind, payload = await asyncio.wait_for(_read_frame(reader), self.spawn_timeout_s)
            if kind != "ready":
                raise ShardError(f"expected ready handshake, got {kind!r}")
        except BaseException as error:
            writer.close()
            if process.is_alive():
                process.kill()
            await loop.run_in_executor(None, process.join, 5.0)
            raise ShardSpawnError(f"shard {shard.index}: handshake failed: {error}") from error
        now = time.monotonic()
        shard.process = process
        shard.pid = payload["pid"]
        shard.reader = reader
        shard.writer = writer
        shard.generation = generation
        shard.spawned_at = now
        shard.last_seen = now
        shard.live = True
        shard.reader_task = loop.create_task(self._reader_loop(shard))
        shard.heartbeat_task = loop.create_task(self._heartbeat_loop(shard))
        self._wake_topology_waiters()

    async def _reader_loop(self, shard: _Shard) -> None:
        reason = "pipe EOF"
        try:
            assert shard.reader is not None
            while True:
                fault_point("shard.ipc.read", ConnectionError)
                kind, payload = await _read_frame(shard.reader)
                shard.last_seen = time.monotonic()
                if kind == "result":
                    self._on_result(shard, payload)
                elif kind == "pong":
                    pass
                elif kind in ("prepared", "committed"):
                    if kind == "committed":
                        shard.generation = max(shard.generation, payload)
                    ack = shard.acks.pop((kind, payload), None)
                    if ack is not None and not ack.done():
                        ack.set_result(None)
                elif kind == "stats":
                    token, data = payload
                    stats_ack = shard.acks.pop(("stats", token), None)
                    if stats_ack is not None and not stats_ack.done():
                        stats_ack.set_result(data)
                elif kind == "bye":
                    reason = "worker shut down"
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionError) as error:
            if isinstance(error, ConnectionError) and str(error):
                reason = f"pipe error: {error}"
        except Exception as error:  # malformed frame, unpickling failure
            reason = f"IPC protocol error: {error}"
        await self._on_shard_death(shard, reason)

    async def _heartbeat_loop(self, shard: _Shard) -> None:
        seq = 0
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            if not shard.live:
                return
            age = time.monotonic() - shard.last_seen
            if age > self.heartbeat_timeout_s:
                self.stats.heartbeat_timeouts += 1
                await self._on_shard_death(shard, f"heartbeat timeout ({age:.1f}s silent)")
                return
            seq += 1
            try:
                fault_point("shard.heartbeat", ConnectionError)
                await self._send(shard, "ping", seq)
            except asyncio.CancelledError:
                raise
            except Exception:
                await self._on_shard_death(shard, "heartbeat write failed")
                return

    async def _on_shard_death(self, shard: _Shard, reason: str) -> None:
        if not shard.live:
            return
        shard.live = False
        self.stats.deaths += 1
        current = asyncio.current_task()
        for task in (shard.reader_task, shard.heartbeat_task):
            if task is not None and task is not current:
                task.cancel()
        if shard.writer is not None:
            shard.writer.close()
        process = shard.process
        if process is not None and process.is_alive():
            process.kill()
            asyncio.get_running_loop().run_in_executor(None, process.join, 5.0)
        for ack in shard.acks.values():
            if not ack.done():
                ack.set_exception(ShardError(f"shard {shard.index} died: {reason}"))
        shard.acks.clear()
        entries = [e for e in shard.inflight.values() if not e.future.done()]
        shard.inflight.clear()
        if self._closed:
            for entry in entries:
                entry.future.set_exception(SessionClosedError("ShardSupervisor is closed"))
            return
        shard.respawn_task = asyncio.get_running_loop().create_task(self._respawn(shard))
        self._wake_topology_waiters()
        for entry in entries:
            await self._replay(entry, reason)

    async def _replay(self, entry: _Inflight, reason: str) -> None:
        entry.attempts += 1
        if entry.attempts > self.replay_budget:
            self.stats.crashed += 1
            entry.future.set_exception(
                ShardCrashError(
                    f"request survived {self.replay_budget} shard deaths "
                    f"(last: {reason}); giving up"
                )
            )
            return
        self.stats.replays += 1
        await self._dispatch(entry)

    async def _respawn(self, shard: _Shard) -> None:
        while not self._closed:
            delay = shard.backoff_s
            shard.backoff_s = min(shard.backoff_s * 2.0, self.respawn_backoff_ceiling_s)
            await asyncio.sleep(delay)
            if self._closed:
                return
            try:
                await self._spawn_worker(shard)
            except asyncio.CancelledError:
                raise
            except ShardSpawnError:
                self.stats.spawn_failures += 1
                continue
            shard.respawns += 1
            self.stats.respawns += 1
            parked, self._parked = self._parked, []
            for entry in parked:
                if not entry.future.done():
                    await self._dispatch(entry)
            return

    def _wake_topology_waiters(self) -> None:
        event = self._topology_event
        if event is not None:
            event.set()
            self._topology_event = asyncio.Event()

    async def _wait_topology_change(self) -> None:
        event = self._topology_event
        assert event is not None
        await event.wait()

    # -- request path --------------------------------------------------

    def _load(self) -> int:
        return sum(len(s.inflight) for s in self._shards) + len(self._parked)

    def _pick_shard(self, query: Query) -> Optional[_Shard]:
        home = shard_index(route_key(query, self._session_seed), self.num_shards)
        for offset in range(self.num_shards):
            shard = self._shards[(home + offset) % self.num_shards]
            if shard.live:
                return shard
        return None

    async def _send(self, shard: _Shard, kind: str, payload: object) -> None:
        if shard.writer is None:
            raise ShardError(f"shard {shard.index} has no connection")
        frame = _encode_frame(kind, payload)
        async with shard.write_lock:
            fault_point("shard.ipc.write", ConnectionError)
            shard.writer.write(frame)
            await shard.writer.drain()

    async def _dispatch(self, entry: _Inflight) -> None:
        shard = self._pick_shard(entry.query)
        if shard is None:
            self._parked.append(entry)  # drained by the next respawn
            return
        shard.inflight[entry.request_id] = entry
        try:
            await self._send(shard, "request", (entry.request_id, entry.query))
        except asyncio.CancelledError:
            raise
        except Exception:
            # A write failure is a death signal; the death handler
            # replays every entry it still finds in ``inflight`` —
            # including this one, unless a concurrent death already
            # drained the dict, in which case we replay it ourselves.
            await self._on_shard_death(shard, "request write failed")
            stranded = shard.inflight.pop(entry.request_id, None)
            if stranded is not None and not stranded.future.done():
                await self._replay(stranded, "request write failed")

    def _on_result(self, shard: _Shard, payload: Tuple[int, bool, Any]) -> None:
        request_id, ok, outcome = payload
        entry = shard.inflight.pop(request_id, None)
        if entry is None or entry.future.done():
            return  # cancelled by the caller, or already replayed
        if ok:
            entry.future.set_result(outcome)
        else:
            entry.future.set_exception(outcome)

    async def submit(self, query: Query) -> Result:
        """Route one query to its home shard; await the result.

        Requests sharing a coalescing key land on the same shard and
        share one possible-world batch there.  If the shard dies before
        answering, the request is transparently replayed on a healthy
        shard (up to ``replay_budget`` times) — the determinism
        contract makes the replayed answer bit-for-bit identical.

        Parameters
        ----------
        query : ReliabilityQuery or MaximizeQuery
            The query to execute.

        Returns
        -------
        ReliabilityResult or MaximizeResult
            Exactly what ``Session.run(Workload([query]))[0]`` returns.

        Raises
        ------
        SessionClosedError
            The pool is closed (or closed mid-request).
        OverloadedError
            ``max_pending`` requests already in flight; shed.
        ShardCrashError
            The request exhausted its replay budget.
        """
        if self._closed:
            raise SessionClosedError("ShardSupervisor is closed")
        if not self._started:
            raise RuntimeError("ShardSupervisor.start() has not run")
        Workload._check(query)
        self.stats.requests += 1
        if self.max_pending is not None and self._load() >= self.max_pending:
            self.stats.shed += 1
            raise OverloadedError(
                f"{self._load()} requests already in flight "
                f"(max_pending={self.max_pending}); request shed"
            )
        self._next_request_id += 1
        loop = asyncio.get_running_loop()
        entry = _Inflight(self._next_request_id, query, loop.create_future())
        await self._dispatch(entry)
        return await entry.future

    # -- two-phase graph swap ------------------------------------------

    async def swap_graph(self, graph: UncertainGraph) -> int:
        """Atomically swap every shard onto ``graph`` (two-phase).

        Phase one broadcasts the new graph (``prepare``) and waits for
        every shard's ack; phase two flips them over (``commit``).  A
        shard that dies mid-swap respawns directly on the new graph and
        counts as both prepared and committed.  Requests keep flowing
        during the swap; each batch sees either the old graph or the
        new one, never a mix.

        Parameters
        ----------
        graph : UncertainGraph
            The replacement graph.

        Returns
        -------
        int
            ``graph.version`` once every shard is committed.
        """
        if self._closed:
            raise SessionClosedError("ShardSupervisor is closed")
        if not self._started:
            raise RuntimeError("ShardSupervisor.start() has not run")
        assert self._swap_lock is not None
        async with self._swap_lock:
            self._generation += 1
            generation = self._generation
            self._pending_graph = graph
            try:
                await asyncio.gather(
                    *(self._phase(s, "prepare", generation, graph) for s in self._shards)
                )
                self._graph = graph
                await asyncio.gather(
                    *(self._phase(s, "commit", generation, None) for s in self._shards)
                )
            finally:
                self._pending_graph = None
            self.stats.graph_swaps += 1
            return graph.version

    async def apply_delta(self, delta: GraphDelta) -> DeltaReport:
        """Broadcast streaming edge edits to every shard (two-phase).

        The same machinery as :meth:`swap_graph` with one twist: the
        prepare frame carries the small :class:`~repro.api.GraphDelta`
        instead of a whole graph, and each worker's commit *repairs*
        its session caches in place (:meth:`repro.api.Session.apply_delta`)
        rather than evicting them.  The supervisor precomputes the
        post-delta graph before broadcasting — a shard that dies
        mid-delta respawns directly on that graph (fresh sessions need
        no repair) and counts as both prepared and committed, exactly
        like a mid-swap death.

        Parameters
        ----------
        delta : GraphDelta
            The edits to apply pool-wide.  A delete naming an absent
            edge raises :class:`KeyError` before anything is broadcast.

        Returns
        -------
        DeltaReport
            Pool-level report: ``strategy="broadcast"`` with the
            committed graph's version/content hash.  Per-worker repair
            counters surface through :meth:`shard_stats` (each worker's
            coalescer reports its ``graph_deltas`` count).
        """
        if self._closed:
            raise SessionClosedError("ShardSupervisor is closed")
        if not self._started:
            raise RuntimeError("ShardSupervisor.start() has not run")
        assert self._swap_lock is not None
        async with self._swap_lock:
            final_graph = self._graph.copy()
            start = time.monotonic()
            delta.apply_to(final_graph)  # KeyError before any broadcast
            self._generation += 1
            generation = self._generation
            self._pending_graph = final_graph
            try:
                await asyncio.gather(
                    *(self._phase(s, "prepare", generation, delta) for s in self._shards)
                )
                self._graph = final_graph
                await asyncio.gather(
                    *(self._phase(s, "commit", generation, None) for s in self._shards)
                )
            finally:
                self._pending_graph = None
            self.stats.graph_deltas += 1
            return DeltaReport(
                strategy="broadcast",
                num_edits=delta.num_edits,
                version=final_graph.version,
                content_hash=final_graph.content_hash(),
                seconds=time.monotonic() - start,
            )

    async def _phase(
        self,
        shard: _Shard,
        kind: str,
        generation: int,
        staged: Optional[Union[UncertainGraph, GraphDelta]],
    ) -> None:
        ack_kind = "prepared" if kind == "prepare" else "committed"
        while True:
            if self._closed:
                raise SessionClosedError("ShardSupervisor is closed")
            if not shard.live:
                # Wait for the respawn; a worker spawned mid-swap starts
                # on the pending graph at this generation, so the
                # generation check below completes the phase for it.
                await self._wait_topology_change()
                continue
            if shard.generation >= generation:
                return
            ack: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
            shard.acks[(ack_kind, generation)] = ack
            try:
                payload = (generation, staged) if kind == "prepare" else generation
                await self._send(shard, kind, payload)
                await ack
                return
            except asyncio.CancelledError:
                raise
            except Exception:
                shard.acks.pop((ack_kind, generation), None)
                if shard.live:
                    await self._on_shard_death(shard, f"{kind} broadcast failed")
                continue

    # -- introspection -------------------------------------------------

    def store_stats(self) -> Optional[dict]:
        """Pool-level store statistics — ``None`` (stores live in workers).

        Per-worker store counters are available via :meth:`shard_stats`
        and surface under the ``shards`` key of ``/healthz``.
        """
        return None

    def describe(self) -> Dict[str, Any]:
        """Supervisor-side health snapshot (no worker round-trips).

        Returns
        -------
        dict
            Pool configuration, lifetime counters, and one row per
            shard (liveness, pid, respawns, in-flight count, committed
            graph generation, current backoff).
        """
        return {
            "num_shards": self.num_shards,
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "heartbeat_timeout_s": self.heartbeat_timeout_s,
            "replay_budget": self.replay_budget,
            "parked": len(self._parked),
            **self.stats.as_dict(),
            "shards": [
                {
                    "index": s.index,
                    "live": s.live,
                    "pid": s.pid,
                    "respawns": s.respawns,
                    "inflight": len(s.inflight),
                    "generation": s.generation,
                    "backoff_s": s.backoff_s,
                }
                for s in self._shards
            ],
        }

    async def shard_stats(self, timeout_s: float = 2.0) -> List[Optional[Dict[str, Any]]]:
        """Collect per-worker coalescer/store stats over IPC.

        Best-effort: a dead or slow shard contributes ``None`` instead
        of blocking health checks.

        Parameters
        ----------
        timeout_s : float, optional
            Per-pool deadline for the stats round-trip.

        Returns
        -------
        list of dict or None
            One entry per shard index.
        """

        async def one(shard: _Shard) -> Optional[Dict[str, Any]]:
            if not shard.live:
                return None
            self._next_request_id += 1
            token = self._next_request_id
            ack: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
            shard.acks[("stats", token)] = ack
            try:
                await self._send(shard, "stats", token)
                return await asyncio.wait_for(ack, timeout_s)
            except Exception:
                shard.acks.pop(("stats", token), None)
                return None

        return list(await asyncio.gather(*(one(s) for s in self._shards)))
