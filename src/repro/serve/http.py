"""Stdlib-only HTTP/1.1 JSON endpoint over :class:`AsyncSession`.

A deliberately small server — ``asyncio.start_server`` plus a
hand-rolled HTTP/1.1 request parser — so the serving layer stays free
of third-party dependencies.  Five endpoints:

``POST /reliability``
    Body ``{"source": 0, "target": 3, "samples": 1000, "estimator":
    "mc", "seed": null}`` (or ``"targets": [..]`` for a fan-out query).
    Responds with per-target values plus full provenance.
``POST /maximize``
    Body ``{"source": 0, "target": 3, "k": 5, "zeta": 0.5, "method":
    "be", ...}``.  Responds with the selected edges, base/new
    reliability, gain, and provenance.
``POST /graph``
    Hot-swap the served graph: body ``{"edges": [[u, v, p], ...],
    "directed": false, "name": "..."}``.  The swap serializes with
    in-flight batches (see :meth:`AsyncSession.swap_graph`) and the
    response echoes the new graph's ``version`` — the key every cached
    plan and world batch is invalidated on.
``PATCH /edges``
    Streaming edge edits: body ``{"upserts": [[u, v, p], ...],
    "deletes": [[u, v], ...]}``.  Unlike a full ``/graph`` swap, the
    session *repairs* its cached world batches in place (re-flipping
    only the edited edges' keyed coins) and resumes cached reach
    states where the edit was monotone; the response echoes the
    :class:`~repro.api.DeltaReport` (strategy, repair counters, new
    ``version``/``content_hash``).
``GET /healthz``
    Liveness plus the served graph's identity/version, the coalescer's
    batching counters and — when a persistent index is attached
    (``repro serve --store``) — the store's catalog sizes and hit/miss
    counters.

Concurrent requests hitting ``/reliability`` and ``/maximize`` within
one coalescing window are folded into a single ``Session.run``
workload; responses are bit-for-bit what one-off sessions would return.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import asdict
from typing import Any, Optional, Tuple, Union

from .. import faults
from ..api import GraphDelta, Session
from ..api.queries import MaximizeQuery, ReliabilityQuery
from ..api.results import MaximizeResult, ReliabilityResult
from ..faults import fault_point
from ..graph import UncertainGraph
from .async_session import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_WAIT_MS,
    AsyncSession,
    DeadlineExceededError,
    OverloadedError,
    SessionClosedError,
)
from .shard import ShardCrashError, ShardSupervisor

#: Largest accepted request body (a graph upload dominates sizing).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Caps on the header section, so a client streaming endless header
#: lines cannot grow server memory without bound.
MAX_HEADER_LINES = 256
MAX_HEADER_BYTES = 64 * 1024

#: Idle/slow-client bound: a connection that takes longer than this to
#: deliver one complete request (or to send its next keep-alive
#: request) is closed, so stalled sockets cannot pin server tasks.
DEFAULT_READ_TIMEOUT_S = 60.0


class HttpError(Exception):
    """A request failure carrying the HTTP status to respond with.

    ``headers`` carries extra response headers (e.g. ``Retry-After``
    on a 503 shed response).
    """

    def __init__(
        self,
        status: int,
        message: str,
        headers: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers


class _Request:
    """One parsed HTTP request (method, path, body)."""

    def __init__(
        self, method: str, path: str, body: bytes, keep_alive: bool
    ) -> None:
        self.method = method
        self.path = path
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> dict:
        """Decode the body as a JSON object; 400 on anything else."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "JSON body must be an object")
        return payload


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Beat added on top of the coalescing window when deriving the
#: ``Retry-After`` hint: by window + beat the burst that caused a shed
#: has flushed and its worker slot is free again.
RETRY_AFTER_BEAT_S = 0.1


def retry_after_seconds(max_wait_ms: float) -> int:
    """``Retry-After`` seconds for 503 responses, from the real window.

    The server's actual coalescing window plus :data:`RETRY_AFTER_BEAT_S`,
    rounded up to whole seconds (RFC 9110 ``Retry-After`` carries an
    integer ``delay-seconds``), never below 1.

    Parameters
    ----------
    max_wait_ms : float
        The serving target's coalescing window in milliseconds.

    Returns
    -------
    int
        Suggested client back-off in seconds.
    """
    return max(1, math.ceil(max_wait_ms / 1000.0 + RETRY_AFTER_BEAT_S))


def provenance_dict(result: Union[ReliabilityResult, MaximizeResult]) -> dict:
    """JSON-ready provenance of any session result."""
    return asdict(result.provenance)


def reliability_response(result: ReliabilityResult) -> dict:
    """JSON-ready body for a ``/reliability`` response.

    Results iterate ``result.pairs`` (query order, duplicate targets
    preserved) so positional indexing against the request stays valid.
    """
    return {
        "source": result.query.source,
        "results": [
            {"target": target, "value": value}
            for (_, target), value in result.pairs
        ],
        "provenance": provenance_dict(result),
    }


def maximize_response(result: MaximizeResult) -> dict:
    """JSON-ready body for a ``/maximize`` response."""
    solution = result.solution
    return {
        "source": result.query.source,
        "target": result.query.target,
        "method": solution.method,
        "edges": [[u, v, p] for u, v, p in solution.edges],
        "base_reliability": solution.base_reliability,
        "new_reliability": solution.new_reliability,
        "gain": solution.gain,
        "num_candidates": solution.num_candidates,
        "provenance": provenance_dict(result),
    }


def _as_int(
    payload: dict, field: str, default: Optional[int] = None
) -> Optional[int]:
    """Strict integer field: JSON floats and booleans are 400s.

    ``int(0.9)`` would silently truncate to node 0 and ``int(True)`` to
    node 1 — answers for queries the client never asked.
    """
    value = payload.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(400, f"{field} must be an integer, got {value!r}")
    return value


def _as_number(payload: dict, field: str) -> Optional[float]:
    """Optional numeric field (int or float); booleans are 400s."""
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise HttpError(400, f"{field} must be a number, got {value!r}")
    return float(value)


def parse_reliability_query(payload: dict) -> ReliabilityQuery:
    """Build a :class:`ReliabilityQuery` from a JSON payload; 400 on bad input."""
    targets = payload.get("targets")
    if targets is not None:
        # A JSON string would silently iterate character by character.
        if not isinstance(targets, (list, tuple)):
            raise HttpError(400, "targets must be a list of node ids")
        for t in targets:
            if isinstance(t, bool) or not isinstance(t, int):
                raise HttpError(
                    400, f"targets must be integers, got {t!r}"
                )
    if "source" not in payload:
        raise HttpError(400, "bad reliability query: missing 'source'")
    try:
        return ReliabilityQuery(
            source=_as_int(payload, "source"),
            target=_as_int(payload, "target"),
            targets=tuple(targets) if targets is not None else None,
            estimator=str(payload.get("estimator", "mc")),
            samples=_as_int(payload, "samples", 1000),
            seed=_as_int(payload, "seed"),
            deadline_ms=_as_number(payload, "deadline_ms"),
        )
    except HttpError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise HttpError(400, f"bad reliability query: {error}") from None


def parse_maximize_query(payload: dict) -> MaximizeQuery:
    """Build a :class:`MaximizeQuery` from a JSON payload; 400 on bad input.

    Most validation (method, estimator name, ``k``, ``zeta``, seed)
    lives on the query classes themselves — their ``ValueError`` maps
    to 400 below — so bad input is rejected at the door for HTTP and
    direct :class:`AsyncSession` callers alike.
    """
    zeta = payload.get("zeta", 0.5)
    if isinstance(zeta, bool) or not isinstance(zeta, (int, float)):
        raise HttpError(400, "zeta must be a number")
    zeta = float(zeta)
    method = str(payload.get("method", "be"))
    for field in ("source", "target"):
        if field not in payload:
            raise HttpError(400, f"bad maximize query: missing {field!r}")
    try:
        return MaximizeQuery(
            source=_as_int(payload, "source"),
            target=_as_int(payload, "target"),
            k=_as_int(payload, "k", 5),
            zeta=zeta,
            method=method,
            estimator=(
                str(payload["estimator"])
                if payload.get("estimator") is not None else None
            ),
            samples=_as_int(payload, "samples"),
            seed=_as_int(payload, "seed"),
            eliminate=bool(payload.get("eliminate", True)),
            deadline_ms=_as_number(payload, "deadline_ms"),
        )
    except HttpError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise HttpError(400, f"bad maximize query: {error}") from None


def parse_graph(payload: dict) -> UncertainGraph:
    """Build an :class:`UncertainGraph` from a ``/graph`` payload."""
    edges = payload.get("edges")
    if not isinstance(edges, list) or not edges:
        raise HttpError(400, "graph upload requires a non-empty 'edges' list")
    try:
        graph = UncertainGraph(
            directed=bool(payload.get("directed", False)),
            name=str(payload.get("name", "uploaded")),
        )
        for entry in edges:
            u, v, p = entry
            if any(isinstance(x, bool) or not isinstance(x, int)
                   for x in (u, v)):
                raise HttpError(400, f"edge endpoints must be integers: "
                                     f"{entry!r}")
            graph.add_edge(u, v, float(p))
    except HttpError:
        raise
    except (TypeError, ValueError) as error:
        raise HttpError(400, f"bad graph upload: {error}") from None
    return graph


def parse_delta(payload: dict) -> GraphDelta:
    """Build a :class:`GraphDelta` from a ``PATCH /edges`` payload.

    Shape checks (lists of well-typed triples/pairs) happen here so a
    malformed body is a 400; *semantic* validation — deletes naming
    absent edges — happens inside the session against the live graph
    and also maps to 400 at the dispatch site.
    """
    upserts = payload.get("upserts", [])
    deletes = payload.get("deletes", [])
    for field, value in (("upserts", upserts), ("deletes", deletes)):
        if not isinstance(value, list):
            raise HttpError(400, f"{field} must be a list")
    if not upserts and not deletes:
        raise HttpError(400, "delta requires 'upserts' and/or 'deletes'")
    for entry in upserts:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise HttpError(400, f"upserts entries must be [u, v, p]: "
                                 f"{entry!r}")
        u, v, p = entry
        if any(isinstance(x, bool) or not isinstance(x, int) for x in (u, v)):
            raise HttpError(400, f"edge endpoints must be integers: {entry!r}")
        if isinstance(p, bool) or not isinstance(p, (int, float)):
            raise HttpError(400, f"edge probability must be a number: "
                                 f"{entry!r}")
    for entry in deletes:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise HttpError(400, f"deletes entries must be [u, v]: {entry!r}")
        if any(isinstance(x, bool) or not isinstance(x, int) for x in entry):
            raise HttpError(400, f"edge endpoints must be integers: {entry!r}")
    try:
        return GraphDelta(
            upserts=tuple((u, v, float(p)) for u, v, p in upserts),
            deletes=tuple((u, v) for u, v in deletes),
        )
    except ValueError as error:
        raise HttpError(400, f"bad delta: {error}") from None


class ReliabilityServer:
    """Serve coalesced reliability/maximize queries over HTTP.

    Parameters
    ----------
    target : UncertainGraph or Session or AsyncSession
        What to serve.  A graph gets a fresh
        :class:`~repro.api.Session` (configured by
        ``**session_kwargs``); a session or async session is wrapped
        as-is.
    host, port : str, int, optional
        Bind address.  ``port=0`` picks a free port (the default, for
        tests); :attr:`address` reports the bound endpoint after
        :meth:`start`.
    max_batch, max_wait_ms, max_pending : int, float, int, optional
        Coalescer settings (see :class:`AsyncSession`); ignored when an
        ``AsyncSession`` is passed in directly.  ``max_pending`` bounds
        admission: excess requests are shed with ``503`` plus a
        ``Retry-After`` header instead of queueing without bound.
    read_timeout_s : float or None, optional
        Close a connection whose next request is not fully received
        within this many seconds (slow-loris guard).  ``None`` disables
        the bound.
    **session_kwargs
        Forwarded to the :class:`~repro.api.Session` constructor when
        ``target`` is a graph (``seed``, ``estimator``,
        ``fuse_max_words``, ...).

    Examples
    --------
    >>> import asyncio, json, urllib.request
    >>> from repro.graph import UncertainGraph
    >>> from repro.serve import ReliabilityServer
    >>> g = UncertainGraph.from_edges([(0, 1, 0.8), (1, 2, 0.5)])
    >>> async def demo():
    ...     server = ReliabilityServer(g, seed=7)
    ...     host, port = await server.start()
    ...     url = f"http://{host}:{port}/reliability"
    ...     body = json.dumps({"source": 0, "target": 2,
    ...                        "samples": 2000}).encode()
    ...     loop = asyncio.get_running_loop()
    ...     response = await loop.run_in_executor(
    ...         None, lambda: urllib.request.urlopen(url, data=body).read())
    ...     await server.stop()
    ...     return json.loads(response)
    >>> payload = asyncio.run(demo())
    >>> round(payload["results"][0]["value"], 1)
    0.4
    """

    def __init__(
        self,
        target: Union[UncertainGraph, Session, AsyncSession, ShardSupervisor],
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        max_pending: Optional[int] = None,
        read_timeout_s: Optional[float] = DEFAULT_READ_TIMEOUT_S,
        **session_kwargs: Any,
    ) -> None:
        if isinstance(target, (AsyncSession, ShardSupervisor)):
            if session_kwargs:
                raise TypeError(
                    "session_kwargs only apply when constructing from a "
                    "graph; configure the AsyncSession directly instead"
                )
            self.serving: Union[AsyncSession, ShardSupervisor] = target
            self._owns_serving = False
        else:
            self.serving = AsyncSession(
                target,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                max_pending=max_pending,
                **session_kwargs,
            )
            self._owns_serving = True
        self.host = host
        self.port = port
        self.read_timeout_s = read_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        # Open connections and whether each is mid-request: drain
        # closes the idle ones immediately and waits (bounded) for the
        # busy ones to finish their response.
        self._connections: dict = {}
        self._handler_tasks: set = set()

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` actually bound (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns ``(host, port)``.

        A caller-provided :class:`ShardSupervisor` that has not been
        started yet is started here (workers spawn before the socket
        binds, so the first request never races the pool coming up).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        if isinstance(self.serving, ShardSupervisor) and not self.serving.started:
            await self.serving.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        return self.address

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled or :meth:`stop` is called."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass

    async def stop(self, drain_timeout_s: float = 10.0) -> None:
        """Gracefully drain and shut down.

        The drain ladder: stop accepting new connections, close idle
        keep-alive connections, let the coalescer flush and finish its
        in-flight batches (via ``AsyncSession.close`` when we own it),
        then wait up to ``drain_timeout_s`` for busy handlers to write
        their final responses before force-cancelling stragglers.  A
        request already submitted when the drain starts still gets its
        real answer; responses written during the drain carry
        ``Connection: close``.

        A caller-provided :class:`AsyncSession` is left open — its
        owner may keep submitting to it after the HTTP front end goes
        away.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()  # stop accepting; sockets unbind now
        for writer, busy in list(self._connections.items()):
            if not busy:
                # Idle keep-alive connections: their pending read wakes
                # with EOF and the handler exits cleanly.
                writer.close()
        if self._owns_serving:
            await self.serving.close()
        pending = {task for task in self._handler_tasks if not task.done()}
        if pending:
            _, stragglers = await asyncio.wait(
                pending, timeout=drain_timeout_s
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.gather(*stragglers, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve one client connection (HTTP/1.1 keep-alive loop)."""
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections[writer] = False  # idle until a request lands
        try:
            while True:
                try:
                    fault_point("serve.http.read", ConnectionError)
                    request = await asyncio.wait_for(
                        _read_request(reader), timeout=self.read_timeout_s
                    )
                except asyncio.TimeoutError:
                    break  # idle or slow-drip client: reclaim the task
                except HttpError as error:
                    await asyncio.wait_for(
                        _write_response(
                            writer, error.status, {"error": error.message},
                            keep_alive=False, headers=error.headers,
                        ),
                        timeout=self.read_timeout_s,
                    )
                    break
                if request is None:
                    break
                self._connections[writer] = True  # busy: drain must wait
                headers: Optional[dict] = None
                try:
                    status, payload = await self._dispatch(request)
                except HttpError as error:
                    status, payload = error.status, {"error": error.message}
                    headers = error.headers
                except Exception as error:  # server boundary: catch-all by design
                    status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
                # Responses written mid-drain say Connection: close so
                # the client re-connects elsewhere instead of idling on
                # a server that is going away.
                keep_alive = request.keep_alive and not self._draining
                # The write is bounded too: a client that stops reading
                # must not pin this task in drain() forever.
                await asyncio.wait_for(
                    _write_response(
                        writer, status, payload,
                        keep_alive=keep_alive, headers=headers,
                    ),
                    timeout=self.read_timeout_s,
                )
                self._connections[writer] = False
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass
        finally:
            self._connections.pop(writer, None)
            if task is not None:
                self._handler_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client vanished
                pass

    async def _dispatch(self, request: _Request) -> Tuple[int, dict]:
        """Route one request; returns ``(status, JSON payload)``."""
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, self._healthz()
        if route == ("POST", "/reliability"):
            query = parse_reliability_query(request.json())
            result = await self._submit(query)
            return 200, reliability_response(result)
        if route == ("POST", "/maximize"):
            query = parse_maximize_query(request.json())
            result = await self._submit(query)
            return 200, maximize_response(result)
        if route == ("POST", "/graph"):
            graph = parse_graph(request.json())
            try:
                version = await self.serving.swap_graph(graph)
            except SessionClosedError as error:
                raise HttpError(503, str(error)) from None
            return 200, {"status": "swapped", "graph": self._graph_info(version)}
        if route == ("PATCH", "/edges"):
            delta = parse_delta(request.json())
            try:
                report = await self.serving.apply_delta(delta)
            except KeyError as error:
                # A delete naming an absent edge: the graph is untouched
                # (GraphDelta.validate runs before any mutation).
                raise HttpError(400, f"bad delta: {error}") from None
            except SessionClosedError as error:
                raise HttpError(503, str(error)) from None
            return 200, {
                "status": "patched",
                "report": report.as_dict(),
                "graph": self._graph_info(report.version),
            }
        if request.path in ("/healthz", "/reliability", "/maximize", "/graph",
                            "/edges"):
            raise HttpError(405, f"method {request.method} not allowed "
                                 f"for {request.path}")
        raise HttpError(404, f"unknown path {request.path}")

    async def _submit(self, query: Any) -> Any:
        """Submit to the coalescer, mapping resilience errors to HTTP.

        Every retryable 503 — a shed (``OverloadedError``), a
        closed/draining coalescer (``SessionClosedError``), a request
        that exhausted its crash-replay budget (``ShardCrashError``) —
        carries a ``Retry-After`` derived from the server's actual
        coalescing window (:func:`retry_after_seconds`); an expired
        per-request deadline (``DeadlineExceededError``) maps to 504.
        """
        retry_after = {"Retry-After": str(retry_after_seconds(self.serving.max_wait_ms))}
        try:
            return await self.serving.submit(query)
        except OverloadedError as error:
            raise HttpError(503, str(error), headers=retry_after) from None
        except ShardCrashError as error:
            raise HttpError(503, str(error), headers=retry_after) from None
        except SessionClosedError as error:
            raise HttpError(503, str(error), headers=retry_after) from None
        except DeadlineExceededError as error:
            raise HttpError(504, str(error)) from None

    def _graph_info(self, version: Optional[int] = None) -> dict:
        """Identity of the currently served graph (for /healthz, /graph)."""
        graph = self.serving.graph
        return {
            "name": graph.name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "directed": graph.directed,
            "version": graph.version if version is None else version,
        }

    def _healthz(self) -> dict:
        """Body of the ``/healthz`` response.

        When the wrapped session has a persistent index attached
        (``repro serve --store``), a ``"store"`` section reports the
        catalog sizes and hit/miss counters next to the coalescer's
        batching counters; without one the key is absent entirely, so
        monitors can distinguish "no store" from "store with no
        traffic".

        Sharded serving (``repro serve --shards N``) replaces the
        ``"coalescer"`` section with a ``"supervisor"`` section: pool
        configuration, death/replay/respawn counters, and one row per
        shard.  When the fault registry is armed a ``"faults"`` section
        reports per-seam fire counts so chaos runs can scrape them
        without process introspection.
        """
        payload: dict
        payload = {
            "status": "draining" if self._draining else "ok",
            "graph": self._graph_info(),
        }
        if isinstance(self.serving, ShardSupervisor):
            payload["supervisor"] = self.serving.describe()
        else:
            payload["coalescer"] = {
                "max_batch": self.serving.max_batch,
                "max_wait_ms": self.serving.max_wait_ms,
                "max_pending": self.serving.max_pending,
                **self.serving.stats.as_dict(),
            }
        store = self.serving.store_stats()
        if store is not None:
            payload["store"] = store
        if faults.armed():
            payload["faults"] = {"seams": faults.seam_report()}
        return payload


async def _read_request(reader: asyncio.StreamReader) -> Optional[_Request]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection.

    Malformed input — a garbage request line, an over-long header line
    (``StreamReader`` raises ``ValueError`` past its limit), a
    non-numeric or negative ``Content-Length`` — raises
    :class:`HttpError` (400) so the caller can still answer instead of
    dropping the connection with an unhandled traceback.
    """
    try:
        request_line = await reader.readline()
    except ValueError:
        raise HttpError(400, "request line too long") from None
    if not request_line:
        return None
    try:
        method, path, version = request_line.decode("ascii").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    # Routing ignores the query string: health checkers commonly append
    # cache-busting params (GET /healthz?probe=1).
    path = path.partition("?")[0]
    headers = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise HttpError(400, "header line too long") from None
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if len(headers) >= MAX_HEADER_LINES or header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "header section too large")
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        # We never decode chunked bodies; silently ignoring the header
        # would desync the keep-alive stream (the body would be parsed
        # as the next request — the classic smuggling vector).
        raise HttpError(400, "Transfer-Encoding is not supported; "
                             "send Content-Length")
    try:
        length = int(headers.get("content-length", 0) or 0)
    except ValueError:
        raise HttpError(400, "malformed Content-Length header") from None
    if length < 0:
        raise HttpError(400, "negative Content-Length header")
    if length > MAX_BODY_BYTES:
        raise HttpError(400, "request body too large")
    body = await reader.readexactly(length) if length else b""
    keep_alive = (
        headers.get("connection", "").lower() != "close"
        and version.upper() != "HTTP/1.0"
    )
    return _Request(method.upper(), path, body, keep_alive)


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: dict,
    keep_alive: bool,
    headers: Optional[dict] = None,
) -> None:
    """Serialize one JSON response and flush it."""
    fault_point("serve.http.write", ConnectionError)
    body = json.dumps(payload).encode("utf-8")
    reason = _STATUS_TEXT.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {connection}\r\n"
        f"{extra}"
        f"\r\n"
    ).encode("ascii")
    writer.write(head + body)
    await writer.drain()
