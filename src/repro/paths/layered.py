"""Budget-constrained most reliable path (Algorithm 3's layered graph).

Algorithm 3 of the paper makes ``k + 1`` copies of the weighted graph,
keeps blue (existing) edges inside each copy and routes red (candidate)
edges from copy ``i`` to copy ``i + 1``; the shortest path from ``s`` in
copy 0 to ``t`` in copy ``j`` is then the most reliable path using at
most ``j`` new edges.

Materializing the copies costs ``O(k n^2)`` edges; this module realizes
the identical search space *implicitly* as Dijkstra over states
``(node, red_edges_used)`` — same optimal paths, no copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph import UncertainGraph

ProbEdge = Tuple[int, int, float]
Path = List[int]


@dataclass
class ConstrainedPath:
    """A path together with the red (new) edges it uses."""

    nodes: Path
    probability: float
    red_edges: List[Tuple[int, int]]

    @property
    def weight(self) -> float:
        """Additive ``-log`` weight (the paper's ``W(P)``)."""
        if self.probability <= 0.0:
            return math.inf
        return -math.log(self.probability)


def constrained_most_reliable_paths(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    red_edges: Iterable[ProbEdge],
) -> Dict[int, ConstrainedPath]:
    """Best path from ``source`` to ``target`` per red-edge count.

    Returns ``{j: path}`` where ``path`` is the most reliable s-t path
    using exactly ``j`` red edges (``0 <= j <= k``); absent keys mean no
    such path exists.  Red edges may duplicate existing node pairs (the
    caller controls the candidate set).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    red_adj: Dict[int, List[Tuple[int, float]]] = {}
    for u, v, p in red_edges:
        red_adj.setdefault(u, []).append((v, p))
        if not graph.directed:
            red_adj.setdefault(v, []).append((u, p))

    State = Tuple[int, int]  # (node, red count)
    dist: Dict[State, float] = {(source, 0): 0.0}
    parent: Dict[State, Tuple[State, bool]] = {}
    heap: List[Tuple[float, int, int]] = [(0.0, source, 0)]
    settled: Set[State] = set()

    if source not in graph and source not in red_adj:
        return {}

    while heap:
        d, u, j = heappop(heap)
        state = (u, j)
        if state in settled:
            continue
        settled.add(state)
        if u in graph:
            for v, p in graph.successors(u).items():
                if p <= 0.0:
                    continue
                nd = d - math.log(p)
                nstate = (v, j)
                if nstate not in settled and nd < dist.get(nstate, math.inf):
                    dist[nstate] = nd
                    parent[nstate] = (state, False)
                    heappush(heap, (nd, v, j))
        if j < k:
            for v, p in red_adj.get(u, ()):
                if p <= 0.0:
                    continue
                nd = d - math.log(p)
                nstate = (v, j + 1)
                if nstate not in settled and nd < dist.get(nstate, math.inf):
                    dist[nstate] = nd
                    parent[nstate] = (state, True)
                    heappush(heap, (nd, v, j + 1))

    results: Dict[int, ConstrainedPath] = {}
    for j in range(k + 1):
        state = (target, j)
        if state not in dist:
            continue
        nodes: Path = [target]
        red_used: List[Tuple[int, int]] = []
        cur = state
        while cur != (source, 0):
            prev, via_red = parent[cur]
            if via_red:
                red_used.append((prev[0], cur[0]))
            nodes.append(prev[0])
            cur = prev
        nodes.reverse()
        red_used.reverse()
        results[j] = ConstrainedPath(
            nodes=nodes,
            probability=math.exp(-dist[state]),
            red_edges=red_used,
        )
    return results


def best_improvement(
    paths_by_count: Dict[int, ConstrainedPath],
) -> Optional[ConstrainedPath]:
    """Algorithm 3's final step: the best path that uses >= 1 red edge.

    Returns ``None`` when no red-edge path beats the blue-only path
    ``P0`` (i.e. no addition can improve the most reliable path).
    """
    blue = paths_by_count.get(0)
    blue_weight = blue.weight if blue is not None else math.inf
    best: Optional[ConstrainedPath] = None
    for j, path in paths_by_count.items():
        if j == 0:
            continue
        if path.weight < blue_weight and (best is None or path.weight < best.weight):
            best = path
    return best
