"""Top-l most reliable simple paths (Yen's algorithm).

The paper extracts the top-l most reliable s-t paths from the
candidate-augmented graph (§5.1.2, citing Eppstein).  Eppstein's
algorithm allows non-simple paths; for reliability only *simple* paths
matter (revisiting a node never raises the product), so we use Yen's
k-shortest *simple* paths on the ``-log p`` weighting — the standard
choice in the uncertain-graph literature the paper builds on [20]-[22].
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Set, Tuple

from ..graph import UncertainGraph
from ..reliability.estimator import Overlay
from .dijkstra import most_reliable_path, path_probability

Path = List[int]


def _overlay_probs(
    graph: UncertainGraph,
    extra_edges: Overlay,
) -> Dict[Tuple[int, int], float]:
    probs: Dict[Tuple[int, int], float] = {}
    if extra_edges:
        for u, v, p in extra_edges:
            probs[(u, v)] = p
            if not graph.directed:
                probs[(v, u)] = p
    return probs


def top_l_most_reliable_paths(
    graph: UncertainGraph,
    source: int,
    target: int,
    l: int,
    extra_edges: Overlay = None,
) -> List[Tuple[Path, float]]:
    """Up to ``l`` most reliable simple paths, most reliable first.

    Paths with zero probability are never returned.  ``extra_edges``
    triples participate exactly like graph edges.
    """
    if l < 1:
        raise ValueError("l must be positive")
    extra = list(extra_edges) if extra_edges else None
    extra_probs = _overlay_probs(graph, extra)

    first_path, first_prob = most_reliable_path(graph, source, target, extra)
    if first_path is None or first_prob <= 0.0:
        return []

    found: List[Tuple[Path, float]] = [(first_path, first_prob)]
    # Candidate heap entries: (weight, path); weight = -log prob.
    candidates: List[Tuple[float, Path]] = []
    seen_candidates: Set[Tuple[int, ...]] = {tuple(first_path)}

    while len(found) < l:
        prev_path = found[-1][0]
        for i in range(len(prev_path) - 1):
            spur_node = prev_path[i]
            root = prev_path[: i + 1]
            banned_edges: Set[Tuple[int, int]] = set()
            for path, _ in found:
                if len(path) > i and path[: i + 1] == root:
                    banned_edges.add((path[i], path[i + 1]))
                    if not graph.directed:
                        banned_edges.add((path[i + 1], path[i]))
            banned_nodes = set(root[:-1])
            spur_path, spur_prob = most_reliable_path(
                graph,
                spur_node,
                target,
                extra,
                forbidden_nodes=banned_nodes,
                forbidden_edges=banned_edges,
            )
            if spur_path is None or spur_prob <= 0.0:
                continue
            total_path = root[:-1] + spur_path
            key = tuple(total_path)
            if key in seen_candidates:
                continue
            seen_candidates.add(key)
            prob = path_probability(graph, total_path, extra_probs)
            if prob <= 0.0:
                continue
            heappush(candidates, (-math.log(prob), total_path))
        if not candidates:
            break
        weight, best = heappop(candidates)
        found.append((best, math.exp(-weight)))
    return found


def paths_induced_edges(
    graph: UncertainGraph,
    paths: Sequence[Path],
) -> Set[Tuple[int, int]]:
    """Edge set (canonical orientation) induced by a collection of paths."""
    edges: Set[Tuple[int, int]] = set()
    for path in paths:
        for u, v in zip(path, path[1:], strict=False):
            if not graph.directed and v < u:
                edges.add((v, u))
            else:
                edges.add((u, v))
    return edges
