"""Most reliable paths via Dijkstra on ``-log p`` weights.

The probability of a path is the product of its edge probabilities, so
the most reliable path (Eq. 5) is the shortest path under the additive
weight ``w(e) = -log p(e)`` — non-negative because ``p(e) <= 1``.

Every routine supports an ``extra_edges`` overlay so candidate edges can
be searched without copying the graph.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from ..reliability.estimator import Overlay, build_overlay

Path = List[int]


def path_probability(graph: UncertainGraph, path: Sequence[int],
                     extra_probs: Optional[Dict[Tuple[int, int], float]] = None) -> float:
    """Product of edge probabilities along ``path``.

    ``extra_probs`` supplies probabilities for edges that are not in the
    graph (candidate edges); keys may be given in either orientation for
    undirected graphs.
    """
    prob = 1.0
    for u, v in zip(path, path[1:], strict=False):
        if graph.has_edge(u, v):
            prob *= graph.probability(u, v)
        elif extra_probs is not None:
            if (u, v) in extra_probs:
                prob *= extra_probs[(u, v)]
            elif not graph.directed and (v, u) in extra_probs:
                prob *= extra_probs[(v, u)]
            else:
                raise KeyError(f"edge ({u}, {v}) on path but not in graph/extras")
        else:
            raise KeyError(f"edge ({u}, {v}) on path but not in graph")
    return prob


def most_reliable_path(
    graph: UncertainGraph,
    source: int,
    target: int,
    extra_edges: Overlay = None,
    forbidden_nodes: Optional[Set[int]] = None,
    forbidden_edges: Optional[Set[Tuple[int, int]]] = None,
) -> Tuple[Optional[Path], float]:
    """The single most reliable path and its probability.

    Returns ``(None, 0.0)`` when no path with positive probability
    exists.  ``forbidden_nodes``/``forbidden_edges`` support Yen's spur
    computations; forbidden edges are direction-sensitive keys as
    traversed (``(u, v)`` means the hop u→v is banned).
    """
    if source == target:
        return [source], 1.0
    if source not in graph or (target not in graph and not extra_edges):
        return None, 0.0
    overlay = build_overlay(graph, extra_edges)
    banned_nodes = forbidden_nodes or ()
    banned_edges = forbidden_edges or ()
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited: Set[int] = set()
    while heap:
        d, u = heappop(heap)
        if u in visited:
            continue
        if u == target:
            break
        visited.add(u)
        neighbors: List[Tuple[int, float]] = list(graph.successors(u).items())
        if overlay and u in overlay:
            neighbors.extend(overlay[u])
        for v, p in neighbors:
            if v in visited or v in banned_nodes or p <= 0.0:
                continue
            if (u, v) in banned_edges:
                continue
            nd = d - math.log(p)
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parent[v] = u
                heappush(heap, (nd, v))
    if target not in dist:
        return None, 0.0
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path, math.exp(-dist[target])


def reliability_dijkstra_all(
    graph: UncertainGraph,
    source: int,
    extra_edges: Overlay = None,
    reverse: bool = False,
) -> Dict[int, float]:
    """Most-reliable-path probability from ``source`` to every node.

    With ``reverse=True`` the graph's edges are traversed backwards, so
    the result is the best path probability *to* ``source`` from every
    node — a deterministic proxy for reliability-to-target used by tests
    and by fast heuristics.
    """
    if source not in graph:
        return {}
    overlay = build_overlay(graph, extra_edges)
    if reverse and graph.directed:
        neighbor_fn = graph.predecessors
        reverse_overlay_map: Dict[int, List[Tuple[int, float]]] = {}
        for u, pairs in overlay.items():
            for v, p in pairs:
                reverse_overlay_map.setdefault(v, []).append((u, p))
        overlay = reverse_overlay_map
    else:
        neighbor_fn = graph.successors
    dist: Dict[int, float] = {source: 0.0}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited: Set[int] = set()
    while heap:
        d, u = heappop(heap)
        if u in visited:
            continue
        visited.add(u)
        neighbors = list(neighbor_fn(u).items())
        if overlay and u in overlay:
            neighbors.extend(overlay[u])
        for v, p in neighbors:
            if v in visited or p <= 0.0:
                continue
            nd = d - math.log(p)
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heappush(heap, (nd, v))
    return {node: math.exp(-d) for node, d in dist.items()}


def hop_shortest_path(
    graph: UncertainGraph,
    source: int,
    target: int,
    extra_edges: Overlay = None,
) -> Optional[Path]:
    """Unweighted shortest path (BFS); used by the ESSSP baseline."""
    if source == target:
        return [source]
    if source not in graph:
        return None
    overlay = build_overlay(graph, extra_edges)
    parent: Dict[int, int] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            neighbors = list(graph.successors(u))
            if overlay and u in overlay:
                neighbors.extend(v for v, _ in overlay[u])
            for v in neighbors:
                if v in parent:
                    continue
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                next_frontier.append(v)
        frontier = next_frontier
    return None
