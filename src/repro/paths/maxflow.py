"""Maximum flow / minimum cut (Dinic's algorithm).

Substrate for the cut-based reliability upper bound: for any s-t edge
cut ``C``, the s-t reliability is at most ``1 - prod_{e in C} (1 - p_e)``
(t is unreachable whenever every cut edge fails).  The *tightest* such
bound over single cuts is found by a min-cut computation with edge
capacities ``-log(1 - p_e)`` — minimizing the capacity sum maximizes the
product of failure probabilities.

Implemented from scratch (level-graph BFS + blocking-flow DFS) to keep
the substrate self-contained.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

Edge = Tuple[int, int]


class DinicMaxFlow:
    """Dinic's max-flow on a directed capacity graph.

    Capacities are floats; the algorithm is exact up to float arithmetic
    and runs in ``O(V^2 E)`` — ample for the query-relevant subgraphs
    this library feeds it.
    """

    def __init__(self) -> None:
        self._graph: Dict[int, List[int]] = {}
        # Edge arrays: to[i], cap[i]; reverse edge is i ^ 1.
        self._to: List[int] = []
        self._cap: List[float] = []
        self._meta: List[Optional[Edge]] = []

    def add_edge(self, u: int, v: int, capacity: float,
                 meta: Optional[Edge] = None) -> None:
        """Add a directed edge with the given capacity.

        ``meta`` tags the forward edge with the original graph edge so
        cut edges can be reported in the caller's terms.
        """
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._graph.setdefault(u, []).append(len(self._to))
        self._to.append(v)
        self._cap.append(capacity)
        self._meta.append(meta)
        self._graph.setdefault(v, []).append(len(self._to))
        self._to.append(u)
        self._cap.append(0.0)
        self._meta.append(None)

    def max_flow(self, source: int, sink: int) -> float:
        """Total maximum flow from source to sink."""
        if source == sink:
            return math.inf
        flow = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return flow
            iters = {u: 0 for u in self._graph}
            while True:
                pushed = self._dfs_push(source, sink, math.inf, level, iters)
                if pushed <= 0:
                    break
                flow += pushed

    def min_cut_edges(self, source: int, sink: int) -> List[Edge]:
        """Saturated forward edges crossing the min cut (by meta tag).

        Must be called after :meth:`max_flow`; returns the tagged
        original edges from the source side to the sink side.
        """
        reachable = self._residual_reachable(source)
        cut: List[Edge] = []
        for u in reachable:
            for index in self._graph.get(u, ()):
                v = self._to[index]
                if v not in reachable and self._meta[index] is not None:
                    cut.append(self._meta[index])
        return cut

    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> Optional[Dict[int, int]]:
        level = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for index in self._graph.get(u, ()):
                v = self._to[index]
                if self._cap[index] > 1e-12 and v not in level:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if sink in level else None

    def _dfs_push(self, u, sink, limit, level, iters) -> float:
        if u == sink:
            return limit
        edges = self._graph.get(u, [])
        while iters[u] < len(edges):
            index = edges[iters[u]]
            v = self._to[index]
            if self._cap[index] > 1e-12 and level.get(v, -1) == level[u] + 1:
                pushed = self._dfs_push(
                    v, sink, min(limit, self._cap[index]), level, iters
                )
                if pushed > 0:
                    self._cap[index] -= pushed
                    self._cap[index ^ 1] += pushed
                    return pushed
            iters[u] += 1
        return 0.0

    def _residual_reachable(self, source: int) -> Set[int]:
        seen = {source}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for index in self._graph.get(u, ()):
                v = self._to[index]
                if self._cap[index] > 1e-12 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen


def min_cut(
    edges: Iterable[Tuple[int, int, float]],
    source: int,
    sink: int,
    directed: bool = True,
) -> Tuple[float, List[Edge]]:
    """Minimum s-t cut of a capacity graph.

    Returns ``(cut_value, cut_edges)`` where ``cut_edges`` are original
    ``(u, v)`` pairs.  For undirected graphs each edge is added in both
    directions with the same capacity.
    """
    flow = DinicMaxFlow()
    for u, v, capacity in edges:
        flow.add_edge(u, v, capacity, meta=(u, v))
        if not directed:
            flow.add_edge(v, u, capacity, meta=(u, v))
    value = flow.max_flow(source, sink)
    return value, flow.min_cut_edges(source, sink)
