"""Path algorithms over uncertain graphs."""

from .dijkstra import (
    hop_shortest_path,
    most_reliable_path,
    path_probability,
    reliability_dijkstra_all,
)
from .yen import paths_induced_edges, top_l_most_reliable_paths
from .layered import (
    ConstrainedPath,
    best_improvement,
    constrained_most_reliable_paths,
)
from .maxflow import DinicMaxFlow, min_cut

__all__ = [
    "hop_shortest_path",
    "most_reliable_path",
    "path_probability",
    "reliability_dijkstra_all",
    "paths_induced_edges",
    "top_l_most_reliable_paths",
    "ConstrainedPath",
    "best_improvement",
    "constrained_most_reliable_paths",
    "DinicMaxFlow",
    "min_cut",
]
