"""Random edge addition — the sanity-check baseline used in ablations."""

from __future__ import annotations

import random
from typing import List, Sequence

from .common import Edge, NewEdgeProbability, ProbEdge


def random_selection(
    candidates: Sequence[Edge],
    k: int,
    new_edge_prob: NewEdgeProbability,
    seed: int = 0,
) -> List[ProbEdge]:
    """Uniformly sample ``k`` candidate edges (without replacement)."""
    if k < 1:
        raise ValueError("k must be positive")
    rng = random.Random(seed)
    chosen = rng.sample(list(candidates), min(k, len(candidates)))
    return [(u, v, new_edge_prob(u, v)) for u, v in chosen]
