"""Eigenvalue-based baseline (Algorithm 2; Chen et al., TKDD 2016).

Maximizes the leading eigenvalue of the (probability-weighted) adjacency
matrix by edge addition: the eigen-gain of adding edge set ``E1`` is
approximated by ``sum u(i) v(j)`` over new edges ``(i, j)``, where ``u``
and ``v`` are the left/right leading eigenvectors.  Optimal endpoints
provably come from the top-``(k + d_in)`` left-scored and
top-``(k + d_out)`` right-scored nodes, so only that quadratic-in-``t``
block is searched.

Power iteration is implemented directly on the adjacency lists — no
dense matrix is materialized.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph
from .common import Edge, NewEdgeProbability, ProbEdge


def leading_eigen(
    graph: UncertainGraph,
    num_iterations: int = 100,
    tolerance: float = 1e-10,
    seed: int = 0,
) -> Tuple[float, Dict[int, float], Dict[int, float]]:
    """Leading eigenvalue with left and right eigenvectors.

    Power iteration on ``A`` (right vector) and ``A^T`` (left vector),
    where ``A[i, j] = p(i, j)``.  For undirected graphs the two vectors
    coincide.  Returns ``(lambda, left, right)`` keyed by node id.
    """
    nodes = list(graph.nodes())
    index = {u: i for i, u in enumerate(nodes)}
    n = len(nodes)
    if n == 0:
        return 0.0, {}, {}
    rng = np.random.default_rng(seed)

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for u, v, p in graph.edges():
        rows.append(index[u])
        cols.append(index[v])
        vals.append(p)
        if not graph.directed:
            rows.append(index[v])
            cols.append(index[u])
            vals.append(p)
    row_arr = np.array(rows, dtype=np.int64)
    col_arr = np.array(cols, dtype=np.int64)
    val_arr = np.array(vals, dtype=np.float64)

    def matvec(x: np.ndarray) -> np.ndarray:
        out = np.zeros(n)
        np.add.at(out, row_arr, val_arr * x[col_arr])
        return out

    def rmatvec(x: np.ndarray) -> np.ndarray:
        out = np.zeros(n)
        np.add.at(out, col_arr, val_arr * x[row_arr])
        return out

    def power(step) -> Tuple[float, np.ndarray]:
        x = rng.random(n) + 0.1
        x /= np.linalg.norm(x)
        eigenvalue = 0.0
        for _ in range(num_iterations):
            y = step(x)
            norm = np.linalg.norm(y)
            if norm <= tolerance:
                return 0.0, x
            y /= norm
            if np.linalg.norm(y - x) < tolerance:
                x = y
                eigenvalue = norm
                break
            x = y
            eigenvalue = norm
        return eigenvalue, x

    eigenvalue, right = power(matvec)
    if graph.directed:
        _, left = power(rmatvec)
    else:
        left = right
    left_map = {u: float(abs(left[index[u]])) for u in nodes}
    right_map = {u: float(abs(right[index[u]])) for u in nodes}
    return float(eigenvalue), left_map, right_map


def eigenvalue_selection(
    graph: UncertainGraph,
    k: int,
    new_edge_prob: NewEdgeProbability,
    candidates: Optional[Sequence[Edge]] = None,
    seed: int = 0,
) -> List[ProbEdge]:
    """Algorithm 2: top-k new edges by eigen-score product ``u(i) v(j)``.

    With a candidate set (post search-space elimination) the candidates
    themselves are ranked by eigen-score; otherwise the ``I x J`` block of
    top-scored endpoints is enumerated as in the paper.
    """
    if k < 1:
        raise ValueError("k must be positive")
    _, left, right = leading_eigen(graph, seed=seed)

    if candidates is not None:
        ranked = sorted(
            candidates,
            key=lambda e: -(left.get(e[0], 0.0) * right.get(e[1], 0.0)),
        )
        return [(u, v, new_edge_prob(u, v)) for u, v in ranked[:k]]

    d_in = max((len(graph.predecessors(u)) for u in graph.nodes()), default=0)
    d_out = max((len(graph.successors(u)) for u in graph.nodes()), default=0)
    top_i = sorted(left, key=lambda u: -left[u])[: k + d_in]
    top_j = sorted(right, key=lambda u: -right[u])[: k + d_out]
    scored: List[Tuple[float, int, int]] = []
    seen = set()
    for u in top_i:
        for v in top_j:
            if u == v or graph.has_edge(u, v):
                continue
            key = (u, v) if graph.directed or u <= v else (v, u)
            if key in seen:
                continue
            seen.add(key)
            scored.append((left[u] * right[v], key[0], key[1]))
    scored.sort(key=lambda item: -item[0])
    return [(u, v, new_edge_prob(u, v)) for _, u, v in scored[:k]]
