"""Shared helpers for edge-selection baselines.

Every selector returns the chosen edges as ``(u, v, p)`` triples ready to
be added to the graph; helpers here turn candidate ``(u, v)`` pairs into
such triples using a new-edge probability model (fixed ``zeta`` by
default, or any :class:`repro.graph.NewEdgeProbability`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Set, Tuple

from ..graph import UncertainGraph
from ..reliability.estimator import resolve_selection_backend

try:
    from ..engine.selection import SelectionGainKernel
except ImportError:  # pragma: no cover - numpy-less fallback
    SelectionGainKernel = None  # type: ignore[assignment,misc]

Edge = Tuple[int, int]
ProbEdge = Tuple[int, int, float]
NewEdgeProbability = Callable[[int, int], float]


def selection_kernel_for(
    graph: UncertainGraph,
    estimator,
    vectorized: Optional[bool] = None,
    kernel: Optional["SelectionGainKernel"] = None,
):
    """Resolve the batched gain kernel a selection loop should use.

    ``vectorized=None`` auto-selects: the kernel is used when the
    estimator advertises a shared-world backend
    (:meth:`~repro.reliability.estimator.ReliabilityEstimator.selection_backend`)
    and numpy is importable.  ``False`` forces the per-candidate
    estimator loop (benchmark baseline / exact parity with the legacy
    path); ``True`` demands the kernel and raises when the estimator
    cannot provide one (vectorized ``mc``/``lazy``/``rss``/``adaptive``
    all can; scalar estimators cannot).  A pre-built ``kernel`` (e.g.
    from :meth:`repro.api.Session.selection_kernel`, carrying the
    session's cached plan and world batch) is used as-is.  Backends
    carrying a ``make_batch`` factory (per-stratum ``rss``, per-block
    ``adaptive``) get a kernel that builds its base batch per query
    through that factory.
    """
    if vectorized is False:
        return None
    if kernel is not None:
        return kernel
    backend = resolve_selection_backend(estimator)
    if backend is None:
        if vectorized:
            raise ValueError(
                f"{type(estimator).__name__} has no shared-world selection "
                "backend; pass a vectorized registry estimator or "
                "vectorized=None to fall back to the per-candidate loop"
            )
        return None
    if SelectionGainKernel is None:  # pragma: no cover - numpy-less
        if vectorized:
            raise RuntimeError("vectorized selection requires numpy")
        return None
    num_samples, seed = backend
    return SelectionGainKernel(
        graph, num_samples, seed=seed,
        batch_factory=getattr(backend, "make_batch", None),
    )


def with_probabilities(
    candidates: Iterable[Edge],
    new_edge_prob: NewEdgeProbability,
) -> List[ProbEdge]:
    """Attach model probabilities to candidate pairs."""
    return [(u, v, new_edge_prob(u, v)) for u, v in candidates]


def all_missing_edges(
    graph: UncertainGraph,
    h: Optional[int] = None,
    forbidden_nodes: Optional[Set[int]] = None,
) -> List[Edge]:
    """The unrestricted candidate universe (optionally h-hop limited).

    With ``h`` set, only pairs within ``h`` hops in the topology are
    candidates (the paper's physical-constraint provision, §2.1 Remarks).
    O(n^2) in the worst case — intended for small graphs or post-
    elimination use.
    """
    forbidden = forbidden_nodes or set()
    if h is None:
        return [
            (u, v) for u, v in graph.missing_edges()
            if u not in forbidden and v not in forbidden
        ]
    candidates: List[Edge] = []
    for u in graph.nodes():
        if u in forbidden:
            continue
        for v in graph.within_hops(u, h):
            if v in forbidden or graph.has_edge(u, v):
                continue
            if not graph.directed and v < u:
                continue  # canonical orientation only
            candidates.append((u, v))
    return candidates


def dedupe_canonical(
    graph: UncertainGraph,
    candidates: Iterable[Edge],
) -> List[Edge]:
    """Canonicalize and de-duplicate candidate pairs."""
    seen: Set[Edge] = set()
    result: List[Edge] = []
    for u, v in candidates:
        if u == v:
            continue
        key = (u, v) if graph.directed or u <= v else (v, u)
        if key not in seen and not graph.has_edge(*key):
            seen.add(key)
            result.append(key)
    return result
