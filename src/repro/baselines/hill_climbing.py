"""Hill Climbing baseline (Algorithm 1).

Greedily adds the candidate edge with the maximum *marginal* reliability
gain, one edge per round, for ``k`` rounds.  Since Problem 1 is neither
submodular nor supermodular (Lemma 1), the greedy carries no
approximation guarantee, and the paper highlights its cold-start problem:
early rounds see many zero-gain candidates and pick arbitrarily.

This is the strongest-quality baseline in the paper's tables and also —
on the per-candidate path — the slowest:
``O(k * |candidates| * Z * (n + m))``.  Every vectorized registry
estimator routes through the selection-gain kernel
(:mod:`repro.engine.selection`): the first round costs two batch-BFS
sweeps plus ``O(Z/64)`` words per candidate, later rounds *resume* the
sweeps incrementally from each committed winner's endpoints, and the
base batch candidates are scored against follows the estimator's
sampling scheme (plain shared worlds for ``mc``/``lazy``, per-stratum
for ``rss``, per-block for ``adaptive``).

Both paths break ties by the lowest candidate index (the scalar scan
keeps the first maximum; the kernel's argmax does the same).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from .common import Edge, NewEdgeProbability, ProbEdge, selection_kernel_for


def hill_climbing(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
    vectorized: Optional[bool] = None,
    kernel=None,
) -> List[ProbEdge]:
    """Greedy marginal-gain selection of ``k`` edges (Algorithm 1).

    Parameters
    ----------
    vectorized:
        ``None`` (default) auto-selects the batched gain kernel when
        ``estimator`` qualifies (see
        :meth:`~repro.reliability.estimator.ReliabilityEstimator.selection_backend`);
        ``False`` forces the per-candidate estimator loop; ``True``
        requires the kernel and raises if the estimator cannot back it.
    kernel:
        Pre-built :class:`~repro.engine.selection.SelectionGainKernel`
        (e.g. a session's, sharing its cached plan and world batch).
    """
    if k < 1:
        raise ValueError("k must be positive")
    selected: List[ProbEdge] = []
    remaining: List[ProbEdge] = [
        (u, v, new_edge_prob(u, v)) for u, v in candidates
    ]
    gain_kernel = selection_kernel_for(graph, estimator, vectorized, kernel)
    if gain_kernel is not None:
        return gain_kernel.greedy_select(source, target, k, remaining)
    while len(selected) < k and remaining:
        best_index = -1
        best_value = -1.0
        for index, edge in enumerate(remaining):
            value = estimator.reliability(
                graph, source, target, [*selected, edge]
            )
            if value > best_value:
                best_value = value
                best_index = index
        selected.append(remaining.pop(best_index))
    return selected
