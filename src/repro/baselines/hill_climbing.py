"""Hill Climbing baseline (Algorithm 1).

Greedily adds the candidate edge with the maximum *marginal* reliability
gain, one edge per round, for ``k`` rounds.  Since Problem 1 is neither
submodular nor supermodular (Lemma 1), the greedy carries no
approximation guarantee, and the paper highlights its cold-start problem:
early rounds see many zero-gain candidates and pick arbitrarily.

This is the strongest-quality baseline in the paper's tables and also
the slowest: ``O(k * |candidates| * Z * (n + m))``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from .common import Edge, NewEdgeProbability, ProbEdge


def hill_climbing(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
) -> List[ProbEdge]:
    """Greedy marginal-gain selection of ``k`` edges (Algorithm 1)."""
    if k < 1:
        raise ValueError("k must be positive")
    selected: List[ProbEdge] = []
    remaining: List[ProbEdge] = [
        (u, v, new_edge_prob(u, v)) for u, v in candidates
    ]
    current = estimator.reliability(graph, source, target)
    while len(selected) < k and remaining:
        best_index = -1
        best_value = -1.0
        for index, edge in enumerate(remaining):
            value = estimator.reliability(
                graph, source, target, selected + [edge]
            )
            if value > best_value:
                best_value = value
                best_index = index
        selected.append(remaining.pop(best_index))
        current = best_value
    return selected
