"""Baseline edge-selection methods (§3 of the paper + multi-S/T competitors)."""

from .common import (
    Edge,
    NewEdgeProbability,
    ProbEdge,
    all_missing_edges,
    dedupe_canonical,
    selection_kernel_for,
    with_probabilities,
)
from .individual_topk import individual_top_k
from .hill_climbing import hill_climbing
from .centrality import (
    betweenness_centrality,
    betweenness_centrality_selection,
    degree_centrality,
    degree_centrality_selection,
)
from .eigen import eigenvalue_selection, leading_eigen
from .esssp import esssp_selection
from .ima import ima_selection
from .exact_solution import exact_solution
from .random_addition import random_selection

__all__ = [
    "Edge",
    "NewEdgeProbability",
    "ProbEdge",
    "all_missing_edges",
    "dedupe_canonical",
    "selection_kernel_for",
    "with_probabilities",
    "individual_top_k",
    "hill_climbing",
    "betweenness_centrality",
    "betweenness_centrality_selection",
    "degree_centrality",
    "degree_centrality_selection",
    "eigenvalue_selection",
    "leading_eigen",
    "esssp_selection",
    "ima_selection",
    "exact_solution",
    "random_selection",
]
