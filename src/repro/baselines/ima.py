"""IMA baseline: influence-maximizing edge addition.

Adaptation of Corò, D'Angelo & Velaj, "Recommending Links to Maximize
the Influence in Social Networks" (IJCAI 2019): add ``k`` edges (fixed
probability each) to maximize the independent-cascade influence spread
from the source set within the target set.

Exact marginal spread per candidate is too expensive to recompute for
every candidate in every round, so each round scores candidates with the
standard decomposition used by edge-addition IM heuristics:

``gain(u, v) ≈ P(S activates u) * p(u, v) * E[extra targets from v]``

where ``P(S activates u)`` comes from one shared Monte Carlo pass and
``E[extra targets from v]`` is approximated with most-reliable-path
probabilities to the not-yet-covered targets.  The chosen edge is then
*committed*, source-activation probabilities are re-estimated, and the
loop continues — so interactions across rounds are captured.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..graph import UncertainGraph
from ..paths.dijkstra import reliability_dijkstra_all
from ..reliability import MonteCarloEstimator
from .common import Edge, NewEdgeProbability, ProbEdge


def ima_selection(
    graph: UncertainGraph,
    sources: Sequence[int],
    targets: Sequence[int],
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    num_samples: int = 200,
    seed: int = 0,
) -> List[ProbEdge]:
    """Greedy influence-spread edge addition toward a target set."""
    if k < 1:
        raise ValueError("k must be positive")
    target_set = set(targets)
    selected: List[ProbEdge] = []
    remaining = list(candidates)
    for round_index in range(k):
        if not remaining:
            break
        estimator = MonteCarloEstimator(num_samples, seed=seed + round_index)
        activation = estimator.multi_source_reachability(
            graph, list(sources), extra_edges=selected
        )
        # Most-reliable-path probability from each node to each target,
        # computed as one reverse Dijkstra per target.
        to_target: Dict[int, Dict[int, float]] = {
            t: reliability_dijkstra_all(graph, t, extra_edges=selected, reverse=True)
            for t in target_set
        }
        uncovered_weight = {
            t: 1.0 - activation.get(t, 0.0) for t in target_set
        }
        best_index, best_score = -1, 0.0
        for index, (u, v) in enumerate(remaining):
            p = new_edge_prob(u, v)
            reach_u = activation.get(u, 0.0)
            if reach_u <= 0.0 or p <= 0.0:
                continue
            extra = sum(
                to_target[t].get(v, 0.0) * uncovered_weight[t]
                for t in target_set
            )
            score = reach_u * p * extra
            if score > best_score:
                best_score = score
                best_index = index
        if best_index < 0:
            # No candidate is reachable from the sources yet: fall back to
            # the candidate whose head is closest to a target.
            best_index = 0
        u, v = remaining.pop(best_index)
        selected.append((u, v, new_edge_prob(u, v)))
    return selected
