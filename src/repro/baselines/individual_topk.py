"""Individual Top-k baseline (§3.1).

Scores every candidate edge by the reliability gain of adding it *alone*
and returns the ``k`` highest scorers.  Fast but ignores interactions
between the selected edges, which the paper shows costs solution quality
(two edges completing the same path are each worthless alone).
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from .common import Edge, NewEdgeProbability, ProbEdge


def individual_top_k(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
) -> List[ProbEdge]:
    """Top-k candidate edges by *individual* reliability gain.

    Complexity: one reliability estimate per candidate —
    ``O(|candidates| * Z * (n + m))``.
    """
    if k < 1:
        raise ValueError("k must be positive")
    base = estimator.reliability(graph, source, target)
    scored: List[tuple] = []
    for u, v in candidates:
        p = new_edge_prob(u, v)
        gain = estimator.reliability(graph, source, target, [(u, v, p)]) - base
        scored.append((gain, u, v, p))
    scored.sort(key=lambda item: -item[0])
    return [(u, v, p) for _, u, v, p in scored[:k]]
