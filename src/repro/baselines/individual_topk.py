"""Individual Top-k baseline (§3.1).

Scores every candidate edge by the reliability gain of adding it *alone*
and returns the ``k`` highest scorers.  Fast but ignores interactions
between the selected edges, which the paper shows costs solution quality
(two edges completing the same path are each worthless alone).

On the per-candidate path this costs one reliability estimate per
candidate — ``O(|candidates| * Z * (n + m))``.  Every vectorized
registry estimator instead scores the whole candidate set against one
world batch through the selection-gain kernel
(:mod:`repro.engine.selection`) — two batch-BFS sweeps, then one coin
row + popcount per candidate, with the base batch following the
estimator's sampling scheme (shared i.i.d. worlds for ``mc``/``lazy``,
per-stratum for ``rss``, per-block for ``adaptive``).  Both paths are
stable under ties (equal gains keep candidate order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from .common import Edge, NewEdgeProbability, ProbEdge, selection_kernel_for


def individual_top_k(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
    vectorized: Optional[bool] = None,
    kernel=None,
) -> List[ProbEdge]:
    """Top-k candidate edges by *individual* reliability gain.

    ``vectorized`` / ``kernel`` select the batched gain kernel exactly
    as in :func:`~repro.baselines.hill_climbing.hill_climbing`.
    """
    if k < 1:
        raise ValueError("k must be positive")
    scored_edges: List[ProbEdge] = [
        (u, v, new_edge_prob(u, v)) for u, v in candidates
    ]
    gain_kernel = selection_kernel_for(graph, estimator, vectorized, kernel)
    if gain_kernel is not None:
        return gain_kernel.top_k(source, target, k, scored_edges)
    base = estimator.reliability(graph, source, target)
    scored: List[tuple] = []
    for u, v, p in scored_edges:
        gain = estimator.reliability(graph, source, target, [(u, v, p)]) - base
        scored.append((gain, u, v, p))
    scored.sort(key=lambda item: -item[0])
    return [(u, v, p) for _, u, v, p in scored[:k]]
