"""ESSSP baseline: expected-shortest-path-length minimization.

Adaptation of Parotsidis et al., "Centrality-Aware Link Recommendations"
(WSDM 2016), which the paper uses as a multi-source-target competitor:
add ``k`` edges minimizing the sum of expected shortest path lengths over
all source-target pairs.

Expected path length over an uncertain edge is modeled as ``1 / p`` (the
expected number of trials until the edge materializes), so short
low-uncertainty routes are preferred.  Each greedy round evaluates every
candidate edge ``(u, v)`` by the total improvement
``sum max(0, d(s,t) - [d(s,u) + 1/zeta + d(v,t)])`` using Dijkstra
distance maps from every source and to every target.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Tuple

from ..graph import UncertainGraph
from .common import Edge, NewEdgeProbability, ProbEdge


def _expected_length_dijkstra(
    graph: UncertainGraph,
    source: int,
    extra: List[ProbEdge],
    reverse: bool = False,
) -> Dict[int, float]:
    """Dijkstra with weights ``1 / p`` over graph plus accepted edges."""
    adjacency: Dict[int, List[Tuple[int, float]]] = {}

    def add(u: int, v: int, p: float) -> None:
        if p <= 0.0:
            return
        adjacency.setdefault(u, []).append((v, 1.0 / p))

    for u, v, p in graph.edges():
        if reverse:
            add(v, u, p)
            if not graph.directed:
                add(u, v, p)
        else:
            add(u, v, p)
            if not graph.directed:
                add(v, u, p)
    for u, v, p in extra:
        if reverse:
            add(v, u, p)
            if not graph.directed:
                add(u, v, p)
        else:
            add(u, v, p)
            if not graph.directed:
                add(v, u, p)

    dist = {source: 0.0}
    heap = [(0.0, source)]
    done = set()
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        for v, w in adjacency.get(u, ()):
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


def esssp_selection(
    graph: UncertainGraph,
    sources: Sequence[int],
    targets: Sequence[int],
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
) -> List[ProbEdge]:
    """Greedy k-round expected-shortest-path-length reduction."""
    if k < 1:
        raise ValueError("k must be positive")
    selected: List[ProbEdge] = []
    remaining = list(candidates)
    for _ in range(k):
        if not remaining:
            break
        from_source = {
            s: _expected_length_dijkstra(graph, s, selected) for s in sources
        }
        to_target = {
            t: _expected_length_dijkstra(graph, t, selected, reverse=True)
            for t in targets
        }
        best_index, best_score = -1, -math.inf
        for index, (u, v) in enumerate(remaining):
            p = new_edge_prob(u, v)
            if p <= 0.0:
                continue
            w_new = 1.0 / p
            score = 0.0
            for s in sources:
                d_su = from_source[s].get(u, math.inf)
                if math.isinf(d_su):
                    continue
                for t in targets:
                    d_vt = to_target[t].get(v, math.inf)
                    if math.isinf(d_vt):
                        continue
                    d_old = from_source[s].get(t, math.inf)
                    d_new = d_su + w_new + d_vt
                    if d_new < d_old:
                        if math.isinf(d_old):
                            # Newly connecting a pair dominates any
                            # shortening of an already-connected pair.
                            improvement = 1e6 / (1.0 + d_new)
                        else:
                            improvement = d_old - d_new
                        score += improvement
            if score > best_score:
                best_score = score
                best_index = index
        if best_index < 0:
            best_index = 0  # nothing scores: spend budget arbitrarily
        u, v = remaining.pop(best_index)
        selected.append((u, v, new_edge_prob(u, v)))
    return selected
