"""Exhaustive Exact Solution (ES) baseline — Table 11.

Enumerates every ``C(|candidates|, k)`` subset of candidate edges and
keeps the subset with the highest estimated reliability.  Exponential in
``k``; only run on Intel-Lab-scale inputs, exactly as the paper does.
"""

from __future__ import annotations

import itertools
import math
from typing import List, Sequence, Tuple

from ..graph import UncertainGraph
from ..reliability import ReliabilityEstimator
from .common import Edge, NewEdgeProbability, ProbEdge


def exact_solution(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    candidates: Sequence[Edge],
    new_edge_prob: NewEdgeProbability,
    estimator: ReliabilityEstimator,
    max_combinations: int = 2_000_000,
) -> List[ProbEdge]:
    """Best k-subset of candidates by exhaustive enumeration.

    Raises ``ValueError`` when the search space exceeds
    ``max_combinations`` — a guard against accidentally invoking ES on a
    large instance.
    """
    if k < 1:
        raise ValueError("k must be positive")
    n = len(candidates)
    size = min(k, n)
    total = math.comb(n, size)
    if total > max_combinations:
        raise ValueError(
            f"exact solution would enumerate {total} subsets "
            f"(> {max_combinations}); reduce the candidate set first"
        )
    prob_edges = [(u, v, new_edge_prob(u, v)) for u, v in candidates]
    best_subset: Tuple[ProbEdge, ...] = ()
    best_value = -1.0
    for subset in itertools.combinations(prob_edges, size):
        value = estimator.reliability(graph, source, target, list(subset))
        if value > best_value:
            best_value = value
            best_subset = subset
    return list(best_subset)
