"""Centrality-based baselines (§3.3) and Brandes betweenness.

Connect the most central (hub) nodes with new edges until the budget is
spent.  Two centrality notions from the paper:

* *degree centrality* — aggregated incident edge probabilities;
* *betweenness centrality* — number of shortest paths through a node,
  computed with Brandes' algorithm (unweighted), implemented from
  scratch below.

Both are query-agnostic, which is exactly the weakness the paper
demonstrates: they improve global connectivity, not a specific s-t pair.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from .common import Edge, NewEdgeProbability, ProbEdge


def degree_centrality(graph: UncertainGraph) -> Dict[int, float]:
    """Aggregated edge-probability degree per node."""
    return {u: graph.weighted_degree(u) for u in graph.nodes()}


def betweenness_centrality(
    graph: UncertainGraph,
    sample_sources: Optional[int] = None,
    seed: int = 0,
) -> Dict[int, float]:
    """Brandes' betweenness centrality (unweighted shortest paths).

    ``sample_sources`` enables the standard source-sampled approximation
    for larger graphs; ``None`` runs all sources exactly.
    """
    import random as _random

    nodes = list(graph.nodes())
    centrality = {u: 0.0 for u in nodes}
    if sample_sources is not None and sample_sources < len(nodes):
        rng = _random.Random(seed)
        sources = rng.sample(nodes, sample_sources)
        scale = len(nodes) / sample_sources
    else:
        sources = nodes
        scale = 1.0
    for s in sources:
        # Single-source shortest-path DAG accumulation (Brandes 2001).
        stack: List[int] = []
        pred: Dict[int, List[int]] = {u: [] for u in nodes}
        sigma: Dict[int, float] = {u: 0.0 for u in nodes}
        dist: Dict[int, int] = {}
        sigma[s] = 1.0
        dist[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            stack.append(u)
            for v in graph.successors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
                    pred[v].append(u)
        delta = {u: 0.0 for u in nodes}
        while stack:
            w = stack.pop()
            for u in pred[w]:
                delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w])
            if w != s:
                centrality[w] += delta[w] * scale
        del pred, sigma, delta
    return centrality


def _connect_top_nodes(
    graph: UncertainGraph,
    scores: Dict[int, float],
    k: int,
    new_edge_prob: NewEdgeProbability,
    candidates: Optional[Sequence[Edge]] = None,
) -> List[ProbEdge]:
    """Pick k missing edges between the highest-scoring node pairs.

    When a candidate set is supplied (post search-space elimination),
    candidates are ranked by the product of endpoint scores; otherwise
    pairs of top-central nodes are enumerated best-first.
    """
    if candidates is not None:
        ranked = sorted(
            candidates,
            key=lambda e: -(scores.get(e[0], 0.0) * max(scores.get(e[1], 0.0), 1e-12)),
        )
        return [(u, v, new_edge_prob(u, v)) for u, v in ranked[:k]]
    # Unrestricted: consider pairs among the ~top hub nodes only.
    top_count = max(2 * k + 2, 16)
    hubs = sorted(scores, key=lambda u: -scores[u])[:top_count]
    pairs: List[Tuple[float, int, int]] = []
    for i, u in enumerate(hubs):
        others = hubs if graph.directed else hubs[i + 1:]
        for v in others:
            if u == v or graph.has_edge(u, v):
                continue
            pairs.append((scores[u] * scores[v], u, v))
    pairs.sort(key=lambda item: -item[0])
    selected: List[ProbEdge] = []
    seen: Set[Edge] = set()
    for _, u, v in pairs:
        key = (u, v) if graph.directed or u <= v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        selected.append((key[0], key[1], new_edge_prob(key[0], key[1])))
        if len(selected) >= k:
            break
    return selected


def degree_centrality_selection(
    graph: UncertainGraph,
    k: int,
    new_edge_prob: NewEdgeProbability,
    candidates: Optional[Sequence[Edge]] = None,
) -> List[ProbEdge]:
    """Connect hub nodes by aggregated-probability degree (§3.3)."""
    return _connect_top_nodes(
        graph, degree_centrality(graph), k, new_edge_prob, candidates
    )


def betweenness_centrality_selection(
    graph: UncertainGraph,
    k: int,
    new_edge_prob: NewEdgeProbability,
    candidates: Optional[Sequence[Edge]] = None,
    sample_sources: Optional[int] = 64,
    seed: int = 0,
) -> List[ProbEdge]:
    """Connect hub nodes by betweenness centrality (§3.3)."""
    scores = betweenness_centrality(graph, sample_sources=sample_sources, seed=seed)
    return _connect_top_nodes(graph, scores, k, new_edge_prob, candidates)
