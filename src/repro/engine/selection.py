"""Batched candidate-gain kernel: every candidate edge against one
shared world batch.

Greedy selection (hill climbing, individual top-k) is the paper's
quality frontier and its cost wall: one round of the naive greedy
re-estimates reliability once per candidate — ``O(|C| * Z * (n + m))``
per round.  This kernel collapses a round to **two batch-BFS sweeps
plus bitwise ops**: one forward sweep from ``s`` and one reverse sweep
into ``t`` over the current graph-plus-selected overlay, after which
every candidate's marginal gain is a seeded coin row plus
AND/OR + popcount over uint64 words — ``O(Z / 64)`` words per
candidate.

Exactness of the single-edge gain identity
------------------------------------------
Fix one sampled world ``G_i`` (base graph plus already-selected edges,
each with its sampled state) and one candidate edge ``e = (u, v)`` with
its own independent coin ``c_i``.  Any ``s``-``t`` path in ``G_i + e``
either avoids ``e`` — then it is an ``s``-``t`` path of ``G_i`` — or it
can be shortened to a *simple* path that uses ``e`` exactly once, and a
simple path using ``e`` once decomposes into an ``s``⇝``u`` prefix and
a ``v``⇝``t`` suffix inside ``G_i`` (or ``s``⇝``v`` and ``u``⇝``t`` for
the other orientation of an undirected edge).  Hence, bit-exactly per
world::

    s⇝t in G_i + e  ⇔  s⇝t in G_i
                        OR (c_i AND ((s⇝u AND v⇝t) OR (s⇝v AND u⇝t)))

One forward batch BFS gives every ``s⇝x`` bitmask (``F``), one reverse
batch BFS over :meth:`~repro.engine.csr.QueryPlan.reverse_view` gives
every ``x⇝t`` bitmask (``R``), and the candidate's new-world hits are
``c AND (F[u] & R[v] | F[v] & R[u]) AND NOT already`` — no
approximation is involved: the kernel's per-candidate estimate equals
the brute-force estimate obtained by appending the candidate (with the
same coin row) to the batch and re-running the full BFS.

Incremental restarts across greedy rounds
-----------------------------------------
Committing a winner ``(u, v)`` with coin row ``c`` changes
reachability *only* in worlds where ``c`` landed heads, and only
downstream of the winner's endpoints.  Because batch reachability is
monotone (the old fixpoint is a valid partial state of the new one),
the next round's forward mask is obtained by seeding
``F[v] |= c & F[u]`` (plus the swap for undirected edges) and resuming
the sweep from the endpoints whose rows changed
(:func:`~repro.engine.kernel.batch_reach_resume`) — instead of
re-sweeping all ``Z`` worlds from ``s`` and ``t`` from scratch.  The
restart converges to the exact same fixpoint bit for bit (pinned by
``tests/test_selection_incremental.py``); ``incremental=False`` keeps
the full re-sweep for comparison, and
``benchmarks/bench_sweep_gated.py`` gates the per-round speedup.

Determinism & tie-breaking
--------------------------
Candidate coin rows are drawn from a generator seeded on
``(kernel seed, round index, candidate endpoints)`` — independent of
the base batch and of candidate *position*, so duplicated candidates
draw identical coins and tie exactly.  Ties (equal popcount) are broken
by the **lowest candidate index** (numpy ``argmax`` / stable sort
first-max), matching the scalar greedy's first-maximum scan; the
contract is pinned by ``tests/test_selection_semantics.py``.

Custom base batches (per-stratum / per-block backends)
------------------------------------------------------
The gain identity above is exact *per world* no matter how the worlds
were sampled, so the kernel also accepts a ``batch_factory`` building
a query-specific base batch: recursive stratified sampling supplies a
level-1 stratified batch (proportional allocation keeps the uniform
batch average equal to the stratified estimate) and adaptive MC
supplies a per-block batch grown until its confidence interval is
tight — which is how ``rss`` and ``adaptive`` estimators drive
vectorized selection (see
:meth:`repro.reliability.estimator.ReliabilityEstimator.selection_backend`).
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph
from .batch import _MULTI_SOURCE_WORD_BUDGET, resolve_fuse_max_words
from .csr import (
    ProbEdge,
    QueryPlan,
    canonical_key,
    compile_plan,
    extend_with_overlay,
)
from .kernel import (
    WorldBatch,
    batch_reach,
    batch_reach_multi,
    batch_reach_resume,
    bernoulli_row,
    bernoulli_row_at,
    extend_batch,
    popcount,
    sample_worlds,
    unpack_word_row,
)

Pair = Tuple[int, int]

#: ``factory(graph, plan, source, target) -> WorldBatch`` building a
#: query-specific base batch (see the module docstring).
BatchFactory = Callable[
    [UncertainGraph, QueryPlan, int, int], WorldBatch
]

#: Factory-built query batches cached per kernel (FIFO bound, matching
#: the memory discipline of ``Session.world_batch``).
_MAX_QUERY_BATCHES = 8

#: Aggregates supported by :meth:`SelectionGainKernel.greedy_select_multi`.
_AGGREGATES = {
    "avg": lambda counts: counts.mean(axis=0),
    "average": lambda counts: counts.mean(axis=0),
    "min": lambda counts: counts.min(axis=0),
    "minimum": lambda counts: counts.min(axis=0),
    "max": lambda counts: counts.max(axis=0),
    "maximum": lambda counts: counts.max(axis=0),
}


def _edge_entropy(u: object, v: object) -> int:
    """Stable non-negative entropy word for a candidate's endpoints.

    Identity is the endpoint pair — not the candidate's list position —
    so duplicate candidates draw identical coin rows and tie
    bit-for-bit, and works for any hashable node labels.  Callers pass
    the *canonical* key (undirected ``(v, u)`` folds onto ``(u, v)``;
    see :meth:`SelectionGainKernel.candidate_rows`).
    """
    return zlib.crc32(repr((u, v)).encode("utf-8"))


class SelectionGainKernel:
    """Batched per-candidate gain evaluation over one shared world batch.

    Parameters
    ----------
    graph:
        The base graph candidates would be added to.
    num_samples:
        Worlds per estimate (``Z``).
    seed:
        Root seed: the base batch is the batch a fresh engine seeded
        ``seed`` would sample, and candidate coin rows derive from
        ``(seed, round, endpoints)``, so selections are deterministic
        regardless of any sampler's prior call history.
    plan / batch:
        Optional pre-compiled plan and pre-sampled batch (e.g. a
        :class:`repro.api.Session`'s cached ones).  ``batch`` must be
        the batch a fresh ``default_rng(seed)`` would sample over
        ``plan`` for results to be reproducible across call sites.
    batch_factory:
        Query-specific base-batch builder
        (``factory(graph, plan, source, target) -> WorldBatch``) for
        estimators whose sampling is conditioned per query — the
        per-stratum (``rss``) and per-block (``adaptive``) selection
        backends.  Mutually exclusive with ``batch``; built lazily on
        the first non-degenerate query and cached per ``(source,
        target)``.
    incremental:
        Maintain the forward/reverse reached masks across greedy
        rounds by restarting sweeps from each committed winner's
        endpoints (monotone-exact; see the module docstring).
        ``False`` re-sweeps from scratch every round — bit-identical,
        only slower.
    fuse_max_words:
        Multi-source fusion threshold for the multi-pair mask sweeps
        (``None`` -> the measured
        :data:`repro.engine.batch.DEFAULT_FUSE_MAX_WORDS`, ``0``
        forces per-source sweeps) — a perf-only knob, results are
        bit-identical.  Sessions forward their own knob here.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        num_samples: int,
        seed: int = 0,
        plan: Optional[QueryPlan] = None,
        batch: Optional[WorldBatch] = None,
        batch_factory: Optional[BatchFactory] = None,
        incremental: bool = True,
        fuse_max_words: Optional[int] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if batch is not None and batch_factory is not None:
            raise ValueError("pass either batch or batch_factory, not both")
        self.graph = graph
        self.num_samples = int(num_samples)
        self.seed = seed
        self.incremental = incremental
        self.fuse_max_words = resolve_fuse_max_words(fuse_max_words)
        self.batch_factory = batch_factory
        self.plan = plan if plan is not None else compile_plan(graph)
        if batch is not None:
            self.batch: Optional[WorldBatch] = batch
        elif batch_factory is None:
            self.batch = sample_worlds(
                self.plan, self.num_samples, np.random.default_rng(seed)
            )
        else:
            self.batch = None
            self._query_batches: Dict[Pair, WorldBatch] = {}

    def base_batch(self, source: int, target: int) -> WorldBatch:
        """The base world batch gains for ``(source, target)`` use.

        The shared eagerly-sampled batch, unless the kernel was built
        with a ``batch_factory`` — then the factory's query-specific
        batch, built once per ``(source, target)`` and cached.
        """
        if self.batch is not None:
            return self.batch
        key = (source, target)
        cached = self._query_batches.get(key)
        if cached is None:
            cached = self.batch_factory(
                self.graph, self.plan, source, target
            )
            while len(self._query_batches) >= _MAX_QUERY_BATCHES:
                # FIFO bound, like the session's world-batch cache:
                # long-lived kernels serving many (s, t) queries must
                # not accumulate one full batch per pair forever.
                self._query_batches.pop(next(iter(self._query_batches)))
            self._query_batches[key] = cached
        return cached

    # ------------------------------------------------------------------
    # coin rows
    # ------------------------------------------------------------------
    def candidate_rows(
        self,
        round_index: int,
        edges: Sequence[ProbEdge],
        batch: Optional[WorldBatch] = None,
    ) -> np.ndarray:
        """Bit-packed coin rows ``(len(edges), W)`` for one greedy round.

        Each row is an independent Bernoulli(``p``) draw per world,
        seeded ``(seed, round, canonical endpoints)``: fresh coins
        every round, identical coins for identical candidates within a
        round.  Endpoints are canonicalized like the edge table
        (undirected ``(v, u)`` folds onto ``(u, v)``), so the two
        orientations of one undirected candidate draw the same coins
        and tie exactly — matching the scalar path, whose estimates are
        orientation-independent by construction.

        ``batch`` fixes the word layout the rows must match (factory
        batches may carry interior pad bits); defaults to the kernel's
        shared batch, for which the rows are bit-identical to the
        historical prefix-layout ones.  Factory kernels have no shared
        batch — pass the query's (see :meth:`base_batch`).
        """
        if batch is None:
            batch = self.batch
            if batch is None:
                raise ValueError(
                    "this kernel builds its base batch per query "
                    "(batch_factory); pass batch=base_batch(source, "
                    "target) explicitly"
                )
        directed = self.plan.directed
        rows = np.zeros(
            (len(edges), batch.num_words), dtype=np.uint64
        )
        # Only factory batches can carry interior pad bits; plain
        # prefix-layout batches keep the fast path (bit-identical
        # either way — pinned in tests/test_selection_incremental).
        # The valid-position scan is hoisted out of the per-row loop.
        positions = (
            np.flatnonzero(unpack_word_row(batch.valid))
            if self.batch_factory is not None
            else None
        )
        for i, (u, v, p) in enumerate(edges):
            if p <= 0.0:
                continue
            rng = np.random.default_rng(
                [self.seed, round_index,
                 _edge_entropy(*canonical_key(directed, u, v))]
            )
            if positions is None:
                rows[i] = bernoulli_row(p, batch.num_samples, rng)
            else:
                rows[i] = bernoulli_row_at(
                    p, batch.num_samples, rng, positions,
                    batch.num_words * 64,
                )
        return rows

    # ------------------------------------------------------------------
    # single-pair selection
    # ------------------------------------------------------------------
    def individual_gains(
        self,
        source: int,
        target: int,
        candidates: Sequence[ProbEdge],
    ) -> np.ndarray:
        """New-world hit counts of adding each candidate *alone*.

        Returns an int64 array aligned with ``candidates``; the
        reliability gain estimate of candidate ``j`` is
        ``gains[j] / num_samples``.  Exact against the shared batch (see
        the module docstring), hence always non-negative.
        """
        candidates = list(candidates)
        src = self.plan.node_index(source)
        dst = self.plan.node_index(target)
        if source == target or src is None or dst is None:
            return np.zeros(len(candidates), dtype=np.int64)
        batch = self.base_batch(source, target)
        forward = batch_reach(self.plan, batch, [src])
        reverse = batch_reach(self.plan.reverse_view(), batch, [dst])
        rows = self.candidate_rows(0, candidates, batch)
        return self._gains(self.plan, forward, reverse, dst, candidates, rows)

    def top_k(
        self,
        source: int,
        target: int,
        k: int,
        candidates: Sequence[ProbEdge],
    ) -> List[ProbEdge]:
        """Individual Top-k: the ``k`` best candidates by solo gain.

        Stable-sorted, so equal gains preserve candidate order — the
        same tie behavior as the scalar baseline's stable sort.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidates = list(candidates)
        gains = self.individual_gains(source, target, candidates)
        order = np.argsort(-gains, kind="stable")
        return [candidates[int(i)] for i in order[:k]]

    def greedy_select(
        self,
        source: int,
        target: int,
        k: int,
        candidates: Sequence[ProbEdge],
    ) -> List[ProbEdge]:
        """Hill climbing: ``k`` rounds of batched marginal-gain argmax.

        Round 0 costs one forward and one reverse batch BFS; later
        rounds *resume* those sweeps from the previous winner's
        endpoints restricted to the worlds where its coin landed heads
        (monotone-exact, see the module docstring), then ``O(Z/64)``
        words per candidate.  The winner's coin row is appended to the
        batch, so the next round's "current" reliability is conditioned
        on the exact worlds in which the winner was evaluated — one
        persistent world batch across the whole selection.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidates = list(candidates)
        selected: List[ProbEdge] = []
        remaining = list(range(len(candidates)))
        plan = self.plan
        src = plan.node_index(source)
        dst = plan.node_index(target)
        # Degenerate queries (s == t, or an endpoint the graph has never
        # seen) have constant objective: the scalar greedy sees all-equal
        # values and always pops the lowest remaining index.
        degenerate = source == target or src is None or dst is None
        batch = None if degenerate else self.base_batch(source, target)
        forward: Optional[np.ndarray] = None
        reverse: Optional[np.ndarray] = None
        while len(selected) < k and remaining:
            if degenerate:
                selected.append(candidates[remaining.pop(0)])
                continue
            if forward is None:
                forward = batch_reach(plan, batch, [src])
                reverse = batch_reach(plan.reverse_view(), batch, [dst])
            round_index = len(selected)
            pool = [candidates[j] for j in remaining]
            rows = self.candidate_rows(round_index, pool, batch)
            gains = self._gains(plan, forward, reverse, dst, pool, rows)
            best = int(np.argmax(gains))  # first max = lowest index
            edge = candidates[remaining.pop(best)]
            selected.append(edge)
            if len(selected) >= k or not remaining:
                break  # no further rounds to prepare state for
            plan = extend_with_overlay(plan, [edge])
            batch = extend_batch(batch, rows[best][None, :])
            if self.incremental:
                forward, reverse = self._advance_masks(
                    plan, batch, forward, reverse, edge, rows[best]
                )
            else:
                forward = reverse = None  # full re-sweep next round
        return selected

    # ------------------------------------------------------------------
    # multi-pair selection (aggregate objectives, Tables 23-25)
    # ------------------------------------------------------------------
    def greedy_select_multi(
        self,
        pairs: Sequence[Pair],
        k: int,
        candidates: Sequence[ProbEdge],
        aggregate: str = "avg",
    ) -> List[ProbEdge]:
        """Hill climbing on an aggregate of several ``(s, t)`` pairs.

        Round 0 runs one frontier-gated fused multi-source sweep over
        the distinct sources (:func:`~repro.engine.kernel.batch_reach_multi`)
        and one over the distinct targets of the reverse plan; every
        candidate's updated per-pair hit counts are then pure bitwise
        ops.  The aggregate (``avg`` / ``min`` / ``max``) is taken over
        the pair axis and the first-max candidate wins.  Later rounds
        advance every maintained mask incrementally from the committed
        winner's endpoints (worlds where its coin landed heads) instead
        of re-sweeping, exactly like :meth:`greedy_select`.  The scalar
        equivalent re-runs ``pair_reliabilities`` once per candidate
        per round; matching its dict-valued objective, duplicate pairs
        are collapsed before aggregation (each distinct pair counts
        once).  With a ``batch_factory``, the first pair seeds the
        factory (one shared batch must serve every pair).
        """
        if k < 1:
            raise ValueError("k must be positive")
        try:
            agg = _AGGREGATES[aggregate]
        except KeyError:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; expected one of "
                f"{sorted(_AGGREGATES)}"
            ) from None
        pairs = list(dict.fromkeys(pairs))  # dedupe, preserve order
        if not pairs:
            raise ValueError("pairs must be non-empty")
        candidates = list(candidates)
        selected: List[ProbEdge] = []
        remaining = list(range(len(candidates)))
        plan = self.plan
        # Seed a query-conditioned factory with the first *useful* pair:
        # a degenerate one (s == t, unknown endpoint) would collapse an
        # adaptive backend's shared batch to a single block for every
        # pair in the workload.
        seed_pair = next(
            (
                (s, t) for s, t in pairs
                if s != t
                and plan.node_index(s) is not None
                and plan.node_index(t) is not None
            ),
            pairs[0],
        )
        batch = self.base_batch(*seed_pair)
        forward: Optional[Dict[int, np.ndarray]] = None
        reverse: Optional[Dict[int, np.ndarray]] = None
        while len(selected) < k and remaining:
            if forward is None:
                forward, reverse = self._pair_masks(plan, batch, pairs)
            round_index = len(selected)
            pool = [candidates[j] for j in remaining]
            rows = self.candidate_rows(round_index, pool, batch)
            counts = self._pair_counts(
                plan, batch, pairs, pool, rows, forward, reverse
            )
            best = int(np.argmax(agg(counts)))  # first max = lowest index
            edge = candidates[remaining.pop(best)]
            selected.append(edge)
            if len(selected) >= k or not remaining:
                break
            plan = extend_with_overlay(plan, [edge])
            batch = extend_batch(batch, rows[best][None, :])
            if self.incremental:
                row = rows[best]
                forward = {
                    s: self._advance_forward(plan, batch, mask, edge, row)
                    for s, mask in forward.items()
                }
                reverse = {
                    t: self._advance_reverse(plan, batch, mask, edge, row)
                    for t, mask in reverse.items()
                }
                # A pair endpoint unknown to the base graph may have
                # just been interned by the committed overlay edge;
                # give it a fresh mask (the per-round rebuild used to
                # pick these up implicitly).
                for s, t in pairs:
                    si = plan.node_index(s)
                    if si is not None and s not in forward:
                        forward[s] = batch_reach(plan, batch, [si])
                    ti = plan.node_index(t)
                    if ti is not None and t not in reverse:
                        reverse[t] = batch_reach(
                            plan.reverse_view(), batch, [ti]
                        )
            else:
                forward = reverse = None
        return selected

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _gains(
        self,
        plan: QueryPlan,
        forward: np.ndarray,
        reverse: np.ndarray,
        dst: int,
        pool: Sequence[ProbEdge],
        rows: np.ndarray,
    ) -> np.ndarray:
        """New-world hit counts for one round's candidate pool.

        ``forward`` / ``reverse`` are the round's reached masks (fresh
        sweeps or incrementally maintained — identical either way);
        the pool is scored in one vectorized bitwise pass.
        """
        already = forward[dst]
        via = self._via_masks(
            plan, forward, reverse, self._resolve_endpoints(plan, pool)
        )
        # ~already sets pad bits, but coin rows keep pad bits zero, so
        # the AND chain stays pad-clean and popcounts stay exact.
        new_hits = rows & via & ~already[None, :]
        return popcount(new_hits).sum(axis=1, dtype=np.int64)

    def _advance_masks(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        forward: np.ndarray,
        reverse: np.ndarray,
        edge: ProbEdge,
        row: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fold a committed winner into the maintained ``(F, R)`` masks."""
        return (
            self._advance_forward(plan, batch, forward, edge, row),
            self._advance_reverse(plan, batch, reverse, edge, row),
        )

    def _advance_forward(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        reached: np.ndarray,
        edge: ProbEdge,
        row: np.ndarray,
    ) -> np.ndarray:
        """Resume a forward mask after committing ``edge`` with ``row``."""
        u, v, _p = edge
        return self._advance(
            plan, batch, reached, plan.node_index(u), plan.node_index(v),
            row,
        )

    def _advance_reverse(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        reached: np.ndarray,
        edge: ProbEdge,
        row: np.ndarray,
    ) -> np.ndarray:
        """Resume a reverse (into-target) mask after committing ``edge``.

        On the reverse plan the committed arc ``u -> v`` is traversed
        ``v -> u``: ``u`` reaches the target via ``v`` in worlds where
        the winner's coin landed heads.
        """
        u, v, _p = edge
        return self._advance(
            plan.reverse_view(), batch, reached,
            plan.node_index(v), plan.node_index(u), row,
        )

    @staticmethod
    def _advance(
        plan: QueryPlan,
        batch: WorldBatch,
        reached: np.ndarray,
        from_idx: Optional[int],
        to_idx: Optional[int],
        row: np.ndarray,
    ) -> np.ndarray:
        """Seed the winner's newly-reachable worlds and resume the sweep.

        ``reached[to] |= row & reached[from]`` (and the swap for
        undirected plans) is exactly the set of worlds the new edge
        connects that weren't connected before; restarting the sweep
        from the endpoints whose rows changed converges to the full
        re-sweep's fixpoint because reachability is monotone
        (:func:`~repro.engine.kernel.batch_reach_resume`).  No change
        means the mask already is the fixpoint and the sweep is
        skipped entirely.
        """
        if reached.shape[0] < plan.num_nodes:
            # The winner introduced overlay-only endpoints: their rows
            # start all-zero (unreachable until an edge connects them).
            pad = np.zeros(
                (plan.num_nodes - reached.shape[0], reached.shape[1]),
                dtype=np.uint64,
            )
            reached = np.concatenate([reached, pad])
        if from_idx is None or to_idx is None:  # pragma: no cover
            return reached
        frontier: List[int] = []
        new_to = row & reached[from_idx] & ~reached[to_idx]
        if new_to.any():
            reached[to_idx] |= new_to
            frontier.append(to_idx)
        if not plan.directed:
            new_from = row & reached[to_idx] & ~reached[from_idx]
            if new_from.any():
                reached[from_idx] |= new_from
                frontier.append(from_idx)
        if frontier:
            batch_reach_resume(plan, batch, reached, frontier)
        return reached

    @staticmethod
    def _resolve_endpoints(
        plan: QueryPlan,
        pool: Sequence[ProbEdge],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(ui, vi, known)`` endpoint arrays for a pool.

        Depends only on ``(plan, pool)`` — resolved once per round and
        reused across every pair of a multi-pair objective.
        """
        n = len(pool)
        ui = np.zeros(n, dtype=np.int64)
        vi = np.zeros(n, dtype=np.int64)
        known = np.ones(n, dtype=bool)
        for i, (u, v, _p) in enumerate(pool):
            a = plan.node_index(u)
            b = plan.node_index(v)
            if a is None or b is None:
                # A single new edge to a node outside the graph cannot
                # lie on any s-t path; its gain is structurally zero.
                known[i] = False
            else:
                ui[i] = a
                vi[i] = b
        return ui, vi, known

    @staticmethod
    def _via_masks(
        plan: QueryPlan,
        forward: np.ndarray,
        reverse: np.ndarray,
        endpoints: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Per-candidate ``s⇝u AND v⇝t`` (plus swap when undirected)."""
        ui, vi, known = endpoints
        via = forward[ui] & reverse[vi]
        if not plan.directed:
            via |= forward[vi] & reverse[ui]
        via[~known] = 0
        return via

    def _pair_masks(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        pairs: Sequence[Pair],
    ) -> Tuple[Dict[int, np.ndarray], Dict[int, np.ndarray]]:
        """Forward masks per distinct source, reverse per distinct target.

        Both directions run as one frontier-gated fused multi-source
        sweep (:func:`~repro.engine.kernel.batch_reach_multi`) — the
        wide-batch fusion and the selection kernel sharing one code
        path.  Slices are copied out so each mask can be advanced
        independently across rounds.
        """
        sources: List[int] = []
        targets: List[int] = []
        for s, t in pairs:
            if plan.node_index(s) is not None and s not in sources:
                sources.append(s)
            if plan.node_index(t) is not None and t not in targets:
                targets.append(t)
        # Honor the fusion knob (0 -> per-source sweeps) and chunk
        # fused groups by the reached-state word budget (S * W * n
        # words per pass), like the session layer's pair sweeps.
        if batch.num_words > self.fuse_max_words:
            chunk = 1
        else:
            chunk = max(
                1,
                _MULTI_SOURCE_WORD_BUDGET
                // max(plan.num_nodes * batch.num_words, 1),
            )
        forward: Dict[int, np.ndarray] = {}
        reverse: Dict[int, np.ndarray] = {}
        for out, nodes, sweep_plan in (
            (forward, sources, plan),
            (reverse, targets, plan.reverse_view()),
        ):
            for lo in range(0, len(nodes), chunk):
                group = nodes[lo:lo + chunk]
                if len(group) == 1:
                    out[group[0]] = batch_reach(
                        sweep_plan, batch,
                        [plan.node_index(group[0])],
                    )
                    continue
                fused = batch_reach_multi(
                    sweep_plan, batch,
                    [plan.node_index(n) for n in group],
                )
                for i, n in enumerate(group):
                    out[n] = np.ascontiguousarray(fused[:, i])
        return forward, reverse

    def _pair_counts(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        pairs: Sequence[Pair],
        pool: Sequence[ProbEdge],
        rows: np.ndarray,
        forward: Dict[int, np.ndarray],
        reverse: Dict[int, np.ndarray],
    ) -> np.ndarray:
        """Updated hit counts ``(num_pairs, num_candidates)`` per pair.

        Entry ``[p, j]`` is the number of worlds in which pair ``p`` is
        connected after adding candidate ``j`` alone — the exact batch
        count against the round's maintained masks.
        """
        endpoints = self._resolve_endpoints(plan, pool)
        counts = np.empty((len(pairs), len(pool)), dtype=np.int64)
        for p_i, (s, t) in enumerate(pairs):
            if s == t:
                counts[p_i] = batch.num_samples
                continue
            ti = plan.node_index(t)
            if s not in forward or ti is None:
                counts[p_i] = 0
                continue
            already = forward[s][ti]
            base = int(popcount(already).sum())
            via = self._via_masks(plan, forward[s], reverse[t], endpoints)
            new_hits = rows & via & ~already[None, :]
            counts[p_i] = base + popcount(new_hits).sum(
                axis=1, dtype=np.int64
            )
        return counts
