"""Batched candidate-gain kernel: every candidate edge against one
shared world batch.

Greedy selection (hill climbing, individual top-k) is the paper's
quality frontier and its cost wall: one round of the naive greedy
re-estimates reliability once per candidate — ``O(|C| * Z * (n + m))``
per round.  This kernel collapses a round to **two batch-BFS sweeps
plus bitwise ops**: one forward sweep from ``s`` and one reverse sweep
into ``t`` over the current graph-plus-selected overlay, after which
every candidate's marginal gain is a seeded coin row plus
AND/OR + popcount over uint64 words — ``O(Z / 64)`` words per
candidate.

Exactness of the single-edge gain identity
------------------------------------------
Fix one sampled world ``G_i`` (base graph plus already-selected edges,
each with its sampled state) and one candidate edge ``e = (u, v)`` with
its own independent coin ``c_i``.  Any ``s``-``t`` path in ``G_i + e``
either avoids ``e`` — then it is an ``s``-``t`` path of ``G_i`` — or it
can be shortened to a *simple* path that uses ``e`` exactly once, and a
simple path using ``e`` once decomposes into an ``s``⇝``u`` prefix and
a ``v``⇝``t`` suffix inside ``G_i`` (or ``s``⇝``v`` and ``u``⇝``t`` for
the other orientation of an undirected edge).  Hence, bit-exactly per
world::

    s⇝t in G_i + e  ⇔  s⇝t in G_i
                        OR (c_i AND ((s⇝u AND v⇝t) OR (s⇝v AND u⇝t)))

One forward batch BFS gives every ``s⇝x`` bitmask (``F``), one reverse
batch BFS over :meth:`~repro.engine.csr.QueryPlan.reverse_view` gives
every ``x⇝t`` bitmask (``R``), and the candidate's new-world hits are
``c AND (F[u] & R[v] | F[v] & R[u]) AND NOT already`` — no
approximation is involved: the kernel's per-candidate estimate equals
the brute-force estimate obtained by appending the candidate (with the
same coin row) to the batch and re-running the full BFS.

Determinism & tie-breaking
--------------------------
Candidate coin rows are drawn from a generator seeded on
``(kernel seed, round index, candidate endpoints)`` — independent of
the base batch and of candidate *position*, so duplicated candidates
draw identical coins and tie exactly.  Ties (equal popcount) are broken
by the **lowest candidate index** (numpy ``argmax`` / stable sort
first-max), matching the scalar greedy's first-maximum scan; the
contract is pinned by ``tests/test_selection_semantics.py``.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph
from .csr import (
    ProbEdge,
    QueryPlan,
    canonical_key,
    compile_plan,
    extend_with_overlay,
)
from .kernel import (
    WorldBatch,
    batch_reach,
    bernoulli_row,
    extend_batch,
    popcount,
    sample_worlds,
)

Pair = Tuple[int, int]

#: Aggregates supported by :meth:`SelectionGainKernel.greedy_select_multi`.
_AGGREGATES = {
    "avg": lambda counts: counts.mean(axis=0),
    "average": lambda counts: counts.mean(axis=0),
    "min": lambda counts: counts.min(axis=0),
    "minimum": lambda counts: counts.min(axis=0),
    "max": lambda counts: counts.max(axis=0),
    "maximum": lambda counts: counts.max(axis=0),
}


def _edge_entropy(u, v) -> int:
    """Stable non-negative entropy word for a candidate's endpoints.

    Identity is the endpoint pair — not the candidate's list position —
    so duplicate candidates draw identical coin rows and tie
    bit-for-bit, and works for any hashable node labels.  Callers pass
    the *canonical* key (undirected ``(v, u)`` folds onto ``(u, v)``;
    see :meth:`SelectionGainKernel.candidate_rows`).
    """
    return zlib.crc32(repr((u, v)).encode("utf-8"))


class SelectionGainKernel:
    """Batched per-candidate gain evaluation over one shared world batch.

    Parameters
    ----------
    graph:
        The base graph candidates would be added to.
    num_samples:
        Worlds per estimate (``Z``).
    seed:
        Root seed: the base batch is the batch a fresh engine seeded
        ``seed`` would sample, and candidate coin rows derive from
        ``(seed, round, endpoints)``, so selections are deterministic
        regardless of any sampler's prior call history.
    plan / batch:
        Optional pre-compiled plan and pre-sampled batch (e.g. a
        :class:`repro.api.Session`'s cached ones).  ``batch`` must be
        the batch a fresh ``default_rng(seed)`` would sample over
        ``plan`` for results to be reproducible across call sites.
    """

    def __init__(
        self,
        graph: UncertainGraph,
        num_samples: int,
        seed: int = 0,
        plan: Optional[QueryPlan] = None,
        batch: Optional[WorldBatch] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        self.graph = graph
        self.num_samples = int(num_samples)
        self.seed = seed
        self.plan = plan if plan is not None else compile_plan(graph)
        self.batch = (
            batch
            if batch is not None
            else sample_worlds(
                self.plan, self.num_samples, np.random.default_rng(seed)
            )
        )

    # ------------------------------------------------------------------
    # coin rows
    # ------------------------------------------------------------------
    def candidate_rows(
        self,
        round_index: int,
        edges: Sequence[ProbEdge],
    ) -> np.ndarray:
        """Bit-packed coin rows ``(len(edges), W)`` for one greedy round.

        Each row is an independent Bernoulli(``p``) draw per world,
        seeded ``(seed, round, canonical endpoints)``: fresh coins
        every round, identical coins for identical candidates within a
        round.  Endpoints are canonicalized like the edge table
        (undirected ``(v, u)`` folds onto ``(u, v)``), so the two
        orientations of one undirected candidate draw the same coins
        and tie exactly — matching the scalar path, whose estimates are
        orientation-independent by construction.
        """
        directed = self.plan.directed
        rows = np.zeros(
            (len(edges), self.batch.num_words), dtype=np.uint64
        )
        for i, (u, v, p) in enumerate(edges):
            if p <= 0.0:
                continue
            rng = np.random.default_rng(
                [self.seed, round_index,
                 _edge_entropy(*canonical_key(directed, u, v))]
            )
            rows[i] = bernoulli_row(p, self.num_samples, rng)
        return rows

    # ------------------------------------------------------------------
    # single-pair selection
    # ------------------------------------------------------------------
    def individual_gains(
        self,
        source: int,
        target: int,
        candidates: Sequence[ProbEdge],
    ) -> np.ndarray:
        """New-world hit counts of adding each candidate *alone*.

        Returns an int64 array aligned with ``candidates``; the
        reliability gain estimate of candidate ``j`` is
        ``gains[j] / num_samples``.  Exact against the shared batch (see
        the module docstring), hence always non-negative.
        """
        candidates = list(candidates)
        src = self.plan.node_index(source)
        dst = self.plan.node_index(target)
        if source == target or src is None or dst is None:
            return np.zeros(len(candidates), dtype=np.int64)
        gains, _ = self._round_gains(
            self.plan, self.batch, src, dst, candidates, 0
        )
        return gains

    def top_k(
        self,
        source: int,
        target: int,
        k: int,
        candidates: Sequence[ProbEdge],
    ) -> List[ProbEdge]:
        """Individual Top-k: the ``k`` best candidates by solo gain.

        Stable-sorted, so equal gains preserve candidate order — the
        same tie behavior as the scalar baseline's stable sort.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidates = list(candidates)
        gains = self.individual_gains(source, target, candidates)
        order = np.argsort(-gains, kind="stable")
        return [candidates[int(i)] for i in order[:k]]

    def greedy_select(
        self,
        source: int,
        target: int,
        k: int,
        candidates: Sequence[ProbEdge],
    ) -> List[ProbEdge]:
        """Hill climbing: ``k`` rounds of batched marginal-gain argmax.

        Each round costs one forward and one reverse batch BFS over the
        graph-plus-selected overlay, then ``O(Z/64)`` words per
        candidate.  The winner's coin row is appended to the batch, so
        the next round's "current" reliability is conditioned on the
        exact worlds in which the winner was evaluated — one persistent
        world batch across the whole selection.
        """
        if k < 1:
            raise ValueError("k must be positive")
        candidates = list(candidates)
        selected: List[ProbEdge] = []
        remaining = list(range(len(candidates)))
        plan, batch = self.plan, self.batch
        src = plan.node_index(source)
        dst = plan.node_index(target)
        # Degenerate queries (s == t, or an endpoint the graph has never
        # seen) have constant objective: the scalar greedy sees all-equal
        # values and always pops the lowest remaining index.
        degenerate = source == target or src is None or dst is None
        while len(selected) < k and remaining:
            if degenerate:
                selected.append(candidates[remaining.pop(0)])
                continue
            round_index = len(selected)
            pool = [candidates[j] for j in remaining]
            gains, rows = self._round_gains(
                plan, batch, src, dst, pool, round_index
            )
            best = int(np.argmax(gains))  # first max = lowest index
            edge = candidates[remaining.pop(best)]
            selected.append(edge)
            plan = extend_with_overlay(plan, [edge])
            batch = extend_batch(batch, rows[best][None, :])
        return selected

    # ------------------------------------------------------------------
    # multi-pair selection (aggregate objectives, Tables 23-25)
    # ------------------------------------------------------------------
    def greedy_select_multi(
        self,
        pairs: Sequence[Pair],
        k: int,
        candidates: Sequence[ProbEdge],
        aggregate: str = "avg",
    ) -> List[ProbEdge]:
        """Hill climbing on an aggregate of several ``(s, t)`` pairs.

        Per round: one forward sweep per distinct source, one reverse
        sweep per distinct target, then every candidate's updated
        per-pair hit counts are pure bitwise ops; the aggregate
        (``avg`` / ``min`` / ``max``) is taken over the pair axis and
        the first-max candidate wins.  The scalar equivalent re-runs
        ``pair_reliabilities`` once per candidate per round; matching
        its dict-valued objective, duplicate pairs are collapsed before
        aggregation (each distinct pair counts once).
        """
        if k < 1:
            raise ValueError("k must be positive")
        try:
            agg = _AGGREGATES[aggregate]
        except KeyError:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; expected one of "
                f"{sorted(_AGGREGATES)}"
            ) from None
        pairs = list(dict.fromkeys(pairs))  # dedupe, preserve order
        if not pairs:
            raise ValueError("pairs must be non-empty")
        candidates = list(candidates)
        selected: List[ProbEdge] = []
        remaining = list(range(len(candidates)))
        plan, batch = self.plan, self.batch
        while len(selected) < k and remaining:
            round_index = len(selected)
            pool = [candidates[j] for j in remaining]
            rows = self.candidate_rows(round_index, pool)
            counts = self._pair_counts(plan, batch, pairs, pool, rows)
            best = int(np.argmax(agg(counts)))  # first max = lowest index
            edge = candidates[remaining.pop(best)]
            selected.append(edge)
            plan = extend_with_overlay(plan, [edge])
            batch = extend_batch(batch, rows[best][None, :])
        return selected

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _round_gains(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        src: int,
        dst: int,
        pool: Sequence[ProbEdge],
        round_index: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(gains, rows)`` for one round's candidate pool.

        Two sweeps — forward from ``src``, reverse into ``dst`` — then
        one vectorized bitwise pass over the pool.
        """
        forward = batch_reach(plan, batch, [src])
        reverse = batch_reach(plan.reverse_view(), batch, [dst])
        already = forward[dst]
        rows = self.candidate_rows(round_index, pool)
        via = self._via_masks(
            plan, forward, reverse, self._resolve_endpoints(plan, pool)
        )
        # ~already sets pad bits, but coin rows keep pad bits zero, so
        # the AND chain stays pad-clean and popcounts stay exact.
        new_hits = rows & via & ~already[None, :]
        gains = popcount(new_hits).sum(axis=1, dtype=np.int64)
        return gains, rows

    @staticmethod
    def _resolve_endpoints(
        plan: QueryPlan,
        pool: Sequence[ProbEdge],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(ui, vi, known)`` endpoint arrays for a pool.

        Depends only on ``(plan, pool)`` — resolved once per round and
        reused across every pair of a multi-pair objective.
        """
        n = len(pool)
        ui = np.zeros(n, dtype=np.int64)
        vi = np.zeros(n, dtype=np.int64)
        known = np.ones(n, dtype=bool)
        for i, (u, v, _p) in enumerate(pool):
            a = plan.node_index(u)
            b = plan.node_index(v)
            if a is None or b is None:
                # A single new edge to a node outside the graph cannot
                # lie on any s-t path; its gain is structurally zero.
                known[i] = False
            else:
                ui[i] = a
                vi[i] = b
        return ui, vi, known

    @staticmethod
    def _via_masks(
        plan: QueryPlan,
        forward: np.ndarray,
        reverse: np.ndarray,
        endpoints: Tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Per-candidate ``s⇝u AND v⇝t`` (plus swap when undirected)."""
        ui, vi, known = endpoints
        via = forward[ui] & reverse[vi]
        if not plan.directed:
            via |= forward[vi] & reverse[ui]
        via[~known] = 0
        return via

    def _pair_counts(
        self,
        plan: QueryPlan,
        batch: WorldBatch,
        pairs: Sequence[Pair],
        pool: Sequence[ProbEdge],
        rows: np.ndarray,
    ) -> np.ndarray:
        """Updated hit counts ``(num_pairs, num_candidates)`` per pair.

        Entry ``[p, j]`` is the number of worlds in which pair ``p`` is
        connected after adding candidate ``j`` alone — the exact batch
        count, reusing one sweep per distinct source / target.
        """
        forward: Dict[int, np.ndarray] = {}
        reverse: Dict[int, np.ndarray] = {}
        rplan = plan.reverse_view()
        for s, t in pairs:
            si = plan.node_index(s)
            ti = plan.node_index(t)
            if si is not None and s not in forward:
                forward[s] = batch_reach(plan, batch, [si])
            if ti is not None and t not in reverse:
                reverse[t] = batch_reach(rplan, batch, [ti])
        endpoints = self._resolve_endpoints(plan, pool)
        counts = np.empty((len(pairs), len(pool)), dtype=np.int64)
        for p_i, (s, t) in enumerate(pairs):
            if s == t:
                counts[p_i] = self.num_samples
                continue
            ti = plan.node_index(t)
            if s not in forward or ti is None:
                counts[p_i] = 0
                continue
            already = forward[s][ti]
            base = int(popcount(already).sum())
            via = self._via_masks(plan, forward[s], reverse[t], endpoints)
            new_hits = rows & via & ~already[None, :]
            counts[p_i] = base + popcount(new_hits).sum(
                axis=1, dtype=np.int64
            )
        return counts
