"""Vectorized batch possible-world sampling engine.

The engine is the repo's shared Monte Carlo hot path: a cached CSR-style
compilation of :class:`~repro.graph.UncertainGraph` (:mod:`.csr`), a
bit-packed batch world-sampling + BFS kernel that advances all ``Z``
samples per sweep (:mod:`.kernel`), and a high-level
:class:`VectorizedSamplingEngine` the reliability estimators delegate to
(:mod:`.batch`).  See ROADMAP.md ("Vectorized sampling engine") for the
architecture narrative.
"""

from .csr import (
    QueryPlan,
    build_query_plan,
    canonical_key,
    compile_plan,
    compile_reverse_plan,
    extend_with_overlay,
)
from .kernel import (
    WorldBatch,
    batch_reach,
    batch_reach_multi,
    bernoulli_row,
    extend_batch,
    hit_fraction,
    num_words,
    pack_bool_matrix,
    popcount,
    sample_worlds,
    valid_sample_mask,
)
from .batch import (
    VectorizedSamplingEngine,
    pair_hit_fractions,
    reach_counts_dict,
)
from .selection import SelectionGainKernel

__all__ = [
    "QueryPlan",
    "build_query_plan",
    "canonical_key",
    "compile_plan",
    "compile_reverse_plan",
    "extend_with_overlay",
    "WorldBatch",
    "batch_reach",
    "batch_reach_multi",
    "bernoulli_row",
    "extend_batch",
    "hit_fraction",
    "num_words",
    "pack_bool_matrix",
    "popcount",
    "sample_worlds",
    "valid_sample_mask",
    "VectorizedSamplingEngine",
    "pair_hit_fractions",
    "reach_counts_dict",
    "SelectionGainKernel",
]
