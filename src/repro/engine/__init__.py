"""Vectorized batch possible-world sampling engine.

The engine is the repo's shared Monte Carlo hot path: a cached CSR-style
compilation of :class:`~repro.graph.UncertainGraph` (:mod:`.csr`), a
bit-packed batch world-sampling + BFS kernel that advances all ``Z``
samples per sweep (:mod:`.kernel`), and a high-level
:class:`VectorizedSamplingEngine` the reliability estimators delegate to
(:mod:`.batch`).  See ROADMAP.md ("Vectorized sampling engine") for the
architecture narrative.
"""

from .csr import (
    QueryPlan,
    build_query_plan,
    canonical_key,
    compile_plan,
    compile_reverse_plan,
    extend_with_overlay,
)
from .kernel import (
    GATED_MIN_WORDS,
    EdgeChange,
    WorldBatch,
    allocate_proportional,
    batch_from_words,
    batch_reach,
    batch_reach_multi,
    batch_reach_resume,
    batch_to_words,
    bernoulli_row,
    coin_base,
    concat_batches,
    edge_coin_row,
    extend_batch,
    extract_world_columns,
    extract_worlds,
    hit_fraction,
    num_words,
    pack_bool_matrix,
    popcount,
    repair_batch,
    sample_worlds,
    sample_worlds_keyed,
    sample_worlds_stratified,
    scatter_world_columns,
    unpack_bool_matrix,
    unpack_word_row,
    valid_sample_mask,
    world_index_of,
)
from .batch import (
    DEFAULT_FUSE_MAX_WORDS,
    VectorizedSamplingEngine,
    pair_hit_fractions,
    reach_counts_dict,
    resolve_fuse_max_words,
)
from .selection import SelectionGainKernel

__all__ = [
    "QueryPlan",
    "build_query_plan",
    "canonical_key",
    "compile_plan",
    "compile_reverse_plan",
    "extend_with_overlay",
    "GATED_MIN_WORDS",
    "EdgeChange",
    "WorldBatch",
    "allocate_proportional",
    "batch_from_words",
    "batch_reach",
    "batch_reach_multi",
    "batch_reach_resume",
    "batch_to_words",
    "bernoulli_row",
    "coin_base",
    "concat_batches",
    "edge_coin_row",
    "extend_batch",
    "extract_world_columns",
    "extract_worlds",
    "hit_fraction",
    "num_words",
    "pack_bool_matrix",
    "popcount",
    "repair_batch",
    "sample_worlds",
    "sample_worlds_keyed",
    "sample_worlds_stratified",
    "scatter_world_columns",
    "unpack_bool_matrix",
    "unpack_word_row",
    "valid_sample_mask",
    "world_index_of",
    "DEFAULT_FUSE_MAX_WORDS",
    "VectorizedSamplingEngine",
    "pair_hit_fractions",
    "reach_counts_dict",
    "resolve_fuse_max_words",
    "SelectionGainKernel",
]
