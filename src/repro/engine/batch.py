"""High-level vectorized sampling engine.

:class:`VectorizedSamplingEngine` is the estimator-facing surface of the
engine: it owns a seeded :class:`numpy.random.Generator`, compiles (or
reuses the cached compilation of) the query plan, samples a batch of
possible worlds, and reduces reached-bitmasks into the estimates the
:class:`~repro.reliability.estimator.ReliabilityEstimator` interface
promises.

Statistical contract: every method is an unbiased possible-world Monte
Carlo estimate with one coin per canonical edge per world, identical in
distribution to the legacy per-sample scalar BFS.  The *stream* differs
(each batch draws a uint64 base from the engine's PCG64 generator and
expands it through identity-keyed SplitMix64 counters — see
:func:`repro.engine.kernel.sample_worlds` — instead of the scalar
path's lazy ``random.Random`` coins), so estimates with the same seed
are deterministic per implementation but not bit-for-bit equal to the
scalar path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph
from .csr import ProbEdge, QueryPlan, build_query_plan
from .kernel import (
    WorldBatch,
    batch_reach,
    batch_reach_multi,
    hit_fraction,
    popcount,
    sample_worlds,
)

Pair = Tuple[int, int]

#: Fuse multi-source sweeps while each world batch row is at most this
#: many words.  The frontier-gated fused sweep
#: (:func:`repro.engine.kernel.batch_reach_multi`) does work
#: proportional to the *active* (arc, source) frontier, so — unlike the
#: old full-width fusion, whose hard ``_FUSE_MAX_WORDS = 4`` cliff this
#: knob replaces — fusion keeps winning on wide batches.  Measured by
#: ``benchmarks/bench_sweep_gated.py`` at S=16 on 1k-node graphs, W=1
#: (Z=64) through W=64 (Z=4096): 3.2-7.9x over per-source sweeps on
#: sweep-bound topologies (high-reliability ring) and 1.1-1.6x on a
#: frontier-dense random graph — no crossover back to per-source
#: anywhere in the measured range.  The default therefore only stops
#: fusing where the fused state (S * W * n words) would dwarf the
#: memory-budget chunking below; per-query overrides go through the
#: ``fuse_max_words`` arguments on :func:`pair_hit_fractions`,
#: :class:`VectorizedSamplingEngine` and :class:`repro.api.Session`
#: (``0`` disables fusion, ``None`` means this default).
DEFAULT_FUSE_MAX_WORDS = 1024

#: Word budget of one fused pass (S * W * num_nodes reached words);
#: 4M words = 32 MB.  Larger fused groups are chunked.
_MULTI_SOURCE_WORD_BUDGET = 4_000_000


def resolve_fuse_max_words(fuse_max_words: Optional[int]) -> int:
    """``None`` -> the measured default; negatives are rejected."""
    if fuse_max_words is None:
        return DEFAULT_FUSE_MAX_WORDS
    if fuse_max_words < 0:
        raise ValueError("fuse_max_words must be >= 0 (0 disables fusion)")
    return fuse_max_words


def pair_hit_fractions(
    plan: QueryPlan,
    batch: WorldBatch,
    pairs: Sequence[Pair],
    num_samples: int,
    fuse_max_words: Optional[int] = None,
    reach_cache: Optional[Dict[int, "np.ndarray"]] = None,
) -> Dict[Pair, float]:
    """Answer every (s, t) pair inside one shared world batch.

    Pairs are grouped by source so each distinct source costs one batch
    BFS sweep; multi-source groups are fused into frontier-gated
    multi-source kernel passes (:func:`batch_reach_multi`) while the
    batch row stays within ``fuse_max_words`` words (``None`` -> the
    measured :data:`DEFAULT_FUSE_MAX_WORDS`, ``0`` -> never fuse).
    ``s == t`` pairs are 1.0 and endpoints unknown to the plan are 0.0
    (matching the scalar estimators' semantics).

    ``reach_cache`` maps dense source indices to full ``(n, W)``
    reached-fixpoint matrices over exactly this ``(plan, batch)``:
    sources found there skip their sweep, and every freshly swept
    source is written back (contiguous, caller-owned).  The cache is
    what :meth:`repro.api.Session.apply_delta` repairs in place after a
    graph edit, so post-edit queries resume sweeps instead of
    restarting them.  Purely a performance layer — a cached fixpoint is
    bit-identical to a fresh sweep by the resume contract of
    :func:`~repro.engine.kernel.batch_reach_resume`.
    """
    fuse_max_words = resolve_fuse_max_words(fuse_max_words)
    by_source: Dict[int, List[Pair]] = {}
    for s, t in pairs:
        by_source.setdefault(s, []).append((s, t))
    result: Dict[Pair, float] = {}

    # Resolve sources; unknown ones answer 0.0 (1.0 for s == t).
    indexed: List[Tuple[int, int]] = []  # (source id, dense index)
    cached_sources: List[Tuple[int, int]] = []
    for s, spairs in by_source.items():
        src = plan.node_index(s)
        if src is None:
            for pair in spairs:
                result[pair] = 1.0 if pair[1] == s else 0.0
        elif reach_cache is not None and src in reach_cache:
            cached_sources.append((s, src))
        else:
            indexed.append((s, src))

    if batch.num_words <= fuse_max_words and len(indexed) > 1:
        chunk = max(
            1,
            _MULTI_SOURCE_WORD_BUDGET
            // max(plan.num_nodes * batch.num_words, 1),
        )
        groups = [
            indexed[start:start + chunk]
            for start in range(0, len(indexed), chunk)
        ]
    else:
        groups = [[entry] for entry in indexed]

    def _reduce(s: int, reached_rows: "np.ndarray") -> None:
        for pair in by_source[s]:
            t = pair[1]
            if t == s:
                result[pair] = 1.0
                continue
            dst = plan.node_index(t)
            if dst is None:
                result[pair] = 0.0
            else:
                result[pair] = hit_fraction(reached_rows[dst], num_samples)

    if reach_cache is not None:
        for s, src in cached_sources:
            _reduce(s, reach_cache[src])
    for group in groups:
        if len(group) == 1:
            s, src = group[0]
            rows = batch_reach(plan, batch, [src])
            if reach_cache is not None:
                reach_cache[src] = rows
            _reduce(s, rows)
        else:
            reached = batch_reach_multi(
                plan, batch, [src for _, src in group]
            )
            for i, (s, src) in enumerate(group):
                rows = reached[:, i]
                if reach_cache is not None:
                    rows = np.ascontiguousarray(rows)
                    reach_cache[src] = rows
                _reduce(s, rows)
    return result


def reach_counts_dict(
    plan: QueryPlan,
    reached: "np.ndarray",
    num_samples: int,
    sources: Sequence[int],
) -> Dict[int, float]:
    """Reduce a reached-bitmask into a node-id -> frequency dict.

    Only nodes reached in at least one world appear; the sources are
    pinned to 1.0 (they are reached in every world by definition).
    """
    counts = popcount(reached).sum(axis=1)
    nonzero = np.flatnonzero(counts)
    result = {
        plan.node_ids[int(i)]: int(counts[i]) / num_samples
        for i in nonzero
    }
    for s in sources:
        result[s] = 1.0
    return result


class VectorizedSamplingEngine:
    """Batch possible-world sampler over cached CSR plans.

    Parameters
    ----------
    seed:
        Seed for the engine's PCG64 generator.  Like the scalar
        estimators, the generator is stateful: repeated calls advance
        the stream, and two engines built with the same seed replay the
        same estimates for the same query sequence.
    fuse_max_words:
        Multi-source fusion threshold for pair workloads — fuse while
        the batch row is at most this many words (``None`` -> the
        measured :data:`DEFAULT_FUSE_MAX_WORDS`, ``0`` disables
        fusion).  Purely a performance knob: results are bit-for-bit
        identical on every dispatch path.
    """

    def __init__(
        self,
        seed: int = 0,
        fuse_max_words: Optional[int] = None,
    ) -> None:
        self.seed = seed
        self.fuse_max_words = resolve_fuse_max_words(fuse_max_words)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # world sampling (low-level, reused by BFS-sharing / RSS)
    # ------------------------------------------------------------------
    def sample_worlds(
        self,
        plan: QueryPlan,
        num_samples: int,
        forced_true: Iterable[int] = (),
        forced_false: Iterable[int] = (),
    ) -> WorldBatch:
        """Sample ``num_samples`` worlds over ``plan``'s edge table."""
        return sample_worlds(
            plan, num_samples, self._rng, forced_true, forced_false
        )

    def selection_kernel(
        self,
        graph: UncertainGraph,
        num_samples: int,
    ) -> "SelectionGainKernel":
        """Batched candidate-gain kernel rooted at this engine's seed.

        The kernel samples its own base batch from a *fresh* generator
        seeded like this engine (selection results are deterministic
        regardless of the engine's prior call history) and evaluates
        every candidate edge against it — see
        :mod:`repro.engine.selection`.
        """
        from .selection import SelectionGainKernel

        return SelectionGainKernel(graph, num_samples, seed=self.seed)

    # ------------------------------------------------------------------
    # estimator surface
    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        num_samples: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> float:
        """Fraction of sampled worlds in which ``target`` is reachable."""
        if source == target:
            return 1.0
        if source not in graph or target not in graph:
            return 0.0
        plan = build_query_plan(graph, extra_edges)
        src = plan.node_index(source)
        dst = plan.node_index(target)
        batch = self.sample_worlds(plan, num_samples)
        reached = batch_reach(plan, batch, [src], target_index=dst)
        return hit_fraction(reached[dst], num_samples)

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        num_samples: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> Dict[int, float]:
        """Per-node reach frequency from ``source`` (non-zero entries)."""
        if source not in graph:
            return {}
        plan = build_query_plan(graph, extra_edges)
        batch = self.sample_worlds(plan, num_samples)
        reached = batch_reach(plan, batch, [plan.node_index(source)])
        return reach_counts_dict(plan, reached, num_samples, [source])

    def pair_reliabilities(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Pair],
        num_samples: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> Dict[Pair, float]:
        """Shared-world reliability of several pairs.

        One world batch is sampled and every pair is answered inside it,
        so pair estimates are mutually consistent — and the plan
        compilation plus coin flips are amortized over all pairs.
        """
        if not pairs:
            return {}
        plan = build_query_plan(graph, extra_edges)
        batch = self.sample_worlds(plan, num_samples)
        return pair_hit_fractions(
            plan, batch, pairs, num_samples,
            fuse_max_words=self.fuse_max_words,
        )

    def reliability_many(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Pair],
        num_samples: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> List[float]:
        """Batched API: reliabilities aligned with ``pairs`` order."""
        values = self.pair_reliabilities(
            graph, list(pairs), num_samples, extra_edges
        )
        return [values[(s, t)] for s, t in pairs]

    def multi_source_reachability(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        num_samples: int,
        extra_edges: Optional[Sequence[ProbEdge]] = None,
    ) -> Dict[int, float]:
        """Per-node frequency of being reached from *any* source.

        All sources are seeded into one reached-bitmask, so each world
        is shared across sources by construction (the scalar path needed
        an explicit coin cache for the same guarantee).
        """
        valid_sources = [s for s in sources if s in graph]
        if not valid_sources:
            return {}
        plan = build_query_plan(graph, extra_edges)
        batch = self.sample_worlds(plan, num_samples)
        indices = [plan.node_index(s) for s in valid_sources]
        reached = batch_reach(plan, batch, indices)
        return reach_counts_dict(plan, reached, num_samples, valid_sources)

    # ------------------------------------------------------------------
    # stratified leaves (RSS delegation)
    # ------------------------------------------------------------------
    def stratified_reliability(
        self,
        plan: QueryPlan,
        source: int,
        target: int,
        forced: Dict[Tuple[int, int], bool],
        num_samples: int,
    ) -> float:
        """Monte Carlo hit rate conditioned on forced edge states.

        ``forced`` maps canonical edge keys (node-id space) to pinned
        states; keys shared by several physical edges pin all of them.
        """
        src = plan.node_index(source)
        dst = plan.node_index(target)
        if src is None or dst is None:
            return 0.0
        forced_true, forced_false = self._forced_ids(plan, forced)
        batch = self.sample_worlds(plan, num_samples, forced_true, forced_false)
        reached = batch_reach(plan, batch, [src], target_index=dst)
        return hit_fraction(reached[dst], num_samples)

    def stratified_reach_counts(
        self,
        plan: QueryPlan,
        source: int,
        forced: Dict[Tuple[int, int], bool],
        num_samples: int,
    ) -> Dict[int, float]:
        """Per-node reach frequency conditioned on forced edge states."""
        src = plan.node_index(source)
        if src is None:
            return {}
        forced_true, forced_false = self._forced_ids(plan, forced)
        batch = self.sample_worlds(plan, num_samples, forced_true, forced_false)
        reached = batch_reach(plan, batch, [src])
        return reach_counts_dict(plan, reached, num_samples, [source])

    # ------------------------------------------------------------------
    @staticmethod
    def _forced_ids(
        plan: QueryPlan,
        forced: Dict[Tuple[int, int], bool],
    ) -> Tuple[List[int], List[int]]:
        forced_true: List[int] = []
        forced_false: List[int] = []
        for key, state in forced.items():
            ids = plan.edge_index.get(key, ())
            (forced_true if state else forced_false).extend(ids)
        return forced_true, forced_false
