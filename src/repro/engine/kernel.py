"""Batch possible-world kernel: coin flips and BFS for all samples at once.

World states are bit-packed: a batch of ``Z`` sampled worlds is an
``(num_edges, W)`` uint64 matrix (``W = ceil(Z / 64)`` words) whose bit
``i`` of row ``e`` says whether edge ``e`` exists in world ``i``.  The
reachability sweep keeps an ``(num_nodes, W)`` reached-bitmask and, per
sweep, propagates every arc for every world simultaneously::

    contrib = reached[arc_src] & alive[arc_eid]        # (A, W) gather
    reached[dst] |= bitwise_or.reduceat(contrib, ...)  # segmented scatter

so one pass over the arc table advances the BFS frontier of all ``Z``
samples.  The sweep repeats until fixpoint (at most ``diameter`` times).

When ``Z`` is not a multiple of 64 the trailing pad bits are kept zero in
every coin row, so pad-worlds have no edges and never reach anything
beyond the BFS sources; source rows are seeded with the valid-bit mask,
which keeps every popcount exact without masking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import sanitize
from .csr import QueryPlan

WORD_BITS = 64

#: Edge-row block size for coin generation, sized so the temporary
#: uint64 counter matrix stays around ~32 MB regardless of Z.
_COIN_BLOCK_FLOATS = 4_000_000

# SplitMix64 finalizer constants (Steele et al., "Fast splittable
# pseudorandom number generators").  The keyed coin generator below
# builds every edge's coin row as a pure function of (base, edge
# identity, sample index) through this mixer, so coins survive
# graph edits that renumber edge ids.
_MIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)
_ONE64 = np.uint64(1)


def _mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer over a uint64 array.

    Array (not scalar) arithmetic throughout: numpy wraps unsigned
    array overflow silently, which is exactly the mod-2^64 semantics
    the mixer wants.
    """
    x = x ^ (x >> np.uint64(30))
    x = x * _MIX_M1
    x = x ^ (x >> np.uint64(27))
    x = x * _MIX_M2
    return x ^ (x >> np.uint64(31))


def coin_base(rng: np.random.Generator) -> np.uint64:
    """The per-batch key root :func:`sample_worlds` draws from ``rng``.

    One uint64 is the *only* stream consumption of a keyed sampling
    pass, so a caller holding just the seed can recompute the base of a
    batch sampled via ``sample_worlds(plan, Z, default_rng(seed))`` as
    ``coin_base(default_rng(seed))`` — the identity delta repair
    (:func:`repair_batch`) relies on to regenerate changed rows without
    the original generator object.
    """
    return np.uint64(rng.integers(0, 2**64, dtype=np.uint64))


def _edge_keys(plan: QueryPlan, base: np.uint64) -> np.ndarray:
    """Per-edge uint64 coin keys chained over each edge's identity.

    The chain folds the canonical endpoints and duplicate ordinal
    (:attr:`QueryPlan.edge_u` and friends, node-id space) into the
    base, one mix per component, so the key — and therefore the coin
    row — is independent of the edge's position in the compiled table.
    """
    keys = np.full(plan.num_edges, base, dtype=np.uint64)
    for part in (plan.edge_u, plan.edge_v, plan.edge_ordinal):
        words = part.astype(np.uint64) + _ONE64
        keys = _mix64(keys + _MIX_GAMMA * words)
    return keys


def _keyed_coin_bits(
    keys: np.ndarray,
    probs32: np.ndarray,
    num_samples: int,
    sample_index: np.ndarray,
) -> np.ndarray:
    """Packed ``(rows, W)`` coin words for the keyed rows ``keys``.

    Each coin is the top 24 bits of ``mix64(key + GAMMA * (j + 1))``
    scaled to [0, 1) — the same 2^-24 grid numpy's float32 ``random()``
    draws from — compared against the edge's float32 probability.
    ``random() < 1.0`` always holds and ``< 0.0`` never, so certain
    edges stay certain.  Because the coin values are fixed by
    ``(key, j)`` and only the threshold moves, raising an edge's
    probability turns bits on without ever turning one off — the
    nesting that makes monotone delta repair exact.
    """
    x = _mix64(keys[:, None] + _MIX_GAMMA * (sample_index + _ONE64))
    coins = (x >> np.uint64(40)).astype(np.float32) * np.float32(2.0**-24)
    return pack_bool_matrix(coins < probs32[:, None], num_samples)


def num_words(num_samples: int) -> int:
    """Words needed to hold one bit per sample."""
    return (num_samples + WORD_BITS - 1) // WORD_BITS


def pack_bool_matrix(bools: np.ndarray, num_samples: int) -> np.ndarray:
    """Pack a ``(rows, Z)`` bool matrix into ``(rows, W)`` uint64 words.

    Bit ``i`` of word ``w`` in a row is sample ``w * 64 + i``; pad bits
    past ``Z`` are zero.
    """
    rows = bools.shape[0]
    width = num_words(num_samples) * WORD_BITS
    if bools.shape[1] != width:
        padded = np.zeros((rows, width), dtype=bool)
        padded[:, :num_samples] = bools[:, :num_samples]
        bools = padded
    packed = np.packbits(
        np.ascontiguousarray(bools), axis=1, bitorder="little"
    )
    words = packed.view(np.uint64)
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return words


def valid_sample_mask(num_samples: int) -> np.ndarray:
    """``(W,)`` word row with exactly the first ``Z`` bits set."""
    return pack_bool_matrix(
        np.ones((1, num_samples), dtype=bool), num_samples
    )[0]


def unpack_word_row(words: np.ndarray) -> np.ndarray:
    """``(W,)`` uint64 words -> ``(W * 64,)`` bool bits (little-endian)."""
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    ).astype(bool)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit count (numpy>=2 fast path, SWAR fallback)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    x = words.astype(np.uint64, copy=True)  # pragma: no cover - numpy<2
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return (x * h01) >> np.uint64(56)


@dataclass
class WorldBatch:
    """``Z`` sampled possible worlds over one query plan's edge table."""

    alive: np.ndarray  # (num_edges, W) uint64 edge-existence bits
    num_samples: int
    valid: np.ndarray  # (W,) word row with the first Z bits set

    @property
    def num_words(self) -> int:
        return int(self.valid.shape[0])


def batch_to_words(batch: WorldBatch) -> np.ndarray:
    """Serializable payload of a batch: its ``(num_edges, W)`` coin words.

    The word matrix is the only state a :class:`WorldBatch` carries that
    cannot be recomputed from ``num_samples`` — ``valid`` is always
    :func:`valid_sample_mask`.  Persistent stores
    (:mod:`repro.index`) save exactly this array and rebuild the batch
    with :func:`batch_from_words`, so a round-trip is bit-for-bit.

    Only standard prefix-layout batches serialize; a
    :func:`concat_batches` result with interior pad bits is rejected
    (its ``valid`` mask is not reconstructible from ``num_samples``).
    """
    expected = valid_sample_mask(batch.num_samples)
    if (batch.valid.shape != expected.shape
            or not bool(np.array_equal(batch.valid, expected))):
        raise ValueError(
            "only prefix-layout batches serialize; concatenated batches "
            "with interior pad bits must be resampled, not stored"
        )
    return batch.alive


def batch_from_words(words: np.ndarray, num_samples: int) -> WorldBatch:
    """Rebuild a :class:`WorldBatch` from stored coin words.

    ``words`` may be any ``(num_edges, W)`` uint64 array — including a
    read-only memory map straight off an ``.npy`` file — because no
    kernel path mutates ``alive`` in place (overlay rows concatenate via
    :func:`extend_batch`).  The rebuilt batch is indistinguishable from
    the one :func:`sample_worlds` produced before serialization.
    """
    if words.ndim != 2 or words.dtype != np.uint64:
        raise ValueError(
            f"batch words must be a 2-D uint64 array, got "
            f"{words.dtype} with shape {words.shape}"
        )
    if words.shape[1] != num_words(num_samples):
        raise ValueError(
            f"word width {words.shape[1]} does not match Z={num_samples} "
            f"(expected {num_words(num_samples)})"
        )
    # Deserialized batches are shared across queries (and, store-backed,
    # across restarts): freeze the words so aliased in-place mutation
    # fails fast instead of corrupting every reader.  Store mmaps arrive
    # read-only already; this closes the hole for in-memory arrays.
    sanitize.freeze(words)
    return WorldBatch(
        alive=words,
        num_samples=num_samples,
        valid=sanitize.freeze(valid_sample_mask(num_samples)),
    )


def unpack_bool_matrix(words: np.ndarray, num_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: ``(rows, W)`` -> ``(rows, Z)``."""
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), axis=1, bitorder="little"
    )
    return bits[:, :num_samples].astype(bool, copy=False)


def world_index_of(mask: np.ndarray) -> np.ndarray:
    """Sorted world indices of the set bits in a ``(W,)`` word row."""
    return np.flatnonzero(unpack_word_row(mask))


def extract_world_columns(
    words: np.ndarray, world_index: np.ndarray
) -> np.ndarray:
    """Gather world columns of a word matrix into a dense narrow one.

    ``words`` is any ``(rows, W)`` uint64 bit matrix (coin words,
    reached rows); the result packs column ``world_index[g]`` into bit
    position ``g`` of a ``(rows, W')`` matrix with
    ``W' = ceil(len(world_index) / 64)``.  Shift-and-mask gather, not
    a full bit unpack: the hot repair path extracts a few percent of
    the columns from megabyte matrices, so work must scale with the
    *selected* width.
    """
    world_index = np.asarray(world_index, dtype=np.int64)
    g = int(world_index.size)
    if g == 0:
        return np.zeros((words.shape[0], 0), dtype=np.uint64)
    cols = words[:, world_index >> 6]  # (rows, G) word gather
    bits = (cols >> (world_index & 63).astype(np.uint64)) & np.uint64(1)
    return pack_bool_matrix(bits.astype(np.uint8), g)


def scatter_world_columns(
    dest: np.ndarray, compact: np.ndarray, world_index: np.ndarray
) -> np.ndarray:
    """Inverse of :func:`extract_world_columns`: write columns back.

    Bit ``g`` of each compact row lands in world column
    ``world_index[g]`` of ``dest``; all other destination columns keep
    their bits.  Returns the updated ``dest`` (a fresh array — ``dest``
    itself is not mutated, so frozen/mmapped inputs are fine).
    """
    width = dest.shape[1] * WORD_BITS
    bits = unpack_bool_matrix(dest, width)
    bits[:, world_index] = unpack_bool_matrix(
        compact, int(world_index.size)
    )
    return pack_bool_matrix(bits, width)


def extract_worlds(batch: WorldBatch, world_index: np.ndarray) -> WorldBatch:
    """Narrow sub-batch over a subset of world columns.

    Worlds are column-independent: a world's coins — and therefore its
    reachability fixpoint — never read another world's bits, so sweeps
    over the extracted batch agree bit-for-bit with the same worlds'
    columns of a full-width sweep.  The delta-repair path
    (:meth:`repro.api.Session.apply_delta`) leans on this to resume
    cached fixpoints over *only* the worlds an edit actually touched:
    an edit that flips coins in a few percent of worlds repairs at
    ``W'/W`` of the full-width sweep cost instead of paying ``W``-wide
    rows for every frontier arc.
    """
    world_index = np.asarray(world_index, dtype=np.int64)
    return WorldBatch(
        alive=extract_world_columns(batch.alive, world_index),
        num_samples=int(world_index.size),
        valid=valid_sample_mask(int(world_index.size)),
    )


def sample_worlds(
    plan: QueryPlan,
    num_samples: int,
    rng: np.random.Generator,
    forced_true: Iterable[int] = (),
    forced_false: Iterable[int] = (),
) -> WorldBatch:
    """Flip coins for every edge in every sample at once.

    ``forced_true`` / ``forced_false`` pin edge ids to a fixed state in
    all samples — the stratified sampler's conditioning mechanism.
    Probability-1 edges are always present, probability-0 never.

    Coins are *identity-keyed*: the generator contributes one uint64
    base (:func:`coin_base`) and every edge's row is then a pure
    function of ``(base, edge identity, p, Z)``, where identity is the
    canonical ``(u, v, ordinal)`` in node-id space — never the edge id.
    Two plans compiled from graphs that share an edge therefore give
    that edge bit-identical coins under the same base even when the
    edit renumbered every edge id, which is what lets
    :func:`repair_batch` patch a cached batch instead of resampling it.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(plan.probs, "sample_worlds: plan.probs")
    return sample_worlds_keyed(
        plan, num_samples, coin_base(rng), forced_true, forced_false
    )


def sample_worlds_keyed(
    plan: QueryPlan,
    num_samples: int,
    base: np.uint64,
    forced_true: Iterable[int] = (),
    forced_false: Iterable[int] = (),
) -> WorldBatch:
    """:func:`sample_worlds` from an explicit key root instead of a rng.

    ``sample_worlds(plan, Z, rng)`` is exactly
    ``sample_worlds_keyed(plan, Z, coin_base(rng))``; the explicit-base
    entry point exists for delta repair, which re-derives the base from
    the session seed long after the original generator is gone.
    """
    num_edges = plan.num_edges
    words = num_words(num_samples)
    valid = valid_sample_mask(num_samples)
    alive = np.empty((num_edges, words), dtype=np.uint64)
    # float32 coins halve comparison cost; the 2^-24 threshold grid bias
    # is orders of magnitude below Monte Carlo noise.
    probs = plan.probs.astype(np.float32)
    keys = _edge_keys(plan, base)
    sample_index = np.arange(num_samples, dtype=np.uint64)
    block = max(1, _COIN_BLOCK_FLOATS // max(num_samples, 1))
    for start in range(0, num_edges, block):
        stop = min(start + block, num_edges)
        alive[start:stop] = _keyed_coin_bits(
            keys[start:stop], probs[start:stop], num_samples, sample_index
        )
    forced_true = list(forced_true)
    forced_false = list(forced_false)
    if forced_true:
        alive[forced_true] = valid
    if forced_false:
        alive[forced_false] = 0
    return WorldBatch(alive=alive, num_samples=num_samples, valid=valid)


def edge_coin_row(
    base: np.uint64,
    u: int,
    v: int,
    ordinal: int,
    p: float,
    num_samples: int,
) -> np.ndarray:
    """One keyed ``(W,)`` coin row for the edge identity ``(u, v, ordinal)``.

    Bit-identical to the row :func:`sample_worlds_keyed` gives the same
    identity at the same probability — the single-edge primitive delta
    repair uses to re-flip exactly one edge's coins.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(p, "edge_coin_row: p")
    key = np.full(1, base, dtype=np.uint64)
    for part in (u, v, ordinal):
        word = np.asarray([part], dtype=np.int64).astype(np.uint64) + _ONE64
        key = _mix64(key + _MIX_GAMMA * word)
    sample_index = np.arange(num_samples, dtype=np.uint64)
    return _keyed_coin_bits(
        key, np.asarray([p], dtype=np.float32), num_samples, sample_index
    )[0]


@dataclass
class EdgeChange:
    """One edge's coin-row delta between an old and a repaired batch.

    ``added`` / ``removed`` are ``(W,)`` word rows of the worlds this
    edge newly exists in / vanished from.  Under keyed coins a pure
    probability raise has empty ``removed`` and a pure lower empty
    ``added`` (the thresholds nest); insertions carry only ``added``,
    deletions only ``removed`` (``eid`` is ``None`` for a deletion —
    the row no longer exists in the repaired batch).
    """

    u: int
    v: int
    ordinal: int
    eid: Optional[int]
    added: np.ndarray
    removed: np.ndarray


def repair_batch(
    new_plan: QueryPlan,
    old_plan: QueryPlan,
    old_batch: WorldBatch,
    base: np.uint64,
) -> Tuple[WorldBatch, List[EdgeChange]]:
    """Patch a cached batch onto an edited plan instead of resampling.

    Rows for edges whose identity and probability survived the edit are
    *copied* from ``old_batch`` (bit-identical coins by the keyed-coin
    contract); rows for changed or inserted edges are regenerated from
    ``base``; rows for deleted edges are dropped.  The result is
    ``np.array_equal`` to ``sample_worlds_keyed(new_plan, Z, base)`` —
    repair is an optimization, never an approximation — and the
    returned :class:`EdgeChange` list tells reachability-state repair
    exactly which world-bits each touched edge gained or lost.

    Only standard prefix-layout batches repair (same restriction as
    :func:`batch_to_words`): a concatenated stratified batch interleaves
    conditioning with its pad layout and must be resampled.
    """
    expected = valid_sample_mask(old_batch.num_samples)
    if (old_batch.valid.shape != expected.shape
            or not bool(np.array_equal(old_batch.valid, expected))):
        raise ValueError(
            "only prefix-layout batches repair; concatenated batches "
            "with interior pad bits must be resampled"
        )
    num_samples = old_batch.num_samples
    words = old_batch.num_words
    old_ids = {
        (int(old_plan.edge_u[eid]), int(old_plan.edge_v[eid]),
         int(old_plan.edge_ordinal[eid])): eid
        for eid in range(old_plan.num_edges)
    }
    alive = np.empty((new_plan.num_edges, words), dtype=np.uint64)
    changes: List[EdgeChange] = []
    zeros = np.zeros(words, dtype=np.uint64)
    seen = set()
    for eid in range(new_plan.num_edges):
        identity = (int(new_plan.edge_u[eid]), int(new_plan.edge_v[eid]),
                    int(new_plan.edge_ordinal[eid]))
        seen.add(identity)
        old_eid = old_ids.get(identity)
        p = float(new_plan.probs[eid])
        if old_eid is not None and p == float(old_plan.probs[old_eid]):
            alive[eid] = old_batch.alive[old_eid]
            continue
        row = edge_coin_row(base, *identity, p, num_samples)
        alive[eid] = row
        old_row = old_batch.alive[old_eid] if old_eid is not None else zeros
        changes.append(EdgeChange(
            *identity, eid=eid,
            added=row & ~old_row, removed=old_row & ~row,
        ))
    for identity, old_eid in old_ids.items():
        if identity not in seen:
            old_row = np.asarray(old_batch.alive[old_eid])
            changes.append(EdgeChange(
                *identity, eid=None,
                added=zeros, removed=old_row.copy(),
            ))
    return (
        WorldBatch(alive=alive, num_samples=num_samples,
                   valid=valid_sample_mask(num_samples)),
        changes,
    )


def bernoulli_row(
    p: float,
    num_samples: int,
    rng: np.random.Generator,
    valid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One bit-packed ``(W,)`` coin row: bit ``i`` set with probability ``p``.

    Uses the same float32 threshold-compare as :func:`sample_worlds`
    (``random() < 1.0`` always holds, ``< 0.0`` never), so a row for a
    candidate edge is distributed exactly like the row that edge would
    get inside a freshly sampled batch.  Pad bits stay zero.

    ``valid`` selects the target bit layout: ``None`` is the standard
    prefix layout (samples occupy the first ``Z`` bits), while a
    ``(W,)`` valid-mask row places the ``Z`` coins at that mask's set
    bit positions — the layout of a :func:`concat_batches` batch, whose
    pad bits sit *between* blocks.  For a prefix mask both paths
    produce bit-identical rows.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(p, "bernoulli_row: p")
    if valid is None:
        if p <= 0.0:
            return np.zeros(num_words(num_samples), dtype=np.uint64)
        coins = rng.random(num_samples, dtype=np.float32) < np.float32(p)
        return pack_bool_matrix(coins[None, :], num_samples)[0]
    bits = unpack_word_row(valid)
    return bernoulli_row_at(
        p, num_samples, rng, np.flatnonzero(bits), bits.shape[0]
    )


def bernoulli_row_at(
    p: float,
    num_samples: int,
    rng: np.random.Generator,
    positions: np.ndarray,
    width_bits: int,
) -> np.ndarray:
    """:func:`bernoulli_row` with precomputed valid bit positions.

    Callers generating many rows against one layout (the selection
    kernel's per-round candidate rows) hoist the
    ``flatnonzero(unpack_word_row(valid))`` scan out of the per-row
    loop and call this directly.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(p, "bernoulli_row_at: p")
    if p <= 0.0:
        return np.zeros(width_bits // WORD_BITS, dtype=np.uint64)
    positions = positions[:num_samples]
    coins = rng.random(num_samples, dtype=np.float32) < np.float32(p)
    row = np.zeros(width_bits, dtype=bool)
    row[positions] = coins[: positions.shape[0]]
    # row is already full word width, so packing adds no padding.
    return pack_bool_matrix(row[None, :], width_bits)[0]


def concat_batches(batches: Sequence[WorldBatch]) -> WorldBatch:
    """Concatenate world batches along the sample axis — cheaply.

    Blocks are joined at *word* granularity (no repacking): block ``i``
    keeps its own words, so a block whose ``Z`` is not a multiple of 64
    leaves zero pad bits in the middle of the combined row.  The
    combined ``valid`` mask has exactly the real sample bits set, and
    every kernel reduction (popcounts, hit fractions, reach sweeps)
    already ignores pad bits, so the concatenated batch behaves exactly
    like one batch of ``sum(Z_i)`` samples.  Used by the stratified and
    per-block selection backends to assemble conditioned sample blocks
    into one shared batch.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("concat_batches needs at least one batch")
    if len(batches) == 1:
        return batches[0]
    return WorldBatch(
        alive=np.concatenate([b.alive for b in batches], axis=1),
        num_samples=sum(b.num_samples for b in batches),
        valid=np.concatenate([b.valid for b in batches]),
    )


def allocate_proportional(
    weights: Sequence[float],
    total: int,
) -> List[int]:
    """Largest-remainder allocation of ``total`` samples to strata.

    Quotas are ``total * w / sum(w)``; every stratum gets its floor and
    the leftovers go to the largest fractional parts (ties to the lower
    index).  Zero-weight strata get zero.  The result always sums to
    ``total``.
    """
    weights = np.asarray(list(weights), dtype=np.float64)
    if weights.size == 0:
        raise ValueError("need at least one stratum")
    if np.any(weights < 0.0):
        raise ValueError("stratum weights must be non-negative")
    mass = float(weights.sum())
    if mass <= 0.0:
        raise ValueError("stratum weights must not all be zero")
    quotas = total * weights / mass
    counts = np.floor(quotas).astype(np.int64)
    remainder = total - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(quotas - counts), kind="stable")
        counts[order[:remainder]] += 1
    return [int(c) for c in counts]


def sample_worlds_stratified(
    plan: QueryPlan,
    strata: Sequence[Tuple[Sequence[int], Sequence[int], float]],
    num_samples: int,
    rng: np.random.Generator,
) -> WorldBatch:
    """One batch of ``Z`` worlds stratified over forced edge states.

    ``strata`` is a sequence of ``(forced_true_ids, forced_false_ids,
    weight)`` triples partitioning the probability space; each stratum
    gets a largest-remainder proportional share of ``num_samples`` and
    its worlds are sampled with the stratum's edges pinned
    (:func:`sample_worlds`).  Because allocation is proportional, the
    *uniform* average over the combined batch is the stratified
    estimator itself (up to integer rounding) — which is what lets the
    selection-gain kernel treat a stratified batch exactly like a plain
    one.  Zero-allocation strata are skipped.
    """
    counts = allocate_proportional([w for _, _, w in strata], num_samples)
    blocks: List[WorldBatch] = []
    for (forced_true, forced_false, _w), count in zip(
            strata, counts, strict=True):
        if count <= 0:
            continue
        blocks.append(
            sample_worlds(plan, count, rng, forced_true, forced_false)
        )
    if not blocks:
        raise ValueError("no stratum received a positive allocation")
    return concat_batches(blocks)


def extend_batch(batch: WorldBatch, rows: np.ndarray) -> WorldBatch:
    """Batch over an overlay-extended plan: append per-edge coin rows.

    ``rows`` is ``(num_extra_edges, W)`` — one coin row per overlay edge,
    in overlay order, matching the edge ids
    :func:`~repro.engine.csr.extend_with_overlay` assigns.  The base
    rows are shared, not copied per call beyond the concatenation.
    """
    return WorldBatch(
        alive=np.concatenate([batch.alive, rows]),
        num_samples=batch.num_samples,
        valid=batch.valid,
    )


def batch_reach(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
    target_index: Optional[int] = None,
) -> np.ndarray:
    """Reached-bitmask ``(num_nodes, W)`` from the given source indices.

    Every BFS sweep advances all ``Z`` worlds one frontier step; the loop
    runs until no world's reached set grows (bounded by the diameter).
    Sweeps are frontier-restricted: only arcs whose source row changed
    in the previous sweep are gathered, and because the arc table is
    destination-sorted any subset of it stays destination-sorted, so
    the segmented ``reduceat`` scatter works unchanged on the subset.

    Passing several sources computes reachability *from the source set*
    in each world — exactly the union semantics multi-source queries
    need.  With ``target_index`` the sweep stops as soon as the target
    row saturates against the valid mask (all worlds reached it).
    """
    sources = list(source_indices)
    reached = np.zeros((plan.num_nodes, batch.num_words), dtype=np.uint64)
    reached[sources] = batch.valid
    if plan.arc_src.size == 0:
        return reached
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    return _sweep_fixpoint(plan, batch, reached, frontier, target_index)


def batch_reach_resume(
    plan: QueryPlan,
    batch: WorldBatch,
    reached: np.ndarray,
    frontier_nodes: Sequence[int],
) -> np.ndarray:
    """Continue a reachability sweep from a partial reached state.

    ``reached`` must be a *valid lower bound* of the fixpoint — every
    set bit certified by an actual path in that world — and
    ``frontier_nodes`` must contain every node whose row gained bits
    since the state was last a fixpoint.  Because batch reachability is
    monotone, resuming the sweep from exactly those rows converges to
    the same fixpoint a from-scratch :func:`batch_reach` over the same
    ``(plan, batch)`` would, bit for bit — this is what lets greedy
    selection restart sweeps from a committed winner's endpoints
    instead of re-sweeping all worlds from the query endpoints
    (:mod:`repro.engine.selection`).

    ``reached`` is updated in place (and also returned).  Rows for
    nodes the plan added since the state was built must already be
    present (zero-padded) — see
    :meth:`repro.engine.selection.SelectionGainKernel`.
    """
    if reached.shape[0] != plan.num_nodes:
        raise ValueError(
            f"reached has {reached.shape[0]} rows for a plan with "
            f"{plan.num_nodes} nodes; pad before resuming"
        )
    if plan.arc_src.size == 0:
        return reached
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[list(frontier_nodes)] = True
    return _sweep_fixpoint(plan, batch, reached, frontier, None)


def _sweep_fixpoint(
    plan: QueryPlan,
    batch: WorldBatch,
    reached: np.ndarray,
    frontier: np.ndarray,
    target_index: Optional[int],
) -> np.ndarray:
    """Run frontier-restricted sweeps over ``reached`` until fixpoint."""
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        contrib = reached[arc_src[active]] & alive[arc_eid[active]]
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = reached[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        reached[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
        if target_index is not None and np.array_equal(
            reached[target_index], batch.valid
        ):
            break
    return reached


#: Auto-dispatch threshold for :func:`batch_reach_multi`: gated sweeps
#: for rows of at least this many words, full-width fusion below.
#: Measured by ``benchmarks/bench_sweep_gated.py``: at W=1 (Z<=64) the
#: full-width pass wins (~2.5x vs per-source on frontier-dense graphs)
#: because one wide gather beats pair bookkeeping, while from W=2 up
#: the gated pass matches or beats it everywhere measured.
GATED_MIN_WORDS = 2

#: Gated-sweep chunking: at most this many pairs per chunk (measured —
#: more pairs per call puts ``reduceat`` on its slow
#: many-segments-per-call path) and at most this many bytes of gather
#: buffer (keeps temporaries cache-resident at any row width; very wide
#: rows shrink the pair count instead of growing the buffers).
_GATED_CHUNK_PAIRS = 4096
_GATED_CHUNK_BYTES = 2 << 20


def _gated_chunk_pairs(words: int) -> int:
    return max(
        256, min(_GATED_CHUNK_PAIRS, _GATED_CHUNK_BYTES // (words * 8))
    )


def batch_reach_multi(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
    gated: Optional[bool] = None,
) -> np.ndarray:
    """Independent per-source reached-bitmasks in one fused sweep.

    Runs the same frontier-restricted fixpoint as :func:`batch_reach`,
    but for ``S`` sources *at once* over the same sampled worlds, so an
    ``S``-source workload costs ``max`` (not ``sum``) of the per-source
    sweep counts and the numpy per-sweep overhead is amortized across
    the whole workload — the multi-source kernel sharing that makes
    session pair workloads cheap.

    ``gated=True`` is the **frontier-gated** fusion: each sweep gathers
    only the ``(arc, source)`` pairs whose source-local frontier is
    active.  The per-source frontier is an ``(S, n)`` bool matrix;
    indexing its arc-source columns yields an ``(S, A)`` activity mask
    whose flat nonzero positions enumerate pairs already sorted by
    ``(source block, arc position)`` — the arc table is
    destination-sorted, so the flat scatter keys ``source * n + dst``
    are non-decreasing and feed ``bitwise_or.reduceat`` directly, no
    per-sweep sort needed.  Sweep work is therefore proportional to the
    *active* frontier (``pairs * W`` words), not ``S * W`` words for
    every union-frontier arc, which is what extends the fusion win from
    narrow to wide batches; pairs are processed in cache-sized chunks
    through preallocated gather buffers, and chunks whose scatter keys
    are all distinct (the common case on sparse frontiers) skip
    ``reduceat`` entirely.  ``gated=False`` keeps the legacy full-width
    fusion; ``None`` (default) picks by row width
    (:data:`GATED_MIN_WORDS`).  All three paths are bit-for-bit
    identical (``benchmarks/bench_sweep_gated.py`` pins this along with
    the speedups).

    Returns ``(num_nodes, S, W)``: row ``[v, i]`` is source ``i``'s
    reached-bits for node ``v``.  Unlike :func:`batch_reach` the union
    is *not* taken across sources; use ``batch_reach`` for union
    (multi-source reachability) semantics.
    """
    sources = list(source_indices)
    num_sources = len(sources)
    words = batch.num_words
    if gated is None:
        gated = words >= GATED_MIN_WORDS
    if not gated:
        return _reach_multi_full_width(plan, batch, sources)
    num_nodes = plan.num_nodes
    # Source-major layout: block i is source i's own (n, W) sweep; the
    # flat (S * n, W) view makes (source, node) pairs single scatter
    # keys.  Transposed back to the public (n, S, W) contract on return.
    reached = np.zeros((num_sources, num_nodes, words), dtype=np.uint64)
    for i, src in enumerate(sources):
        reached[i, src] = batch.valid
    if plan.arc_src.size == 0 or num_sources == 0:
        return reached.transpose(1, 0, 2)

    flat = reached.reshape(num_sources * num_nodes, words)
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    num_arcs = arc_src.size
    frontier = np.zeros((num_sources, num_nodes), dtype=bool)
    for i, src in enumerate(sources):
        frontier[i, src] = True
    flat_frontier = frontier.reshape(-1)
    chunk = _gated_chunk_pairs(words)
    buf_rows = np.empty((chunk, words), dtype=np.uint64)
    buf_alive = np.empty((chunk, words), dtype=np.uint64)
    while True:
        # (S, A) activity mask: pair (i, a) is live iff arc a's source
        # node is on source i's frontier.  flatnonzero + divmod beats
        # 2-D nonzero by a wide margin on these small masks.
        active = frontier[:, arc_src]
        pair_idx = np.flatnonzero(active.ravel())
        num_pairs = pair_idx.size
        if num_pairs == 0:
            break
        src_block = pair_idx // num_arcs
        arc_pos = pair_idx - src_block * num_arcs
        flat_frontier[:] = False
        any_change = False
        for lo in range(0, num_pairs, chunk):
            hi = min(lo + chunk, num_pairs)
            size = hi - lo
            block_base = src_block[lo:hi] * num_nodes
            pos = arc_pos[lo:hi]
            np.take(
                flat, block_base + arc_src[pos], axis=0,
                out=buf_rows[:size],
            )
            np.take(alive, arc_eid[pos], axis=0, out=buf_alive[:size])
            contrib = np.bitwise_and(
                buf_rows[:size], buf_alive[:size], out=buf_rows[:size]
            )
            keys = block_base + arc_dst[pos]
            boundary = np.empty(size, dtype=bool)
            boundary[0] = True
            np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
            if boundary.all():
                # Every scatter key distinct: reduceat would be a
                # per-segment copy loop; skip it.
                agg = contrib
                touched = keys
            else:
                starts = np.flatnonzero(boundary)
                agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
                touched = keys[starts]
            current = flat[touched]
            updated = current | agg
            changed = np.any(updated != current, axis=1)
            if changed.any():
                # A destination split across chunks is still exact:
                # chunks run sequentially and scatter through |=-style
                # read-modify-write, so later chunks see earlier bits.
                any_change = True
                changed_keys = touched[changed]
                flat[changed_keys] = updated[changed]
                flat_frontier[changed_keys] = True
        if not any_change:
            break
    return reached.transpose(1, 0, 2)


def _reach_multi_full_width(
    plan: QueryPlan,
    batch: WorldBatch,
    sources: List[int],
) -> np.ndarray:
    """Legacy ungated fusion: every frontier arc at full ``S * W`` width.

    Kept as the ``gated=False`` branch of :func:`batch_reach_multi` so
    the dispatch crossover stays measurable
    (``benchmarks/bench_sweep_gated.py``) and parity-testable.  A
    frontier arc here is gathered for *all* sources even when only one
    source's BFS is near it — cheap for narrow batches, byte-hostile
    for wide ones.
    """
    num_sources = len(sources)
    words = batch.num_words
    reached = np.zeros(
        (plan.num_nodes, num_sources, words), dtype=np.uint64
    )
    for i, src in enumerate(sources):
        reached[src, i] = batch.valid
    if plan.arc_src.size == 0 or num_sources == 0:
        return reached

    flat = reached.reshape(plan.num_nodes, num_sources * words)
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        # Broadcast each arc's (W,) alive row across the S source
        # blocks instead of materializing an (E, S*W) tiled copy.
        contrib = (
            flat[arc_src[active]].reshape(-1, num_sources, words)
            & alive[arc_eid[active]][:, None, :]
        ).reshape(-1, num_sources * words)
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = flat[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        flat[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
    return reached


def hit_fraction(row: np.ndarray, num_samples: int) -> float:
    """Fraction of worlds whose bit is set in a reached-matrix row."""
    return int(popcount(row).sum()) / num_samples
