"""Batch possible-world kernel: coin flips and BFS for all samples at once.

World states are bit-packed: a batch of ``Z`` sampled worlds is an
``(num_edges, W)`` uint64 matrix (``W = ceil(Z / 64)`` words) whose bit
``i`` of row ``e`` says whether edge ``e`` exists in world ``i``.  The
reachability sweep keeps an ``(num_nodes, W)`` reached-bitmask and, per
sweep, propagates every arc for every world simultaneously::

    contrib = reached[arc_src] & alive[arc_eid]        # (A, W) gather
    reached[dst] |= bitwise_or.reduceat(contrib, ...)  # segmented scatter

so one pass over the arc table advances the BFS frontier of all ``Z``
samples.  The sweep repeats until fixpoint (at most ``diameter`` times).

When ``Z`` is not a multiple of 64 the trailing pad bits are kept zero in
every coin row, so pad-worlds have no edges and never reach anything
beyond the BFS sources; source rows are seeded with the valid-bit mask,
which keeps every popcount exact without masking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis import sanitize
from .csr import QueryPlan

WORD_BITS = 64

#: Edge-row block size for coin generation, sized so the temporary
#: float64 random matrix stays around ~32 MB regardless of Z.
_COIN_BLOCK_FLOATS = 4_000_000


def num_words(num_samples: int) -> int:
    """Words needed to hold one bit per sample."""
    return (num_samples + WORD_BITS - 1) // WORD_BITS


def pack_bool_matrix(bools: np.ndarray, num_samples: int) -> np.ndarray:
    """Pack a ``(rows, Z)`` bool matrix into ``(rows, W)`` uint64 words.

    Bit ``i`` of word ``w`` in a row is sample ``w * 64 + i``; pad bits
    past ``Z`` are zero.
    """
    rows = bools.shape[0]
    width = num_words(num_samples) * WORD_BITS
    if bools.shape[1] != width:
        padded = np.zeros((rows, width), dtype=bool)
        padded[:, :num_samples] = bools[:, :num_samples]
        bools = padded
    packed = np.packbits(
        np.ascontiguousarray(bools), axis=1, bitorder="little"
    )
    words = packed.view(np.uint64)
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return words


def valid_sample_mask(num_samples: int) -> np.ndarray:
    """``(W,)`` word row with exactly the first ``Z`` bits set."""
    return pack_bool_matrix(
        np.ones((1, num_samples), dtype=bool), num_samples
    )[0]


def unpack_word_row(words: np.ndarray) -> np.ndarray:
    """``(W,)`` uint64 words -> ``(W * 64,)`` bool bits (little-endian)."""
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), bitorder="little"
    ).astype(bool)


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit count (numpy>=2 fast path, SWAR fallback)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    x = words.astype(np.uint64, copy=True)  # pragma: no cover - numpy<2
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return (x * h01) >> np.uint64(56)


@dataclass
class WorldBatch:
    """``Z`` sampled possible worlds over one query plan's edge table."""

    alive: np.ndarray  # (num_edges, W) uint64 edge-existence bits
    num_samples: int
    valid: np.ndarray  # (W,) word row with the first Z bits set

    @property
    def num_words(self) -> int:
        return int(self.valid.shape[0])


def batch_to_words(batch: WorldBatch) -> np.ndarray:
    """Serializable payload of a batch: its ``(num_edges, W)`` coin words.

    The word matrix is the only state a :class:`WorldBatch` carries that
    cannot be recomputed from ``num_samples`` — ``valid`` is always
    :func:`valid_sample_mask`.  Persistent stores
    (:mod:`repro.index`) save exactly this array and rebuild the batch
    with :func:`batch_from_words`, so a round-trip is bit-for-bit.

    Only standard prefix-layout batches serialize; a
    :func:`concat_batches` result with interior pad bits is rejected
    (its ``valid`` mask is not reconstructible from ``num_samples``).
    """
    expected = valid_sample_mask(batch.num_samples)
    if (batch.valid.shape != expected.shape
            or not bool(np.array_equal(batch.valid, expected))):
        raise ValueError(
            "only prefix-layout batches serialize; concatenated batches "
            "with interior pad bits must be resampled, not stored"
        )
    return batch.alive


def batch_from_words(words: np.ndarray, num_samples: int) -> WorldBatch:
    """Rebuild a :class:`WorldBatch` from stored coin words.

    ``words`` may be any ``(num_edges, W)`` uint64 array — including a
    read-only memory map straight off an ``.npy`` file — because no
    kernel path mutates ``alive`` in place (overlay rows concatenate via
    :func:`extend_batch`).  The rebuilt batch is indistinguishable from
    the one :func:`sample_worlds` produced before serialization.
    """
    if words.ndim != 2 or words.dtype != np.uint64:
        raise ValueError(
            f"batch words must be a 2-D uint64 array, got "
            f"{words.dtype} with shape {words.shape}"
        )
    if words.shape[1] != num_words(num_samples):
        raise ValueError(
            f"word width {words.shape[1]} does not match Z={num_samples} "
            f"(expected {num_words(num_samples)})"
        )
    # Deserialized batches are shared across queries (and, store-backed,
    # across restarts): freeze the words so aliased in-place mutation
    # fails fast instead of corrupting every reader.  Store mmaps arrive
    # read-only already; this closes the hole for in-memory arrays.
    sanitize.freeze(words)
    return WorldBatch(
        alive=words,
        num_samples=num_samples,
        valid=sanitize.freeze(valid_sample_mask(num_samples)),
    )


def sample_worlds(
    plan: QueryPlan,
    num_samples: int,
    rng: np.random.Generator,
    forced_true: Iterable[int] = (),
    forced_false: Iterable[int] = (),
) -> WorldBatch:
    """Flip coins for every edge in every sample at once.

    ``forced_true`` / ``forced_false`` pin edge ids to a fixed state in
    all samples — the stratified sampler's conditioning mechanism.
    Probability-1 edges are always present, probability-0 never.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(plan.probs, "sample_worlds: plan.probs")
    num_edges = plan.num_edges
    words = num_words(num_samples)
    valid = valid_sample_mask(num_samples)
    alive = np.empty((num_edges, words), dtype=np.uint64)
    # float32 coins halve generation cost; the 2^-24 threshold bias is
    # orders of magnitude below Monte Carlo noise.  random() < 1.0 still
    # always holds (certain edges stay certain) and < 0.0 never does.
    probs = plan.probs.astype(np.float32)
    block = max(1, _COIN_BLOCK_FLOATS // max(num_samples, 1))
    for start in range(0, num_edges, block):
        stop = min(start + block, num_edges)
        coins = rng.random((stop - start, num_samples), dtype=np.float32)
        alive[start:stop] = pack_bool_matrix(
            coins < probs[start:stop, None], num_samples
        )
    forced_true = list(forced_true)
    forced_false = list(forced_false)
    if forced_true:
        alive[forced_true] = valid
    if forced_false:
        alive[forced_false] = 0
    return WorldBatch(alive=alive, num_samples=num_samples, valid=valid)


def bernoulli_row(
    p: float,
    num_samples: int,
    rng: np.random.Generator,
    valid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One bit-packed ``(W,)`` coin row: bit ``i`` set with probability ``p``.

    Uses the same float32 draw-and-compare as :func:`sample_worlds`
    (``random() < 1.0`` always holds, ``< 0.0`` never), so a row for a
    candidate edge is distributed exactly like the row that edge would
    get inside a freshly sampled batch.  Pad bits stay zero.

    ``valid`` selects the target bit layout: ``None`` is the standard
    prefix layout (samples occupy the first ``Z`` bits), while a
    ``(W,)`` valid-mask row places the ``Z`` coins at that mask's set
    bit positions — the layout of a :func:`concat_batches` batch, whose
    pad bits sit *between* blocks.  For a prefix mask both paths
    produce bit-identical rows.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(p, "bernoulli_row: p")
    if valid is None:
        if p <= 0.0:
            return np.zeros(num_words(num_samples), dtype=np.uint64)
        coins = rng.random(num_samples, dtype=np.float32) < np.float32(p)
        return pack_bool_matrix(coins[None, :], num_samples)[0]
    bits = unpack_word_row(valid)
    return bernoulli_row_at(
        p, num_samples, rng, np.flatnonzero(bits), bits.shape[0]
    )


def bernoulli_row_at(
    p: float,
    num_samples: int,
    rng: np.random.Generator,
    positions: np.ndarray,
    width_bits: int,
) -> np.ndarray:
    """:func:`bernoulli_row` with precomputed valid bit positions.

    Callers generating many rows against one layout (the selection
    kernel's per-round candidate rows) hoist the
    ``flatnonzero(unpack_word_row(valid))`` scan out of the per-row
    loop and call this directly.
    """
    if sanitize.enabled():
        sanitize.check_probabilities(p, "bernoulli_row_at: p")
    if p <= 0.0:
        return np.zeros(width_bits // WORD_BITS, dtype=np.uint64)
    positions = positions[:num_samples]
    coins = rng.random(num_samples, dtype=np.float32) < np.float32(p)
    row = np.zeros(width_bits, dtype=bool)
    row[positions] = coins[: positions.shape[0]]
    # row is already full word width, so packing adds no padding.
    return pack_bool_matrix(row[None, :], width_bits)[0]


def concat_batches(batches: Sequence[WorldBatch]) -> WorldBatch:
    """Concatenate world batches along the sample axis — cheaply.

    Blocks are joined at *word* granularity (no repacking): block ``i``
    keeps its own words, so a block whose ``Z`` is not a multiple of 64
    leaves zero pad bits in the middle of the combined row.  The
    combined ``valid`` mask has exactly the real sample bits set, and
    every kernel reduction (popcounts, hit fractions, reach sweeps)
    already ignores pad bits, so the concatenated batch behaves exactly
    like one batch of ``sum(Z_i)`` samples.  Used by the stratified and
    per-block selection backends to assemble conditioned sample blocks
    into one shared batch.
    """
    batches = list(batches)
    if not batches:
        raise ValueError("concat_batches needs at least one batch")
    if len(batches) == 1:
        return batches[0]
    return WorldBatch(
        alive=np.concatenate([b.alive for b in batches], axis=1),
        num_samples=sum(b.num_samples for b in batches),
        valid=np.concatenate([b.valid for b in batches]),
    )


def allocate_proportional(
    weights: Sequence[float],
    total: int,
) -> List[int]:
    """Largest-remainder allocation of ``total`` samples to strata.

    Quotas are ``total * w / sum(w)``; every stratum gets its floor and
    the leftovers go to the largest fractional parts (ties to the lower
    index).  Zero-weight strata get zero.  The result always sums to
    ``total``.
    """
    weights = np.asarray(list(weights), dtype=np.float64)
    if weights.size == 0:
        raise ValueError("need at least one stratum")
    if np.any(weights < 0.0):
        raise ValueError("stratum weights must be non-negative")
    mass = float(weights.sum())
    if mass <= 0.0:
        raise ValueError("stratum weights must not all be zero")
    quotas = total * weights / mass
    counts = np.floor(quotas).astype(np.int64)
    remainder = total - int(counts.sum())
    if remainder > 0:
        order = np.argsort(-(quotas - counts), kind="stable")
        counts[order[:remainder]] += 1
    return [int(c) for c in counts]


def sample_worlds_stratified(
    plan: QueryPlan,
    strata: Sequence[Tuple[Sequence[int], Sequence[int], float]],
    num_samples: int,
    rng: np.random.Generator,
) -> WorldBatch:
    """One batch of ``Z`` worlds stratified over forced edge states.

    ``strata`` is a sequence of ``(forced_true_ids, forced_false_ids,
    weight)`` triples partitioning the probability space; each stratum
    gets a largest-remainder proportional share of ``num_samples`` and
    its worlds are sampled with the stratum's edges pinned
    (:func:`sample_worlds`).  Because allocation is proportional, the
    *uniform* average over the combined batch is the stratified
    estimator itself (up to integer rounding) — which is what lets the
    selection-gain kernel treat a stratified batch exactly like a plain
    one.  Zero-allocation strata are skipped.
    """
    counts = allocate_proportional([w for _, _, w in strata], num_samples)
    blocks: List[WorldBatch] = []
    for (forced_true, forced_false, _w), count in zip(
            strata, counts, strict=True):
        if count <= 0:
            continue
        blocks.append(
            sample_worlds(plan, count, rng, forced_true, forced_false)
        )
    if not blocks:
        raise ValueError("no stratum received a positive allocation")
    return concat_batches(blocks)


def extend_batch(batch: WorldBatch, rows: np.ndarray) -> WorldBatch:
    """Batch over an overlay-extended plan: append per-edge coin rows.

    ``rows`` is ``(num_extra_edges, W)`` — one coin row per overlay edge,
    in overlay order, matching the edge ids
    :func:`~repro.engine.csr.extend_with_overlay` assigns.  The base
    rows are shared, not copied per call beyond the concatenation.
    """
    return WorldBatch(
        alive=np.concatenate([batch.alive, rows]),
        num_samples=batch.num_samples,
        valid=batch.valid,
    )


def batch_reach(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
    target_index: Optional[int] = None,
) -> np.ndarray:
    """Reached-bitmask ``(num_nodes, W)`` from the given source indices.

    Every BFS sweep advances all ``Z`` worlds one frontier step; the loop
    runs until no world's reached set grows (bounded by the diameter).
    Sweeps are frontier-restricted: only arcs whose source row changed
    in the previous sweep are gathered, and because the arc table is
    destination-sorted any subset of it stays destination-sorted, so
    the segmented ``reduceat`` scatter works unchanged on the subset.

    Passing several sources computes reachability *from the source set*
    in each world — exactly the union semantics multi-source queries
    need.  With ``target_index`` the sweep stops as soon as the target
    row saturates against the valid mask (all worlds reached it).
    """
    sources = list(source_indices)
    reached = np.zeros((plan.num_nodes, batch.num_words), dtype=np.uint64)
    reached[sources] = batch.valid
    if plan.arc_src.size == 0:
        return reached
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    return _sweep_fixpoint(plan, batch, reached, frontier, target_index)


def batch_reach_resume(
    plan: QueryPlan,
    batch: WorldBatch,
    reached: np.ndarray,
    frontier_nodes: Sequence[int],
) -> np.ndarray:
    """Continue a reachability sweep from a partial reached state.

    ``reached`` must be a *valid lower bound* of the fixpoint — every
    set bit certified by an actual path in that world — and
    ``frontier_nodes`` must contain every node whose row gained bits
    since the state was last a fixpoint.  Because batch reachability is
    monotone, resuming the sweep from exactly those rows converges to
    the same fixpoint a from-scratch :func:`batch_reach` over the same
    ``(plan, batch)`` would, bit for bit — this is what lets greedy
    selection restart sweeps from a committed winner's endpoints
    instead of re-sweeping all worlds from the query endpoints
    (:mod:`repro.engine.selection`).

    ``reached`` is updated in place (and also returned).  Rows for
    nodes the plan added since the state was built must already be
    present (zero-padded) — see
    :meth:`repro.engine.selection.SelectionGainKernel`.
    """
    if reached.shape[0] != plan.num_nodes:
        raise ValueError(
            f"reached has {reached.shape[0]} rows for a plan with "
            f"{plan.num_nodes} nodes; pad before resuming"
        )
    if plan.arc_src.size == 0:
        return reached
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[list(frontier_nodes)] = True
    return _sweep_fixpoint(plan, batch, reached, frontier, None)


def _sweep_fixpoint(
    plan: QueryPlan,
    batch: WorldBatch,
    reached: np.ndarray,
    frontier: np.ndarray,
    target_index: Optional[int],
) -> np.ndarray:
    """Run frontier-restricted sweeps over ``reached`` until fixpoint."""
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        contrib = reached[arc_src[active]] & alive[arc_eid[active]]
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = reached[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        reached[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
        if target_index is not None and np.array_equal(
            reached[target_index], batch.valid
        ):
            break
    return reached


#: Auto-dispatch threshold for :func:`batch_reach_multi`: gated sweeps
#: for rows of at least this many words, full-width fusion below.
#: Measured by ``benchmarks/bench_sweep_gated.py``: at W=1 (Z<=64) the
#: full-width pass wins (~2.5x vs per-source on frontier-dense graphs)
#: because one wide gather beats pair bookkeeping, while from W=2 up
#: the gated pass matches or beats it everywhere measured.
GATED_MIN_WORDS = 2

#: Gated-sweep chunking: at most this many pairs per chunk (measured —
#: more pairs per call puts ``reduceat`` on its slow
#: many-segments-per-call path) and at most this many bytes of gather
#: buffer (keeps temporaries cache-resident at any row width; very wide
#: rows shrink the pair count instead of growing the buffers).
_GATED_CHUNK_PAIRS = 4096
_GATED_CHUNK_BYTES = 2 << 20


def _gated_chunk_pairs(words: int) -> int:
    return max(
        256, min(_GATED_CHUNK_PAIRS, _GATED_CHUNK_BYTES // (words * 8))
    )


def batch_reach_multi(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
    gated: Optional[bool] = None,
) -> np.ndarray:
    """Independent per-source reached-bitmasks in one fused sweep.

    Runs the same frontier-restricted fixpoint as :func:`batch_reach`,
    but for ``S`` sources *at once* over the same sampled worlds, so an
    ``S``-source workload costs ``max`` (not ``sum``) of the per-source
    sweep counts and the numpy per-sweep overhead is amortized across
    the whole workload — the multi-source kernel sharing that makes
    session pair workloads cheap.

    ``gated=True`` is the **frontier-gated** fusion: each sweep gathers
    only the ``(arc, source)`` pairs whose source-local frontier is
    active.  The per-source frontier is an ``(S, n)`` bool matrix;
    indexing its arc-source columns yields an ``(S, A)`` activity mask
    whose flat nonzero positions enumerate pairs already sorted by
    ``(source block, arc position)`` — the arc table is
    destination-sorted, so the flat scatter keys ``source * n + dst``
    are non-decreasing and feed ``bitwise_or.reduceat`` directly, no
    per-sweep sort needed.  Sweep work is therefore proportional to the
    *active* frontier (``pairs * W`` words), not ``S * W`` words for
    every union-frontier arc, which is what extends the fusion win from
    narrow to wide batches; pairs are processed in cache-sized chunks
    through preallocated gather buffers, and chunks whose scatter keys
    are all distinct (the common case on sparse frontiers) skip
    ``reduceat`` entirely.  ``gated=False`` keeps the legacy full-width
    fusion; ``None`` (default) picks by row width
    (:data:`GATED_MIN_WORDS`).  All three paths are bit-for-bit
    identical (``benchmarks/bench_sweep_gated.py`` pins this along with
    the speedups).

    Returns ``(num_nodes, S, W)``: row ``[v, i]`` is source ``i``'s
    reached-bits for node ``v``.  Unlike :func:`batch_reach` the union
    is *not* taken across sources; use ``batch_reach`` for union
    (multi-source reachability) semantics.
    """
    sources = list(source_indices)
    num_sources = len(sources)
    words = batch.num_words
    if gated is None:
        gated = words >= GATED_MIN_WORDS
    if not gated:
        return _reach_multi_full_width(plan, batch, sources)
    num_nodes = plan.num_nodes
    # Source-major layout: block i is source i's own (n, W) sweep; the
    # flat (S * n, W) view makes (source, node) pairs single scatter
    # keys.  Transposed back to the public (n, S, W) contract on return.
    reached = np.zeros((num_sources, num_nodes, words), dtype=np.uint64)
    for i, src in enumerate(sources):
        reached[i, src] = batch.valid
    if plan.arc_src.size == 0 or num_sources == 0:
        return reached.transpose(1, 0, 2)

    flat = reached.reshape(num_sources * num_nodes, words)
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    num_arcs = arc_src.size
    frontier = np.zeros((num_sources, num_nodes), dtype=bool)
    for i, src in enumerate(sources):
        frontier[i, src] = True
    flat_frontier = frontier.reshape(-1)
    chunk = _gated_chunk_pairs(words)
    buf_rows = np.empty((chunk, words), dtype=np.uint64)
    buf_alive = np.empty((chunk, words), dtype=np.uint64)
    while True:
        # (S, A) activity mask: pair (i, a) is live iff arc a's source
        # node is on source i's frontier.  flatnonzero + divmod beats
        # 2-D nonzero by a wide margin on these small masks.
        active = frontier[:, arc_src]
        pair_idx = np.flatnonzero(active.ravel())
        num_pairs = pair_idx.size
        if num_pairs == 0:
            break
        src_block = pair_idx // num_arcs
        arc_pos = pair_idx - src_block * num_arcs
        flat_frontier[:] = False
        any_change = False
        for lo in range(0, num_pairs, chunk):
            hi = min(lo + chunk, num_pairs)
            size = hi - lo
            block_base = src_block[lo:hi] * num_nodes
            pos = arc_pos[lo:hi]
            np.take(
                flat, block_base + arc_src[pos], axis=0,
                out=buf_rows[:size],
            )
            np.take(alive, arc_eid[pos], axis=0, out=buf_alive[:size])
            contrib = np.bitwise_and(
                buf_rows[:size], buf_alive[:size], out=buf_rows[:size]
            )
            keys = block_base + arc_dst[pos]
            boundary = np.empty(size, dtype=bool)
            boundary[0] = True
            np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
            if boundary.all():
                # Every scatter key distinct: reduceat would be a
                # per-segment copy loop; skip it.
                agg = contrib
                touched = keys
            else:
                starts = np.flatnonzero(boundary)
                agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
                touched = keys[starts]
            current = flat[touched]
            updated = current | agg
            changed = np.any(updated != current, axis=1)
            if changed.any():
                # A destination split across chunks is still exact:
                # chunks run sequentially and scatter through |=-style
                # read-modify-write, so later chunks see earlier bits.
                any_change = True
                changed_keys = touched[changed]
                flat[changed_keys] = updated[changed]
                flat_frontier[changed_keys] = True
        if not any_change:
            break
    return reached.transpose(1, 0, 2)


def _reach_multi_full_width(
    plan: QueryPlan,
    batch: WorldBatch,
    sources: List[int],
) -> np.ndarray:
    """Legacy ungated fusion: every frontier arc at full ``S * W`` width.

    Kept as the ``gated=False`` branch of :func:`batch_reach_multi` so
    the dispatch crossover stays measurable
    (``benchmarks/bench_sweep_gated.py``) and parity-testable.  A
    frontier arc here is gathered for *all* sources even when only one
    source's BFS is near it — cheap for narrow batches, byte-hostile
    for wide ones.
    """
    num_sources = len(sources)
    words = batch.num_words
    reached = np.zeros(
        (plan.num_nodes, num_sources, words), dtype=np.uint64
    )
    for i, src in enumerate(sources):
        reached[src, i] = batch.valid
    if plan.arc_src.size == 0 or num_sources == 0:
        return reached

    flat = reached.reshape(plan.num_nodes, num_sources * words)
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        # Broadcast each arc's (W,) alive row across the S source
        # blocks instead of materializing an (E, S*W) tiled copy.
        contrib = (
            flat[arc_src[active]].reshape(-1, num_sources, words)
            & alive[arc_eid[active]][:, None, :]
        ).reshape(-1, num_sources * words)
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = flat[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        flat[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
    return reached


def hit_fraction(row: np.ndarray, num_samples: int) -> float:
    """Fraction of worlds whose bit is set in a reached-matrix row."""
    return int(popcount(row).sum()) / num_samples
