"""Batch possible-world kernel: coin flips and BFS for all samples at once.

World states are bit-packed: a batch of ``Z`` sampled worlds is an
``(num_edges, W)`` uint64 matrix (``W = ceil(Z / 64)`` words) whose bit
``i`` of row ``e`` says whether edge ``e`` exists in world ``i``.  The
reachability sweep keeps an ``(num_nodes, W)`` reached-bitmask and, per
sweep, propagates every arc for every world simultaneously::

    contrib = reached[arc_src] & alive[arc_eid]        # (A, W) gather
    reached[dst] |= bitwise_or.reduceat(contrib, ...)  # segmented scatter

so one pass over the arc table advances the BFS frontier of all ``Z``
samples.  The sweep repeats until fixpoint (at most ``diameter`` times).

When ``Z`` is not a multiple of 64 the trailing pad bits are kept zero in
every coin row, so pad-worlds have no edges and never reach anything
beyond the BFS sources; source rows are seeded with the valid-bit mask,
which keeps every popcount exact without masking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from .csr import QueryPlan

WORD_BITS = 64

#: Edge-row block size for coin generation, sized so the temporary
#: float64 random matrix stays around ~32 MB regardless of Z.
_COIN_BLOCK_FLOATS = 4_000_000


def num_words(num_samples: int) -> int:
    """Words needed to hold one bit per sample."""
    return (num_samples + WORD_BITS - 1) // WORD_BITS


def pack_bool_matrix(bools: np.ndarray, num_samples: int) -> np.ndarray:
    """Pack a ``(rows, Z)`` bool matrix into ``(rows, W)`` uint64 words.

    Bit ``i`` of word ``w`` in a row is sample ``w * 64 + i``; pad bits
    past ``Z`` are zero.
    """
    rows = bools.shape[0]
    width = num_words(num_samples) * WORD_BITS
    if bools.shape[1] != width:
        padded = np.zeros((rows, width), dtype=bool)
        padded[:, :num_samples] = bools[:, :num_samples]
        bools = padded
    packed = np.packbits(
        np.ascontiguousarray(bools), axis=1, bitorder="little"
    )
    words = packed.view(np.uint64)
    if words.dtype.byteorder == ">" or (
        words.dtype.byteorder == "=" and np.little_endian is False
    ):  # pragma: no cover - big-endian hosts only
        words = words.byteswap()
    return words


def valid_sample_mask(num_samples: int) -> np.ndarray:
    """``(W,)`` word row with exactly the first ``Z`` bits set."""
    return pack_bool_matrix(
        np.ones((1, num_samples), dtype=bool), num_samples
    )[0]


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit count (numpy>=2 fast path, SWAR fallback)."""
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words)
    x = words.astype(np.uint64, copy=True)  # pragma: no cover - numpy<2
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    x = x - ((x >> np.uint64(1)) & m1)
    x = (x & m2) + ((x >> np.uint64(2)) & m2)
    x = (x + (x >> np.uint64(4))) & m4
    return (x * h01) >> np.uint64(56)


@dataclass
class WorldBatch:
    """``Z`` sampled possible worlds over one query plan's edge table."""

    alive: np.ndarray  # (num_edges, W) uint64 edge-existence bits
    num_samples: int
    valid: np.ndarray  # (W,) word row with the first Z bits set

    @property
    def num_words(self) -> int:
        return int(self.valid.shape[0])


def sample_worlds(
    plan: QueryPlan,
    num_samples: int,
    rng: np.random.Generator,
    forced_true: Iterable[int] = (),
    forced_false: Iterable[int] = (),
) -> WorldBatch:
    """Flip coins for every edge in every sample at once.

    ``forced_true`` / ``forced_false`` pin edge ids to a fixed state in
    all samples — the stratified sampler's conditioning mechanism.
    Probability-1 edges are always present, probability-0 never.
    """
    num_edges = plan.num_edges
    words = num_words(num_samples)
    valid = valid_sample_mask(num_samples)
    alive = np.empty((num_edges, words), dtype=np.uint64)
    # float32 coins halve generation cost; the 2^-24 threshold bias is
    # orders of magnitude below Monte Carlo noise.  random() < 1.0 still
    # always holds (certain edges stay certain) and < 0.0 never does.
    probs = plan.probs.astype(np.float32)
    block = max(1, _COIN_BLOCK_FLOATS // max(num_samples, 1))
    for start in range(0, num_edges, block):
        stop = min(start + block, num_edges)
        coins = rng.random((stop - start, num_samples), dtype=np.float32)
        alive[start:stop] = pack_bool_matrix(
            coins < probs[start:stop, None], num_samples
        )
    forced_true = list(forced_true)
    forced_false = list(forced_false)
    if forced_true:
        alive[forced_true] = valid
    if forced_false:
        alive[forced_false] = 0
    return WorldBatch(alive=alive, num_samples=num_samples, valid=valid)


def bernoulli_row(
    p: float,
    num_samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One bit-packed ``(W,)`` coin row: bit ``i`` set with probability ``p``.

    Uses the same float32 draw-and-compare as :func:`sample_worlds`
    (``random() < 1.0`` always holds, ``< 0.0`` never), so a row for a
    candidate edge is distributed exactly like the row that edge would
    get inside a freshly sampled batch.  Pad bits past ``Z`` stay zero.
    """
    if p <= 0.0:
        return np.zeros(num_words(num_samples), dtype=np.uint64)
    coins = rng.random(num_samples, dtype=np.float32) < np.float32(p)
    return pack_bool_matrix(coins[None, :], num_samples)[0]


def extend_batch(batch: WorldBatch, rows: np.ndarray) -> WorldBatch:
    """Batch over an overlay-extended plan: append per-edge coin rows.

    ``rows`` is ``(num_extra_edges, W)`` — one coin row per overlay edge,
    in overlay order, matching the edge ids
    :func:`~repro.engine.csr.extend_with_overlay` assigns.  The base
    rows are shared, not copied per call beyond the concatenation.
    """
    return WorldBatch(
        alive=np.concatenate([batch.alive, rows]),
        num_samples=batch.num_samples,
        valid=batch.valid,
    )


def batch_reach(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
    target_index: Optional[int] = None,
) -> np.ndarray:
    """Reached-bitmask ``(num_nodes, W)`` from the given source indices.

    Every BFS sweep advances all ``Z`` worlds one frontier step; the loop
    runs until no world's reached set grows (bounded by the diameter).
    Sweeps are frontier-restricted: only arcs whose source row changed
    in the previous sweep are gathered, and because the arc table is
    destination-sorted any subset of it stays destination-sorted, so
    the segmented ``reduceat`` scatter works unchanged on the subset.

    Passing several sources computes reachability *from the source set*
    in each world — exactly the union semantics multi-source queries
    need.  With ``target_index`` the sweep stops as soon as the target
    row saturates against the valid mask (all worlds reached it).
    """
    sources = list(source_indices)
    reached = np.zeros((plan.num_nodes, batch.num_words), dtype=np.uint64)
    reached[sources] = batch.valid
    if plan.arc_src.size == 0:
        return reached

    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        contrib = reached[arc_src[active]] & alive[arc_eid[active]]
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = reached[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        reached[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
        if target_index is not None and np.array_equal(
            reached[target_index], batch.valid
        ):
            break
    return reached


def batch_reach_multi(
    plan: QueryPlan,
    batch: WorldBatch,
    source_indices: Sequence[int],
) -> np.ndarray:
    """Independent per-source reached-bitmasks in one fused sweep.

    Runs the same frontier-restricted fixpoint as :func:`batch_reach`,
    but for ``S`` sources *at once*: the word axis is widened to
    ``S * W`` words, block ``i`` holding source ``i``'s own BFS over the
    same sampled worlds.  One gather/reduceat/scatter pass advances
    every sample of every source, so an ``S``-source workload costs
    ``max`` (not ``sum``) of the per-source sweep counts and the numpy
    per-sweep overhead is amortized across the whole workload — the
    multi-source kernel sharing that makes session pair workloads cheap.

    Returns ``(num_nodes, S, W)``: row ``[v, i]`` is source ``i``'s
    reached-bits for node ``v``.  Unlike :func:`batch_reach` the union
    is *not* taken across sources; use ``batch_reach`` for union
    (multi-source reachability) semantics.
    """
    sources = list(source_indices)
    num_sources = len(sources)
    words = batch.num_words
    reached = np.zeros(
        (plan.num_nodes, num_sources, words), dtype=np.uint64
    )
    for i, src in enumerate(sources):
        reached[src, i] = batch.valid
    if plan.arc_src.size == 0 or num_sources == 0:
        return reached

    flat = reached.reshape(plan.num_nodes, num_sources * words)
    arc_src = plan.arc_src
    arc_dst = plan.arc_dst
    arc_eid = plan.arc_eid
    alive = batch.alive
    frontier = np.zeros(plan.num_nodes, dtype=bool)
    frontier[sources] = True
    while True:
        active = np.flatnonzero(frontier[arc_src])
        if active.size == 0:
            break
        # Broadcast each arc's (W,) alive row across the S source
        # blocks instead of materializing an (E, S*W) tiled copy.
        contrib = (
            flat[arc_src[active]].reshape(-1, num_sources, words)
            & alive[arc_eid[active]][:, None, :]
        ).reshape(-1, num_sources * words)
        sub_dst = arc_dst[active]
        starts = np.flatnonzero(
            np.concatenate(([True], sub_dst[1:] != sub_dst[:-1]))
        )
        agg = np.bitwise_or.reduceat(contrib, starts, axis=0)
        touched = sub_dst[starts]
        current = flat[touched]
        updated = current | agg
        changed = np.any(updated != current, axis=1)
        frontier[:] = False
        if not changed.any():
            break
        changed_nodes = touched[changed]
        flat[changed_nodes] = updated[changed]
        frontier[changed_nodes] = True
    return reached


def hit_fraction(row: np.ndarray, num_samples: int) -> float:
    """Fraction of worlds whose bit is set in a reached-matrix row."""
    return int(popcount(row).sum()) / num_samples
