"""Compiled CSR-style adjacency for the vectorized sampling engine.

The engine never traverses the dict-of-dicts :class:`UncertainGraph`
directly.  Instead it compiles the graph once into flat numpy arrays —
one canonical *edge* table (probabilities, one coin per edge) and one
*arc* table (directed traversal entries, two per undirected edge) sorted
by destination so a whole BFS sweep is a gather + ``bitwise_or.reduceat``
scatter.  The compilation is cached on the graph instance and keyed on
:attr:`UncertainGraph.version`, so selection loops that evaluate
thousands of candidate overlays against the same base graph compile
exactly once.

Candidate-edge overlays never mutate the base compilation: an
:func:`extend_with_overlay` call produces a merged :class:`QueryPlan`
that appends overlay edges (and any overlay-only endpoints) behind the
base arrays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph

ProbEdge = Tuple[int, int, float]
EdgeKey = Tuple[int, int]

_CACHE_ATTR = "_engine_csr_cache"


class QueryPlan:
    """Flat arrays the batch kernel consumes.

    Attributes
    ----------
    num_nodes:
        Total node count, including overlay-only endpoints.
    probs:
        ``(num_edges,)`` float64 — one existence probability per
        canonical edge (undirected edges appear once).
    arc_src / arc_eid:
        ``(num_arcs,)`` — source node index and edge id of every
        traversal arc, **sorted by destination index**.
    dst_unique / dst_starts:
        Unique destination indices and the start offset of each
        destination's contiguous arc segment (``reduceat`` boundaries).
    node_ids / index_of:
        Bidirectional node id <-> dense index mapping.
    edge_index:
        Canonical ``(u, v)`` node-id key -> tuple of edge ids carrying
        that key (used by stratified sampling to force edge states;
        base and overlay edges with the same endpoints share a key).
    edge_u / edge_v / edge_ordinal:
        ``(num_edges,)`` int64 — the *identity* of each edge id in
        node-id space: canonical endpoints plus the edge's ordinal
        among same-key duplicates (0 for every base edge; > 0 only for
        overlay edges stacked on an existing key).  The keyed coin
        generator (:func:`~repro.engine.kernel.sample_worlds`) seeds
        each edge's coin row from this identity, never from the edge
        id, so recompiling after a graph edit leaves untouched edges'
        coins bit-identical even when their edge ids shift.
    """

    __slots__ = (
        "directed",
        "num_nodes",
        "num_edges",
        "probs",
        "arc_src",
        "arc_dst",
        "arc_eid",
        "dst_unique",
        "dst_starts",
        "node_ids",
        "index_of",
        "edge_index",
        "edge_u",
        "edge_v",
        "edge_ordinal",
        "_reverse",
    )

    def __init__(
        self,
        directed: bool,
        num_nodes: int,
        probs: np.ndarray,
        arc_src: np.ndarray,
        arc_dst: np.ndarray,
        arc_eid: np.ndarray,
        node_ids: List[int],
        index_of: Dict[int, int],
        edge_index: Dict[EdgeKey, Tuple[int, ...]],
    ) -> None:
        self.directed = directed
        self.num_nodes = num_nodes
        self.num_edges = int(probs.shape[0])
        self.probs = probs
        self.node_ids = node_ids
        self.index_of = index_of
        self.edge_index = edge_index
        if arc_dst.size == 0 or bool(np.all(arc_dst[1:] >= arc_dst[:-1])):
            # Already destination-sorted — the overlay-merge fast path
            # (:func:`extend_with_overlay` inserts in sorted position)
            # and the empty table; skip the O(A log A) argsort that
            # would otherwise run once per greedy round.
            self.arc_dst = np.ascontiguousarray(arc_dst)
            self.arc_src = np.ascontiguousarray(arc_src)
            self.arc_eid = np.ascontiguousarray(arc_eid)
        else:
            order = np.argsort(arc_dst, kind="stable")
            self.arc_dst = np.ascontiguousarray(arc_dst[order])
            self.arc_src = np.ascontiguousarray(arc_src[order])
            self.arc_eid = np.ascontiguousarray(arc_eid[order])
        arc_dst = self.arc_dst
        if arc_dst.size:
            self.dst_unique, self.dst_starts = np.unique(
                arc_dst, return_index=True
            )
        else:
            self.dst_unique = np.empty(0, dtype=np.int64)
            self.dst_starts = np.empty(0, dtype=np.int64)
        # Edge identities derive from edge_index, which every
        # construction path already threads through: the ordinal is the
        # edge's position inside its key's id tuple.
        self.edge_u = np.empty(self.num_edges, dtype=np.int64)
        self.edge_v = np.empty(self.num_edges, dtype=np.int64)
        self.edge_ordinal = np.empty(self.num_edges, dtype=np.int64)
        for (key_u, key_v), eids in edge_index.items():
            for ordinal, eid in enumerate(eids):
                self.edge_u[eid] = key_u
                self.edge_v[eid] = key_v
                self.edge_ordinal[eid] = ordinal
        self._reverse: Optional["QueryPlan"] = None

    def node_index(self, node: int) -> Optional[int]:
        """Dense index of ``node`` or ``None`` when absent."""
        return self.index_of.get(node)

    def reverse_view(self) -> "QueryPlan":
        """Plan over the same worlds with every arc flipped.

        The reverse view shares edge ids (and therefore
        :class:`~repro.engine.kernel.WorldBatch` coin rows), node
        indexing and probabilities with this plan — only the traversal
        direction changes, so a reverse batch BFS from ``t`` over the
        *same* sampled worlds yields, for every node ``v``, the bitmask
        of worlds in which ``v`` reaches ``t``.  Undirected plans are
        their own reverse (the arc table already holds both
        orientations).  The view is built once per plan and cached;
        ``rv.reverse_view() is plan`` holds.
        """
        if not self.directed:
            return self
        if self._reverse is None:
            reverse = QueryPlan(
                directed=True,
                num_nodes=self.num_nodes,
                probs=self.probs,
                arc_src=self.arc_dst,
                arc_dst=self.arc_src,
                arc_eid=self.arc_eid,
                node_ids=self.node_ids,
                index_of=self.index_of,
                edge_index=self.edge_index,
            )
            reverse._reverse = self
            self._reverse = reverse
        return self._reverse


def canonical_key(directed: bool, u: int, v: int) -> EdgeKey:
    """Stable edge key: ``(min, max)`` for undirected graphs."""
    if not directed and v < u:
        return (v, u)
    return (u, v)


def _compile(graph: UncertainGraph) -> QueryPlan:
    node_ids = list(graph.nodes())
    index_of = {u: i for i, u in enumerate(node_ids)}
    directed = graph.directed

    num_edges = graph.num_edges
    probs = np.empty(num_edges, dtype=np.float64)
    num_arcs = num_edges if directed else 2 * num_edges
    arc_src = np.empty(num_arcs, dtype=np.int64)
    arc_dst = np.empty(num_arcs, dtype=np.int64)
    arc_eid = np.empty(num_arcs, dtype=np.int64)
    edge_index: Dict[EdgeKey, Tuple[int, ...]] = {}

    # Edge ids are assigned in sorted (u, v) order — the same canonical
    # order UncertainGraph.content_hash() hashes edges in — never in
    # insertion order.  The persistent index (repro.index) files world
    # batches by content hash with one coin row per edge id, so two
    # content-equal graphs MUST compile to the same edge-id layout or a
    # store hit would hand one graph coin rows permuted against the
    # other's probabilities.
    pos = 0
    for eid, (u, v, p) in enumerate(sorted(graph.edges())):
        probs[eid] = p
        key = canonical_key(directed, u, v)
        edge_index[key] = (*edge_index.get(key, ()), eid)
        ui, vi = index_of[u], index_of[v]
        arc_src[pos] = ui
        arc_dst[pos] = vi
        arc_eid[pos] = eid
        pos += 1
        if not directed:
            arc_src[pos] = vi
            arc_dst[pos] = ui
            arc_eid[pos] = eid
            pos += 1

    return QueryPlan(
        directed=directed,
        num_nodes=len(node_ids),
        probs=probs,
        arc_src=arc_src[:pos],
        arc_dst=arc_dst[:pos],
        arc_eid=arc_eid[:pos],
        node_ids=node_ids,
        index_of=index_of,
        edge_index=edge_index,
    )


def compile_plan(graph: UncertainGraph) -> QueryPlan:
    """Compiled base plan for ``graph``, cached per graph version.

    The cache lives on the graph instance (``graph._engine_csr_cache``)
    and is invalidated by :attr:`UncertainGraph.version`, which bumps on
    every mutation.  Holding a returned plan across graph mutations is
    safe — plans are immutable snapshots.
    """
    cached = getattr(graph, _CACHE_ATTR, None)
    if cached is not None and cached[0] == graph.version:
        return cached[1]
    plan = _compile(graph)
    setattr(graph, _CACHE_ATTR, (graph.version, plan))
    return plan


def compile_reverse_plan(graph: UncertainGraph) -> QueryPlan:
    """Compiled reverse-arc plan for ``graph``, cached per graph version.

    The reverse plan drives the *into-t* sweep of the selection-gain
    kernel: it is :func:`compile_plan`'s result with every arc flipped,
    sharing edge ids (and therefore world batches) with the forward
    plan.  Caching composes from the existing layers — the forward
    plan is cached on the graph keyed on
    :attr:`UncertainGraph.version`, and the reverse view is cached on
    the plan instance — so a mutation invalidates both directions at
    once and no second graph-level cache is needed.
    """
    return compile_plan(graph).reverse_view()


def extend_with_overlay(
    base: QueryPlan,
    extra_edges: Iterable[ProbEdge],
) -> QueryPlan:
    """Merged plan: base graph plus overlay ``(u, v, p)`` edges.

    Overlay edges are appended with fresh edge ids (coins independent of
    base edges); endpoints unknown to the base graph get new dense
    indices so overlays may route through nodes the graph has never
    seen, matching the legacy scalar traversal semantics.
    """
    extra = list(extra_edges)
    if not extra:
        return base

    index_of = dict(base.index_of)
    node_ids = list(base.node_ids)

    def intern(node: int) -> int:
        idx = index_of.get(node)
        if idx is None:
            idx = len(node_ids)
            index_of[node] = idx
            node_ids.append(node)
        return idx

    directed = base.directed
    n_extra = len(extra)
    probs = np.empty(n_extra, dtype=np.float64)
    num_arcs = n_extra if directed else 2 * n_extra
    arc_src = np.empty(num_arcs, dtype=np.int64)
    arc_dst = np.empty(num_arcs, dtype=np.int64)
    arc_eid = np.empty(num_arcs, dtype=np.int64)
    edge_index = dict(base.edge_index)

    pos = 0
    for offset, (u, v, p) in enumerate(extra):
        eid = base.num_edges + offset
        probs[offset] = p
        key = canonical_key(directed, u, v)
        edge_index[key] = (*edge_index.get(key, ()), eid)
        ui, vi = intern(u), intern(v)
        arc_src[pos] = ui
        arc_dst[pos] = vi
        arc_eid[pos] = eid
        pos += 1
        if not directed:
            arc_src[pos] = vi
            arc_dst[pos] = ui
            arc_eid[pos] = eid
            pos += 1

    # The base arc table is destination-sorted; insert the few overlay
    # arcs at their sorted positions (side="right" keeps base arcs
    # before overlay arcs of equal destination, matching what a stable
    # argsort of the concatenation produced) so QueryPlan's
    # sorted-input fast path skips the O(A log A) re-sort — this runs
    # once per greedy round in the incremental selection loop.
    new_order = np.argsort(arc_dst[:pos], kind="stable")
    ins_dst = arc_dst[:pos][new_order]
    positions = np.searchsorted(base.arc_dst, ins_dst, side="right")
    merged_dst = np.insert(base.arc_dst, positions, ins_dst)
    merged_src = np.insert(base.arc_src, positions, arc_src[:pos][new_order])
    merged_eid = np.insert(base.arc_eid, positions, arc_eid[:pos][new_order])
    return QueryPlan(
        directed=directed,
        num_nodes=len(node_ids),
        probs=np.concatenate([base.probs, probs]),
        arc_src=merged_src,
        arc_dst=merged_dst,
        arc_eid=merged_eid,
        node_ids=node_ids,
        index_of=index_of,
        edge_index=edge_index,
    )


def build_query_plan(
    graph: UncertainGraph,
    extra_edges: Optional[Sequence[ProbEdge]] = None,
) -> QueryPlan:
    """One-call helper: cached base compile, optionally overlay-merged."""
    plan = compile_plan(graph)
    if extra_edges:
        plan = extend_with_overlay(plan, extra_edges)
    return plan
