"""Repo-specific static analysis + runtime sanitizer (``repro check``).

Two halves, one purpose — keep the determinism contracts that every
layer of this repo depends on machine-enforced instead of
tribal-knowledge:

:mod:`repro.analysis.rules` / :mod:`repro.analysis.checker`
    ``repro-check``, an stdlib-``ast`` lint pass with one named rule
    per invariant (REP001-REP006: seeded RNG only, version bumps on
    graph mutation, content-hash-keyed disk state, immutable world
    batches, no wall clock in timings).  Run it as ``repro check`` or
    ``python -m repro.analysis``; suppress a finding with a trailing
    ``# repro-check: disable=REPxxx``.
:mod:`repro.analysis.sanitize`
    The runtime counterpart (``REPRO_SANITIZE=1`` or
    :func:`~repro.analysis.sanitize.enable`): thread-affinity guards on
    sessions and stores, read-only world-batch arrays, probability
    range/NaN asserts at the kernel door.

See the "Invariants" section of ``docs/architecture.md`` for what each
rule protects and which layer depends on it.
"""

from . import sanitize
from .checker import check_paths, check_source, main
from .rules import ALL_RULES, Diagnostic, FileContext, Rule

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "FileContext",
    "Rule",
    "check_paths",
    "check_source",
    "main",
    "sanitize",
]
