"""Runtime sanitizer: dynamic checks for the contracts repro-check lints.

Static rules catch what the AST shows; this module catches what only
shows up at runtime — a second thread slipping into a session, a kernel
fed NaN probabilities, a cached world batch mutated through an alias.
Off by default and free when off (every guard is behind one
:func:`enabled` check); turn it on with either::

    REPRO_SANITIZE=1 pytest            # environment switch (CI)
    repro.analysis.sanitize.enable()   # programmatic switch

Three guard families:

* :class:`ThreadAffinity` — ``Session`` and ``IndexStore`` bind to the
  first thread that *uses* them and raise :class:`SanitizerError` on
  cross-thread calls.  Binding is lazy (first guarded call, not
  construction) so :class:`~repro.serve.AsyncSession` can construct a
  session on the event-loop thread and hand ownership to its single
  worker thread; the hand-off is explicit via :meth:`ThreadAffinity.rebind`.
* :func:`check_probabilities` — kernel entry points assert their
  probability arrays are finite and inside ``[0, 1]`` before any coin
  is flipped.
* :func:`freeze` — marks an array read-only so in-place mutation of a
  shared world batch fails fast instead of corrupting every query that
  shares it.  (The session's cache tiers freeze unconditionally; this
  helper exists so callers need no numpy import of their own.)
"""

from __future__ import annotations

import os
import threading
from typing import Any, Optional

_TRUTHY = {"1", "true", "yes", "on"}

#: Programmatic override: ``None`` defers to the environment.
_override: Optional[bool] = None


class SanitizerError(RuntimeError):
    """A contract the runtime sanitizer guards was violated."""


def enabled() -> bool:
    """Whether sanitizer checks are active for this process."""
    if _override is not None:
        return _override
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


def enable() -> None:
    """Turn the sanitizer on, regardless of ``REPRO_SANITIZE``."""
    global _override
    _override = True


def disable() -> None:
    """Turn the sanitizer off, regardless of ``REPRO_SANITIZE``."""
    global _override
    _override = False


def reset() -> None:
    """Drop the programmatic override; the environment decides again."""
    global _override
    _override = None


class ThreadAffinity:
    """Lazily bound owning-thread guard for single-threaded objects.

    The owner is whichever thread first calls :meth:`check` while the
    sanitizer is enabled; later calls from any other thread raise.
    :meth:`rebind` forgets the owner — the sanctioned ownership
    hand-off when a session moves onto a serving worker thread.
    """

    __slots__ = ("label", "_owner")

    def __init__(self, label: str) -> None:
        self.label = label
        self._owner: Optional[int] = None

    def rebind(self) -> None:
        """Forget the owner; the next guarded call binds a new one."""
        self._owner = None

    def check(self, operation: str) -> None:
        """Bind to the calling thread or raise on a cross-thread call."""
        if not enabled():
            return
        current = threading.get_ident()
        if self._owner is None:
            self._owner = current
        elif self._owner != current:
            raise SanitizerError(
                f"{operation}: {self.label} is owned by thread "
                f"{self._owner} but was called from thread {current}; "
                f"sessions and stores are single-threaded — route "
                f"concurrent callers through repro.serve.AsyncSession"
            )


def freeze(array: Any) -> Any:
    """Mark a numpy array read-only (no-op for anything else).

    Read-only memmaps are already frozen; re-freezing is harmless.
    Returns the array for call-site chaining.
    """
    flags = getattr(array, "flags", None)
    if flags is not None:
        try:
            flags.writeable = False
        except (AttributeError, ValueError):  # e.g. an exotic view
            pass
    return array


def check_probabilities(probs: Any, label: str = "probs") -> None:
    """Raise unless every probability is finite and inside ``[0, 1]``.

    Callers gate on :func:`enabled` so the scan never costs anything in
    normal operation.
    """
    import numpy as np  # deferred: this module must import without numpy

    values = np.asarray(probs, dtype=np.float64)
    if values.size == 0:
        return
    if not bool(np.all(np.isfinite(values))):
        raise SanitizerError(
            f"{label}: non-finite probability (NaN/inf) reached the "
            f"sampling kernel"
        )
    low = float(values.min())
    high = float(values.max())
    if low < 0.0 or high > 1.0:
        raise SanitizerError(
            f"{label}: probability outside [0, 1] reached the sampling "
            f"kernel (min={low!r}, max={high!r})"
        )
