"""The ``repro-check`` rule set: one AST rule per determinism contract.

Every layer of this repo — world-batch caching, the selection gain
kernel, warm restarts from the persistent index — is correct only
because a handful of invariants hold.  Each rule here turns one of them
into a machine-checked contract with file/line diagnostics:

REP001
    No unseeded or module-level RNG inside ``src/repro``.  Sampling is
    bit-for-bit deterministic in ``(graph content, estimator, Z, seed)``
    only if every coin flip flows from an explicit seed.
REP002
    Every ``UncertainGraph`` method that writes edge/node state must
    bump ``version`` — the in-process counter every cached plan and
    world batch is invalidated on.
REP003
    Disk-tier code (``repro.index``) never touches ``.version``: two
    distinct graph objects can collide on the counter, so persistent
    state is keyed on ``content_hash()`` only.
REP004
    ``WorldBatch`` arrays (``alive``/``valid``/``words``) are immutable
    snapshots shared across queries, cache tiers and the store's mmap
    files; only ``engine/kernel.py`` may construct or fill them.
REP005
    No wall-clock ``time.time()`` in timed paths — timings use
    ``time.perf_counter()``.  Genuine timestamps carry an explicit
    ``# repro-check: disable=REP005``.
REP006
    Fault seams are statically enumerable and zero-cost when disarmed:
    every ``fault_point`` call outside ``repro/faults/`` passes a
    string-literal dotted seam name and at most a bare class reference
    for ``error=``, and injected failures are raised only through the
    armed-gated registry, never by instantiating ``FaultError``
    directly.

Rules are pure functions over ``(ast.Module, FileContext)`` so the
fixture suite (``tests/test_repro_check.py``) can drive each one against
minimal violating and conforming sources.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

AnyFunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation at a file/line/column."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CODE message`` (1-based column)."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class FileContext:
    """What a rule may know about the file being checked.

    ``display_path`` is what diagnostics print; ``package_path`` is the
    path *inside* the ``repro`` package (``("index", "store.py")``) used
    for applicability decisions, or ``None`` for files outside it.
    """

    display_path: str
    package_path: Optional[Tuple[str, ...]]
    aliases: Dict[str, str]


RuleCheck = Callable[[ast.Module, FileContext], List[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """A named invariant check."""

    code: str
    summary: str
    check: RuleCheck


def module_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted module/object path they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
    random`` maps ``random -> numpy.random`` (shadowing the stdlib
    module, which is exactly why resolution must go through imports and
    never through the bare name).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname is not None:
                    aliases[name.asname] = name.name
                else:
                    head = name.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never carry stdlib/numpy RNG
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def dotted_path(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression like ``np.random.default_rng`` to its
    imported dotted path, or ``None`` when the base is not an import."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _peel_subscripts(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


# ----------------------------------------------------------------------
# REP001 — no unseeded / module-level RNG
# ----------------------------------------------------------------------

#: ``numpy.random`` members that are explicit generator machinery, not
#: the module-level legacy RNG.  Constructors are fine *with* a seed;
#: argless ``default_rng()``/``RandomState()`` still violate.
_NP_GENERATOR_API = {
    "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
}
#: Calls that are seeded constructors when given arguments and global /
#: OS-entropy RNG when argless.
_SEEDED_WHEN_ARGED = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
    "random.SystemRandom",
}


def check_rep001(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag module-level and unseeded RNG calls."""
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        full = dotted_path(node.func, ctx.aliases)
        if full is None:
            continue
        if full in _SEEDED_WHEN_ARGED:
            if not node.args and not node.keywords:
                out.append(Diagnostic(
                    ctx.display_path, node.lineno, node.col_offset, "REP001",
                    f"unseeded RNG: {full}() draws OS entropy; pass an "
                    f"explicit seed so sampling stays deterministic in "
                    f"(graph, estimator, Z, seed)",
                ))
            continue
        if full.startswith("numpy.random."):
            member = full[len("numpy.random."):]
            if member not in _NP_GENERATOR_API:
                out.append(Diagnostic(
                    ctx.display_path, node.lineno, node.col_offset, "REP001",
                    f"module-level RNG: {full}() uses numpy's global "
                    f"state; use np.random.default_rng(seed) instead",
                ))
        elif full.startswith("random."):
            out.append(Diagnostic(
                ctx.display_path, node.lineno, node.col_offset, "REP001",
                f"module-level RNG: {full}() uses the stdlib global "
                f"state; use random.Random(seed) instead",
            ))
    return out


# ----------------------------------------------------------------------
# REP002 — UncertainGraph mutators must bump version
# ----------------------------------------------------------------------

#: Attributes holding the graph's edge/node state.  Writing any of them
#: without bumping ``_version`` leaves cached plans and world batches
#: silently stale.
_GRAPH_STATE_ATTRS = {"_succ", "_pred", "_num_edges", "_nodes"}
#: Calling one of these on ``self`` delegates the write (and its bump).
_GRAPH_BUMPING_METHODS = {
    "add_node", "add_edge", "remove_edge", "set_probability",
}


def _self_attr(node: ast.expr, self_name: str) -> Optional[str]:
    """``self.<attr>`` (possibly through subscripts) -> attr name."""
    node = _peel_subscripts(node)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == self_name
    ):
        return node.attr
    return None


def _method_writes_state(func: AnyFunctionDef, self_name: str) -> bool:
    for node in ast.walk(func):
        targets: Sequence[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            continue
        for target in targets:
            if _self_attr(target, self_name) in _GRAPH_STATE_ATTRS:
                return True
    return False


def _method_bumps_version(func: AnyFunctionDef, self_name: str) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if _self_attr(target, self_name) == "_version":
                    return True
        elif isinstance(node, ast.Call):
            if _self_attr(node.func, self_name) in _GRAPH_BUMPING_METHODS:
                return True
    return False


def check_rep002(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag ``UncertainGraph`` methods that write state without a bump."""
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "UncertainGraph"):
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = item.args.posonlyargs + item.args.args
            self_name = args[0].arg if args else "self"
            if _method_writes_state(item, self_name) and not _method_bumps_version(
                item, self_name
            ):
                out.append(Diagnostic(
                    ctx.display_path, item.lineno, item.col_offset, "REP002",
                    f"UncertainGraph.{item.name} writes edge/node state "
                    f"but never bumps self._version; cached plans and "
                    f"world batches would go silently stale",
                ))
    return out


# ----------------------------------------------------------------------
# REP003 — disk tier keys on content_hash(), never version
# ----------------------------------------------------------------------

def check_rep003(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag ``.version`` access anywhere under ``repro/index/``."""
    if ctx.package_path is None or ctx.package_path[:1] != ("index",):
        return []
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == "version":
            out.append(Diagnostic(
                ctx.display_path, node.lineno, node.col_offset, "REP003",
                "disk-tier code must never read graph.version (two "
                "distinct graphs can collide on the counter); key "
                "persistent state on UncertainGraph.content_hash()",
            ))
    return out


# ----------------------------------------------------------------------
# REP004 — WorldBatch arrays are immutable outside engine/kernel.py
# ----------------------------------------------------------------------

_BATCH_ARRAY_ATTRS = {"alive", "valid", "words"}
_KERNEL_FILE = ("engine", "kernel.py")


def _batch_attr(node: ast.expr) -> Optional[str]:
    node = _peel_subscripts(node)
    if isinstance(node, ast.Attribute) and node.attr in _BATCH_ARRAY_ATTRS:
        return node.attr
    return None


def check_rep004(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag in-place writes to world-batch arrays outside the kernel."""
    if ctx.package_path == _KERNEL_FILE:
        return []
    out: List[Diagnostic] = []

    def flag(node: ast.AST, attr: str, how: str) -> None:
        out.append(Diagnostic(
            ctx.display_path, node.lineno, node.col_offset, "REP004",
            f"in-place mutation of WorldBatch.{attr} ({how}); batch "
            f"arrays are immutable snapshots shared across queries and "
            f"cache tiers — only engine/kernel.py builds them",
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    attr = _batch_attr(target)
                    if attr is not None:
                        flag(node, attr, "assignment")
        elif isinstance(node, ast.AugAssign):
            attr = _batch_attr(node.target)
            if attr is not None:
                flag(node, attr, "augmented assignment")
        elif isinstance(node, ast.Call):
            full = dotted_path(node.func, ctx.aliases)
            if full == "numpy.copyto" and node.args:
                attr = _batch_attr(node.args[0])
                if attr is not None:
                    flag(node, attr, "np.copyto")
    return out


# ----------------------------------------------------------------------
# REP005 — no wall clock in timed paths
# ----------------------------------------------------------------------

def check_rep005(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag ``time.time()`` calls (timings must use ``perf_counter``)."""
    out: List[Diagnostic] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if dotted_path(node.func, ctx.aliases) == "time.time":
            out.append(Diagnostic(
                ctx.display_path, node.lineno, node.col_offset, "REP005",
                "time.time() is wall clock (NTP steps break timings); "
                "use time.perf_counter(), or suppress with "
                "'# repro-check: disable=REP005' for a genuine timestamp",
            ))
    return out


# ----------------------------------------------------------------------
# REP006 — fault seams are static, literal, and allocation-free
# ----------------------------------------------------------------------

#: Seam names at call sites are exact dotted identifiers — no wildcards,
#: so ``grep fault_point`` enumerates the complete seam table.
_SEAM_LITERAL = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
_FAULTS_PACKAGE = ("faults",)


def _is_fault_point_call(func: ast.expr, aliases: Dict[str, str]) -> bool:
    """Match ``fault_point(...)`` however the registry was imported.

    Relative imports (``from ..faults import fault_point``) never make
    it into the alias map, so the bare call name is matched directly.
    """
    full = dotted_path(func, aliases)
    if full is not None and (full == "fault_point" or full.endswith(".fault_point")):
        return True
    if isinstance(func, ast.Name) and func.id == "fault_point":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "fault_point"


def check_rep006(tree: ast.Module, ctx: FileContext) -> List[Diagnostic]:
    """Flag dynamic seam names, allocating call sites, and direct raises."""
    if ctx.package_path is not None and ctx.package_path[:1] == _FAULTS_PACKAGE:
        return []
    out: List[Diagnostic] = []

    def flag(node: ast.AST, message: str) -> None:
        out.append(Diagnostic(
            ctx.display_path, node.lineno, node.col_offset, "REP006", message,
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            func = node.exc.func
            raised = (
                func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None
            )
            if raised == "FaultError":
                flag(node, (
                    "injected failures must fire through the armed-gated "
                    "registry (fault_point(...)), never by raising "
                    "FaultError directly — a direct raise fires even when "
                    "faults are disarmed"
                ))
        if not isinstance(node, ast.Call):
            continue
        if not _is_fault_point_call(node.func, ctx.aliases):
            continue
        head = node.args[0] if node.args else None
        if (
            not isinstance(head, ast.Constant)
            or not isinstance(head.value, str)
        ):
            flag(node, (
                "fault_point seam name must be a string literal so the "
                "seam table is statically enumerable and the disarmed "
                "call allocates nothing"
            ))
        elif not _SEAM_LITERAL.match(head.value):
            flag(node, (
                f"seam name {head.value!r} is not a dotted lowercase "
                f"identifier (layer.operation); wildcards belong in fault "
                f"specs, not at call sites"
            ))
        if len(node.args) > 2 or any(
            isinstance(arg, ast.Starred) for arg in node.args
        ):
            flag(node, "fault_point takes only (name, error)")
        extra_values = [arg for arg in node.args[1:2]]
        extra_values += [
            kw.value for kw in node.keywords if kw.arg in (None, "error")
        ]
        for kw in node.keywords:
            if kw.arg not in (None, "error"):
                flag(node, f"fault_point got unexpected keyword {kw.arg!r}")
        for value in extra_values:
            if not isinstance(value, (ast.Name, ast.Attribute)):
                flag(node, (
                    "fault_point error= must be a bare class reference "
                    "(Name or Attribute), not an expression — disarmed "
                    "call sites must not allocate or evaluate anything"
                ))
    return out


#: The active rule set, in code order.
ALL_RULES: Tuple[Rule, ...] = (
    Rule("REP001", "no unseeded or module-level RNG", check_rep001),
    Rule("REP002", "UncertainGraph mutators must bump version", check_rep002),
    Rule("REP003", "disk tier keys on content_hash(), never version",
         check_rep003),
    Rule("REP004", "WorldBatch arrays are immutable outside engine/kernel.py",
         check_rep004),
    Rule("REP005", "no wall-clock time.time() in timed paths", check_rep005),
    Rule("REP006", "fault seams are literal, allocation-free, and "
         "armed-gated", check_rep006),
)
