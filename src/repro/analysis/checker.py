"""Driver for the ``repro-check`` lint pass.

``check_source`` runs every rule in :mod:`repro.analysis.rules` over one
parsed file and filters suppressed findings; ``check_paths`` walks
files/directories; ``main`` is the CLI behind both ``repro check`` and
``python -m repro.analysis``.

Suppressions are trailing comments on the flagged line::

    now = time.time()  # repro-check: disable=REP005

``disable=all`` silences every rule on that line.  Suppressions are
deliberately line-scoped — a file- or block-scoped escape hatch would
make it too easy to turn a rule off and forget.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import ast

from .rules import ALL_RULES, Diagnostic, FileContext, Rule, module_aliases

_SUPPRESS_RE = re.compile(
    r"#\s*repro-check\s*:\s*disable=([A-Za-z0-9_,\s]+)"
)


def rule_by_code(code: str) -> Rule:
    """Look up a rule by its ``REPxxx`` code."""
    for rule in ALL_RULES:
        if rule.code == code:
            return rule
    raise KeyError(f"unknown rule {code!r}")


def package_relative(path: Path) -> Optional[Tuple[str, ...]]:
    """Path segments below the innermost ``repro`` directory, or ``None``.

    Rules use this to scope themselves (``REP003`` to ``index/``,
    ``REP004``'s exemption to ``engine/kernel.py``) without caring where
    the checkout lives.
    """
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return tuple(parts[i + 1:])
    return None


def suppressed_lines(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule codes disabled on them."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if codes:
            out[lineno] = codes
    return out


def check_source(
    source: str,
    path: str,
    package_path: Optional[Tuple[str, ...]] = None,
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Run the (selected) rules over one source string.

    ``package_path`` overrides the path-derived package location —
    fixture tests use it to exercise path-scoped rules on temp files.
    A syntactically invalid file yields a single ``REP000`` diagnostic
    instead of a traceback, so one broken file cannot hide findings in
    the rest of a tree.
    """
    if package_path is None:
        package_path = package_relative(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Diagnostic(
            path, error.lineno or 1, (error.offset or 1) - 1, "REP000",
            f"file does not parse: {error.msg}",
        )]
    ctx = FileContext(
        display_path=path,
        package_path=package_path,
        aliases=module_aliases(tree),
    )
    wanted = None if select is None else {code.upper() for code in select}
    diagnostics: List[Diagnostic] = []
    for rule in ALL_RULES:
        if wanted is not None and rule.code not in wanted:
            continue
        diagnostics.extend(rule.check(tree, ctx))
    suppressions = suppressed_lines(source)
    kept = [
        diag for diag in diagnostics
        if not (
            (codes := suppressions.get(diag.line)) is not None
            and (diag.code in codes or "ALL" in codes)
        )
    ]
    kept.sort(key=lambda d: (d.line, d.col, d.code))
    return kept


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        else:
            yield path


def check_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> List[Diagnostic]:
    """Check every python file under ``paths``; missing paths raise."""
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        diagnostics.extend(check_source(source, str(path), select=select))
    return diagnostics


def _default_paths() -> List[str]:
    """``src/repro`` when run from a checkout root, else the cwd."""
    candidate = Path("src") / "repro"
    return [str(candidate)] if candidate.is_dir() else ["."]


def main(argv: Optional[Iterable[str]] = None) -> int:
    """CLI: print diagnostics, exit 1 when any survive suppression."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Lint the repo's determinism contracts (REP001-REP006).",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODE",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    if args.select:
        known = {rule.code for rule in ALL_RULES}
        unknown = [c for c in args.select if c.upper() not in known]
        if unknown:
            print(f"unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    diagnostics = check_paths(paths, select=args.select)
    for diag in diagnostics:
        print(diag.format())
    if diagnostics:
        count = len(diagnostics)
        print(f"repro-check: {count} finding{'s' if count != 1 else ''}")
        return 1
    return 0
