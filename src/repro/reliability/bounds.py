"""Analytic lower and upper bounds on s-t reliability.

Sampling gives point estimates; bounds give certainty.  Both bounds here
are classical network-reliability results, computed with this library's
own substrates:

* **Lower bound** — any set of *edge-disjoint* s-t paths fails
  independently, so ``R >= 1 - prod_i (1 - Pr(path_i))``.  Paths are
  taken greedily from the top-l most reliable paths, keeping each only
  if edge-disjoint from those already kept.  (With a single path this
  degenerates to the most-reliable-path bound the paper uses to justify
  Problem 2.)
* **Upper bound** — for any s-t edge cut ``C``, t is unreachable when
  all of ``C`` fails: ``R <= 1 - prod_{e in C} (1 - p_e)``.  The
  tightest single-cut bound is a min-cut with capacities
  ``-log(1 - p_e)``.

Together they bracket the truth and certify sampling results in tests
and diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Set, Tuple

from ..graph import UncertainGraph
from ..paths import top_l_most_reliable_paths
from ..paths.maxflow import min_cut

Edge = Tuple[int, int]


@dataclass
class ReliabilityBounds:
    """A certified bracket around the true s-t reliability."""

    lower: float
    upper: float
    disjoint_paths: List[List[int]]
    cut_edges: List[Edge]

    @property
    def width(self) -> float:
        """Size of the bracket (0 = exact)."""
        return self.upper - self.lower

    def contains(self, value: float, slack: float = 1e-9) -> bool:
        """True when ``value`` lies inside the bracket (with slack)."""
        return self.lower - slack <= value <= self.upper + slack


def reliability_lower_bound(
    graph: UncertainGraph,
    source: int,
    target: int,
    num_paths: int = 10,
) -> Tuple[float, List[List[int]]]:
    """Edge-disjoint-path lower bound.

    Greedy: take the top-``num_paths`` most reliable paths, keep each
    path only if it shares no edge with previously kept ones, and
    combine the kept paths' probabilities as independent events.
    """
    if source == target:
        return 1.0, [[source]]
    candidates = top_l_most_reliable_paths(graph, source, target, num_paths)
    used: Set[Edge] = set()
    kept: List[Tuple[List[int], float]] = []
    for path, prob in candidates:
        path_edges = {
            (u, v) if graph.directed or u <= v else (v, u)
            for u, v in zip(path, path[1:], strict=False)
        }
        if path_edges & used:
            continue
        used |= path_edges
        kept.append((path, prob))
    if not kept:
        return 0.0, []
    miss_all = 1.0
    for _, prob in kept:
        miss_all *= 1.0 - prob
    return 1.0 - miss_all, [path for path, _ in kept]


def reliability_upper_bound(
    graph: UncertainGraph,
    source: int,
    target: int,
) -> Tuple[float, List[Edge]]:
    """Tightest single-cut upper bound via min cut.

    Edges with ``p = 1`` have infinite capacity (they never fail); if
    every cut contains such an edge the bound is 1.  A disconnected pair
    yields bound 0 (the empty cut).
    """
    if source == target:
        return 1.0, []
    if source not in graph or target not in graph:
        return 0.0, []
    capacity_edges = []
    for u, v, p in graph.edges():
        if p <= 0.0:
            continue
        capacity = math.inf if p >= 1.0 else -math.log(1.0 - p)
        capacity_edges.append((u, v, capacity))
    value, cut_edges = min_cut(
        capacity_edges, source, target, directed=graph.directed
    )
    if value == 0.0:
        return 0.0, []
    if math.isinf(value):
        return 1.0, []
    # capacity sum = -sum log(1-p) => prod (1-p) = exp(-value).
    return 1.0 - math.exp(-value), cut_edges


def reliability_bounds(
    graph: UncertainGraph,
    source: int,
    target: int,
    num_paths: int = 10,
) -> ReliabilityBounds:
    """Bracket ``R(source, target)`` between certified bounds."""
    lower, paths = reliability_lower_bound(graph, source, target, num_paths)
    upper, cut = reliability_upper_bound(graph, source, target)
    # Floating arithmetic can invert a degenerate bracket by epsilon.
    upper = max(upper, lower)
    return ReliabilityBounds(
        lower=lower, upper=upper, disjoint_paths=paths, cut_edges=cut
    )
