"""The estimator interface shared by every reliability algorithm.

The paper stresses (§5.3) that the edge-selection machinery is orthogonal
to the sampling method: Monte Carlo, recursive stratified sampling, lazy
propagation and exact computation are interchangeable.  Every estimator
implements this abstract interface; selection algorithms receive an
estimator instance and never sample on their own.

All evaluation methods accept an ``extra_edges`` overlay — an iterable of
``(u, v, p)`` triples treated as if they were added to the graph — so
that candidate-edge evaluation never needs to copy the graph.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..graph import UncertainGraph

ProbEdge = Tuple[int, int, float]
Overlay = Optional[Iterable[ProbEdge]]


class SelectionBackend(tuple):
    """Descriptor of an estimator's shared-world selection backend.

    Behaves exactly like the legacy ``(num_samples, seed)`` 2-tuple —
    unpacking and equality against plain tuples keep working — plus an
    optional ``make_batch`` factory
    (``make_batch(graph, plan, source, target) -> WorldBatch``) for
    estimators whose base batch is conditioned per query: recursive
    stratified sampling builds a level-1 *per-stratum* batch and
    adaptive MC a *per-block* batch grown until its confidence interval
    is tight.  ``make_batch=None`` means the plain i.i.d. batch a fresh
    engine seeded ``seed`` would sample (plain MC / lazy propagation).
    """

    def __new__(cls, num_samples: int, seed: int, make_batch=None):
        self = super().__new__(cls, (int(num_samples), int(seed)))
        self.make_batch = make_batch
        return self

    @property
    def num_samples(self) -> int:
        return self[0]

    @property
    def seed(self) -> int:
        return self[1]


def build_overlay(
    graph: UncertainGraph,
    extra_edges: Overlay,
) -> Dict[int, List[Tuple[int, float]]]:
    """Adjacency overlay for extra edges (both directions if undirected)."""
    overlay: Dict[int, List[Tuple[int, float]]] = {}
    if not extra_edges:
        return overlay
    for u, v, p in extra_edges:
        overlay.setdefault(u, []).append((v, p))
        if not graph.directed:
            overlay.setdefault(v, []).append((u, p))
    return overlay


def resolve_selection_backend(estimator) -> Optional[Tuple[int, int]]:
    """Duck-typed :meth:`ReliabilityEstimator.selection_backend` lookup.

    The single place routing layers (baselines, sessions) consult, so
    third-party estimators only need the method — not the base class —
    to opt into batched selection.  The result is ``None`` or a
    ``(num_samples, seed)`` tuple, possibly a :class:`SelectionBackend`
    carrying a ``make_batch`` factory (read with
    ``getattr(backend, "make_batch", None)`` so plain tuples keep
    working).
    """
    backend = getattr(estimator, "selection_backend", None)
    return backend() if callable(backend) else None


def reverse_overlay(
    graph: UncertainGraph,
    extra_edges: Overlay,
) -> Optional[List[ProbEdge]]:
    """Flip an overlay for reverse-graph traversal (directed graphs)."""
    if not extra_edges:
        return None
    return [(v, u, p) for u, v, p in extra_edges]


class ReliabilityEstimator(ABC):
    """Estimates s-t reliability and reachability probability vectors."""

    @abstractmethod
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        """Estimate ``R(source, target, graph + extra_edges)``."""

    @abstractmethod
    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        """Probability that each node is reachable *from* ``source``.

        Returns a dict containing every node with non-zero estimated
        reachability (``source`` maps to 1.0).
        """

    def reachability_to(
        self,
        graph: UncertainGraph,
        target: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        """Probability that each node reaches ``target``.

        Default implementation runs :meth:`reachability_from` on the
        reverse graph; undirected graphs reuse the forward direction.
        """
        if not graph.directed:
            return self.reachability_from(graph, target, extra_edges)
        reversed_graph = graph.reverse()
        flipped = reverse_overlay(graph, extra_edges)
        return self.reachability_from(reversed_graph, target, flipped)

    def pair_reliabilities(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Overlay = None,
    ) -> Dict[Tuple[int, int], float]:
        """Reliability of several s-t pairs.

        The default implementation evaluates pairs one by one; samplers
        override this to share possible worlds across pairs.
        """
        extra = list(extra_edges) if extra_edges else None
        return {
            (s, t): self.reliability(graph, s, t, extra)
            for s, t in pairs
        }

    def reliability_many(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Overlay = None,
    ) -> List[float]:
        """Reliability of many s-t pairs, aligned with ``pairs`` order.

        The batched entry point selection and multi-source loops should
        prefer: vectorized estimators answer every pair against one
        compiled plan and one shared world batch, amortizing the setup
        cost over thousands of queries.  The default implementation
        delegates to :meth:`pair_reliabilities`.
        """
        pairs = list(pairs)
        values = self.pair_reliabilities(graph, pairs, extra_edges)
        return [values[(s, t)] for s, t in pairs]

    def selection_backend(self) -> Optional[Tuple[int, int]]:
        """``(num_samples, seed)`` when selection loops may batch this
        estimator's per-candidate estimates through the shared-world
        gain kernel (:class:`repro.engine.selection.SelectionGainKernel`).

        Estimators whose estimate is a plain hit-rate over ``Z`` i.i.d.
        engine-sampled worlds (plain Monte Carlo, lazy propagation)
        return the bare tuple; estimators whose sampling is conditioned
        per query return a :class:`SelectionBackend` whose
        ``make_batch`` factory builds the query-specific base batch the
        kernel scores candidates against — per-stratum for recursive
        stratified sampling, per-block for adaptive MC.  The gain
        identity is exact per world regardless of how the worlds were
        sampled, so every backend gets the same ``O(Z/64)``-words-per-
        candidate rounds.  ``None`` (the default, and all scalar paths)
        sends selection loops to per-candidate estimation.
        """
        return None

    def multi_source_reachability(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        """Probability each node is reachable from *any* source.

        Used by the influence-spread application (Eq. 13).  The default
        implementation is exact only for a single source; samplers
        override it with a shared-world version.
        """
        if len(sources) == 1:
            return self.reachability_from(graph, sources[0], extra_edges)
        raise NotImplementedError(
            f"{type(self).__name__} does not support multi-source queries"
        )
