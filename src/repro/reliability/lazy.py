"""Lazy-propagation Monte Carlo (geometric run-length coin flipping).

Re-implements the sampling trick of Li et al. (SIGMOD 2017): instead of
flipping a fresh coin for an edge in every sample, draw from a geometric
distribution how many consecutive samples the edge stays *absent* and
skip ahead.  Marginally each sample still sees an independent
Bernoulli(p) state per edge, but the per-sample cost of repeatedly-probed
low-probability edges collapses.

This estimator matters for workloads that evaluate the same graph for
many samples — the exact setting of the top-k edge-selection loops.

The geometric-skipping trick is an *ordering* optimization of the same
statistical object plain MC estimates: ``Z`` i.i.d. possible worlds.  On
the vectorized engine (:mod:`repro.engine`) all coins are flipped in one
batched draw, so skipping buys nothing there — ``vectorized=True``
delegates straight to the engine and keeps the scalar path as the
numpy-less fallback.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Dict, Optional, Tuple

from ..graph import UncertainGraph
from .estimator import (
    Overlay,
    ReliabilityEstimator,
    SelectionBackend,
    build_overlay,
)

try:
    from ..engine import VectorizedSamplingEngine
except ImportError:  # pragma: no cover - numpy-less fallback
    VectorizedSamplingEngine = None  # type: ignore[assignment,misc]

EdgeKey = Tuple[int, int]


class LazyPropagationEstimator(ReliabilityEstimator):
    """Monte Carlo with geometric skipping over the sample index axis.

    For each edge we maintain the next sample index at which it will be
    present.  When sample ``i`` probes an edge whose scheduled index has
    fallen behind, the schedule advances by independent geometric draws —
    preserving the i.i.d. Bernoulli marginals across samples.

    ``vectorized=True`` runs on the batch engine (the lazy schedule is
    subsumed by batched coin generation), ``False`` forces the scalar
    geometric-skipping path, ``None`` auto-selects the engine when numpy
    is importable.  Both paths share one statistical contract but consume
    different PRNG streams (see :class:`MonteCarloEstimator`).
    """

    name = "lazy"

    def __init__(
        self,
        num_samples: int = 1000,
        seed: int = 0,
        vectorized: Optional[bool] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if vectorized is None:
            vectorized = VectorizedSamplingEngine is not None
        elif vectorized and VectorizedSamplingEngine is None:
            raise RuntimeError("vectorized=True requires numpy")
        self.num_samples = num_samples
        self.vectorized = vectorized
        self._rng = random.Random(seed)
        self._engine = (
            VectorizedSamplingEngine(seed) if vectorized else None
        )

    def selection_backend(self) -> Optional[Tuple[int, int]]:
        """On the engine, lazy propagation *is* plain batched MC (the
        geometric schedule is subsumed by batched coin generation), so
        selection loops may batch it through the gain kernel."""
        if self._engine is None:
            return None
        return SelectionBackend(self.num_samples, self._engine.seed)

    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        if source == target:
            return 1.0
        if source not in graph or target not in graph:
            return 0.0
        if self._engine is not None:
            return self._engine.reliability(
                graph, source, target, self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        canonical = not graph.directed
        schedule: Dict[EdgeKey, int] = {}
        hits = 0
        for i in range(self.num_samples):
            if self._bfs(graph, overlay, source, target, i, schedule, canonical):
                hits += 1
        return hits / self.num_samples

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        if source not in graph:
            return {}
        if self._engine is not None:
            return self._engine.reachability_from(
                graph, source, self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        canonical = not graph.directed
        schedule: Dict[EdgeKey, int] = {}
        counts: Dict[int, int] = {}
        for i in range(self.num_samples):
            reach = self._bfs(
                graph, overlay, source, None, i, schedule, canonical
            )
            for node in reach:
                counts[node] = counts.get(node, 0) + 1
        result = {node: c / self.num_samples for node, c in counts.items()}
        result[source] = 1.0
        return result

    # ------------------------------------------------------------------
    def _edge_alive(
        self,
        key: EdgeKey,
        p: float,
        sample_index: int,
        schedule: Dict[EdgeKey, int],
    ) -> bool:
        """Is the edge present in this sample?  Advances the schedule."""
        if p >= 1.0:
            return True
        if p <= 0.0:
            return False
        nxt = schedule.get(key)
        if nxt is None:
            # First touch: the edge becomes present after Geom(p) - 1
            # failures starting at this sample.
            nxt = sample_index + self._geometric(p) - 1
        while nxt < sample_index:
            nxt += self._geometric(p)
        alive = nxt == sample_index
        if alive:
            schedule[key] = sample_index + self._geometric(p)
        else:
            schedule[key] = nxt
        return alive

    def _geometric(self, p: float) -> int:
        """Geometric(p) on {1, 2, ...} via inverse-CDF sampling."""
        u = self._rng.random()
        # Guard against log(0); random() is in [0, 1).
        return max(1, int(math.ceil(math.log(1.0 - u) / math.log(1.0 - p))))

    def _bfs(
        self,
        graph: UncertainGraph,
        overlay,
        source: int,
        target: Optional[int],
        sample_index: int,
        schedule: Dict[EdgeKey, int],
        canonical: bool,
    ):
        """BFS for one sample; returns bool (target mode) or reach set."""
        visited = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            neighbors = list(graph.successors(u).items())
            if overlay and u in overlay:
                neighbors.extend(overlay[u])
            for v, p in neighbors:
                if v in visited:
                    continue
                if canonical and v < u:
                    key = (v, u)
                else:
                    key = (u, v)
                if self._edge_alive(key, p, sample_index, schedule):
                    if target is not None and v == target:
                        return True
                    visited.add(v)
                    frontier.append(v)
        if target is not None:
            return False
        return visited
