"""Adaptive-precision Monte Carlo with confidence intervals.

Fixed sample budgets (the paper's Z) waste work on easy queries and
under-sample hard ones.  This estimator keeps sampling in blocks until a
Wilson-score confidence interval around the hit ratio is narrower than a
target half-width, then reports the estimate together with the interval
— the natural "production" interface on top of the paper's machinery.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..graph import UncertainGraph
from .estimator import (
    Overlay,
    ReliabilityEstimator,
    SelectionBackend,
    build_overlay,
)
from .monte_carlo import MonteCarloEstimator

try:
    import numpy as np

    from ..engine import (
        VectorizedSamplingEngine,
        batch_reach,
        build_query_plan,
        concat_batches,
        popcount,
        sample_worlds,
    )
except ImportError:  # pragma: no cover - numpy-less fallback
    np = None  # type: ignore[assignment]
    VectorizedSamplingEngine = None  # type: ignore[assignment,misc]
    batch_reach = build_query_plan = popcount = None  # type: ignore[assignment]
    concat_batches = sample_worlds = None  # type: ignore[assignment]

#: z-scores for common confidence levels.
_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def wilson_interval(
    hits: int,
    samples: int,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved near 0 and 1, exactly where reliability queries live.
    """
    if samples <= 0:
        return 0.0, 1.0
    try:
        z = _Z_SCORES[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_SCORES)}"
        ) from None
    phat = hits / samples
    denom = 1.0 + z * z / samples
    center = (phat + z * z / (2 * samples)) / denom
    margin = (
        z
        * math.sqrt(phat * (1 - phat) / samples + z * z / (4 * samples**2))
        / denom
    )
    return max(0.0, center - margin), min(1.0, center + margin)


@dataclass
class AdaptiveEstimate:
    """A reliability estimate with its confidence interval."""

    value: float
    lower: float
    upper: float
    samples_used: int

    @property
    def half_width(self) -> float:
        """Half the confidence interval's width."""
        return (self.upper - self.lower) / 2.0


class AdaptiveMonteCarlo(ReliabilityEstimator):
    """Monte Carlo that stops when the CI is tight enough.

    Parameters
    ----------
    target_half_width:
        Stop when the Wilson interval's half-width drops below this.
    confidence:
        Interval confidence level (0.90 / 0.95 / 0.99).
    block_size:
        Samples drawn between convergence checks.
    max_samples:
        Hard budget cap (the estimator always stops here).
    vectorized:
        ``True`` runs each sample block on the batch engine (block
        sampling maps directly onto ``sample_worlds`` with incremental
        Z), ``False`` forces the scalar per-sample BFS, ``None``
        auto-selects the engine when numpy is importable.  Because Z is
        chosen at query time, the engine path samples fresh per-block
        worlds and cannot reuse a pre-sampled shared batch (see
        :mod:`repro.reliability.registry`).
    """

    name = "adaptive-mc"

    def __init__(
        self,
        target_half_width: float = 0.01,
        confidence: float = 0.95,
        block_size: int = 200,
        max_samples: int = 50_000,
        seed: int = 0,
        vectorized: Optional[bool] = None,
    ) -> None:
        if not 0.0 < target_half_width < 0.5:
            raise ValueError("target_half_width must be in (0, 0.5)")
        if block_size < 1 or max_samples < block_size:
            raise ValueError("need max_samples >= block_size >= 1")
        wilson_interval(0, 1, confidence)  # validates the level
        if vectorized is None:
            vectorized = VectorizedSamplingEngine is not None
        elif vectorized and VectorizedSamplingEngine is None:
            raise RuntimeError("vectorized=True requires numpy")
        self.target_half_width = target_half_width
        self.confidence = confidence
        self.block_size = block_size
        self.max_samples = max_samples
        self.vectorized = vectorized
        self._rng = random.Random(seed)
        self._engine = (
            VectorizedSamplingEngine(seed) if vectorized else None
        )

    # ------------------------------------------------------------------
    # batched selection backend (per-block shared worlds)
    # ------------------------------------------------------------------
    def selection_backend(self):
        """Per-block shared-world backend on the engine path.

        Selection loops score every candidate against one shared batch
        built by :meth:`selection_batch` — grown block by block, like
        the estimator's own engine path, until the Wilson interval
        around the *base* query's hit rate is tight (or the budget cap
        is hit).  So ``Z`` is still chosen adaptively per query, but
        all candidates of that query share one fixed batch, which is
        what the gain kernel needs for comparable popcount gains.
        ``None`` on the scalar path.
        """
        if self._engine is None:
            return None
        return SelectionBackend(
            self.max_samples, self._engine.seed,
            make_batch=self.selection_batch,
        )

    def selection_batch(self, graph, plan, source, target):
        """Adaptively-sized base batch for shared-world selection.

        Blocks of ``block_size`` worlds are drawn from one generator
        seeded like the estimator; after each block the base
        ``source -> target`` hit rate's Wilson interval decides whether
        to stop.  The concatenated blocks
        (:func:`~repro.engine.kernel.concat_batches`) behave exactly
        like one batch of the accumulated ``Z``.  Deterministic for a
        fixed seed; degenerate endpoints stop after one block.
        """
        rng = np.random.default_rng(self._engine.seed)
        src = plan.node_index(source)
        dst = plan.node_index(target)
        blocks = []
        hits, samples = 0, 0
        while samples < self.max_samples:
            size = min(self.block_size, self.max_samples - samples)
            block = sample_worlds(plan, size, rng)
            blocks.append(block)
            samples += size
            if src is None or dst is None or src == dst:
                break  # nothing to adapt on
            reached = batch_reach(plan, block, [src], target_index=dst)
            hits += int(popcount(reached[dst]).sum())
            lower, upper = wilson_interval(hits, samples, self.confidence)
            if (upper - lower) / 2.0 <= self.target_half_width:
                break
        return concat_batches(blocks)

    # ------------------------------------------------------------------
    def estimate(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> AdaptiveEstimate:
        """Full result: value, interval and the samples it took."""
        if source == target:
            return AdaptiveEstimate(1.0, 1.0, 1.0, 0)
        if source not in graph or target not in graph:
            return AdaptiveEstimate(0.0, 0.0, 0.0, 0)
        if self._engine is not None:
            return self._estimate_vectorized(graph, source, target, extra_edges)
        overlay = build_overlay(graph, extra_edges)
        rand = self._rng.random
        succ = graph.successors
        hits, samples = 0, 0
        while samples < self.max_samples:
            for _ in range(min(self.block_size, self.max_samples - samples)):
                if MonteCarloEstimator._sampled_bfs_hits_target(
                    succ, overlay, source, target, rand
                ):
                    hits += 1
                samples += 1
            lower, upper = wilson_interval(hits, samples, self.confidence)
            if (upper - lower) / 2.0 <= self.target_half_width:
                break
        lower, upper = wilson_interval(hits, samples, self.confidence)
        return AdaptiveEstimate(
            value=hits / samples, lower=lower, upper=upper,
            samples_used=samples,
        )

    def _estimate_vectorized(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> AdaptiveEstimate:
        """Engine path: one compiled plan, fresh world block per round."""
        plan = build_query_plan(
            graph, list(extra_edges) if extra_edges else None
        )
        src = plan.node_index(source)
        dst = plan.node_index(target)
        hits, samples = 0, 0
        while samples < self.max_samples:
            block = min(self.block_size, self.max_samples - samples)
            batch = self._engine.sample_worlds(plan, block)
            reached = batch_reach(plan, batch, [src], target_index=dst)
            hits += int(popcount(reached[dst]).sum())
            samples += block
            lower, upper = wilson_interval(hits, samples, self.confidence)
            if (upper - lower) / 2.0 <= self.target_half_width:
                break
        lower, upper = wilson_interval(hits, samples, self.confidence)
        return AdaptiveEstimate(
            value=hits / samples, lower=lower, upper=upper,
            samples_used=samples,
        )

    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        """Point estimate (the ReliabilityEstimator interface)."""
        return self.estimate(graph, source, target, extra_edges).value

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        """Vector queries fall back to fixed-budget MC at the cap/10."""
        budget = max(self.block_size, self.max_samples // 10)
        fallback = MonteCarloEstimator(
            budget, seed=self._rng.randrange(2**31),
            vectorized=self.vectorized,
        )
        return fallback.reachability_from(graph, source, extra_edges)
