"""BFS-sharing index: pre-sampled worlds shared across queries.

The paper's related work (§7, citing the in-depth comparison of s-t
reliability algorithms) includes *BFSSharing* — an offline index that
samples ``Z`` possible worlds once and answers every subsequent query by
traversing the stored worlds.  Amortized over a query workload (e.g. the
multi-source-target loops, which re-evaluate hundreds of pairs on the
same graph) this is far cheaper than re-sampling per query.

With the vectorized engine (default) the ``Z`` worlds are stored as one
bit-packed ``(num_edges, Z/64)`` matrix and every query is a batch BFS
over all worlds at once; without numpy the index falls back to one
adjacency dict per world.

Overlay (``extra_edges``) support: stored worlds cover only the indexed
graph; overlay edges are Bernoulli-sampled per (query, world) with a
deterministic per-index seed, so marginals match plain Monte Carlo and
repeated queries see identical overlay states.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from .estimator import Overlay, ReliabilityEstimator, build_overlay

try:
    import numpy as np

    from ..engine import (
        WorldBatch,
        batch_reach,
        compile_plan,
        extend_with_overlay,
        hit_fraction,
        pack_bool_matrix,
        pair_hit_fractions,
        reach_counts_dict,
        sample_worlds,
    )
except ImportError:  # pragma: no cover - numpy-less fallback
    np = None  # type: ignore[assignment]

#: Mixing constant separating overlay-coin seeds from world-coin seeds.
_OVERLAY_SALT = 0x9E3779B9


class BFSSharingIndex(ReliabilityEstimator):
    """Offline sampled-worlds index over one uncertain graph.

    Parameters
    ----------
    graph:
        The graph to index.  The index snapshots the graph at build
        time; later mutations are NOT reflected (rebuild instead).
    num_samples:
        Number of stored possible worlds ``Z``.
    seed:
        Sampling seed; also derives per-query overlay coin seeds.
    vectorized:
        ``True`` stores worlds bit-packed and answers with the batch
        kernel, ``False`` keeps the per-world adjacency dicts, ``None``
        auto-selects the engine when numpy is importable.
    """

    name = "bfs-sharing"

    def __init__(
        self,
        graph: UncertainGraph,
        num_samples: int = 500,
        seed: int = 0,
        vectorized: Optional[bool] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if vectorized is None:
            vectorized = np is not None
        elif vectorized and np is None:
            raise RuntimeError("vectorized=True requires numpy")
        self.graph = graph
        self.num_samples = num_samples
        self.seed = seed
        self.vectorized = vectorized
        self._worlds: List[Dict[int, List[int]]] = []
        self._plan = None
        self._batch: Optional["WorldBatch"] = None
        self._build()

    def _build(self) -> None:
        if self.vectorized:
            # Snapshot: the compiled plan and sampled bits are immutable,
            # so later graph mutations can't leak into the index.
            self._plan = compile_plan(self.graph)
            rng = np.random.default_rng(self.seed)
            self._batch = sample_worlds(self._plan, self.num_samples, rng)
            return
        rng = random.Random(self.seed)
        rand = rng.random
        edges = list(self.graph.edges())
        directed = self.graph.directed
        for _ in range(self.num_samples):
            adjacency: Dict[int, List[int]] = {}
            for u, v, p in edges:
                if p >= 1.0 or rand() < p:
                    adjacency.setdefault(u, []).append(v)
                    if not directed:
                        adjacency.setdefault(v, []).append(u)
            self._worlds.append(adjacency)

    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        """Fraction of stored worlds where target is reachable.

        ``graph`` must be the indexed graph (defensive check by
        identity); pass ``extra_edges`` for candidate-edge overlays.
        """
        self._check(graph)
        if source == target:
            return 1.0
        if source not in graph:
            return 0.0
        if self.vectorized:
            plan, batch = self._query_batch(extra_edges)
            src = plan.node_index(source)
            dst = plan.node_index(target)
            if src is None or dst is None:
                # Node added to the graph after the snapshot was built:
                # it is isolated in every stored world.
                return 0.0
            reached = batch_reach(plan, batch, [src], target_index=dst)
            return hit_fraction(reached[dst], self.num_samples)
        overlay = build_overlay(graph, extra_edges)
        hits = 0
        for index, world in enumerate(self._worlds):
            if self._reaches(world, overlay, source, target, index):
                hits += 1
        return hits / self.num_samples

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        self._check(graph)
        if source not in graph:
            return {}
        if self.vectorized:
            plan, batch = self._query_batch(extra_edges)
            src = plan.node_index(source)
            if src is None:
                return {source: 1.0}
            reached = batch_reach(plan, batch, [src])
            return reach_counts_dict(
                plan, reached, self.num_samples, [source]
            )
        overlay = build_overlay(graph, extra_edges)
        counts: Dict[int, int] = {}
        for index, world in enumerate(self._worlds):
            for node in self._reach_set(world, overlay, source, index):
                counts[node] = counts.get(node, 0) + 1
        result = {node: c / self.num_samples for node, c in counts.items()}
        result[source] = 1.0
        return result

    def pair_reliabilities(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Overlay = None,
    ) -> Dict[Tuple[int, int], float]:
        """Worlds are shared across all pairs — the index's sweet spot."""
        self._check(graph)
        if self.vectorized:
            if not pairs:
                return {}
            plan, batch = self._query_batch(extra_edges)
            return pair_hit_fractions(plan, batch, pairs, self.num_samples)
        overlay = build_overlay(graph, extra_edges)
        counts = {pair: 0 for pair in pairs}
        by_source: Dict[int, List[Tuple[int, int]]] = {}
        for s, t in pairs:
            by_source.setdefault(s, []).append((s, t))
        for index, world in enumerate(self._worlds):
            for s, spairs in by_source.items():
                reach = self._reach_set(world, overlay, s, index)
                for pair in spairs:
                    if pair[1] in reach or pair[1] == s:
                        counts[pair] += 1
        return {pair: c / self.num_samples for pair, c in counts.items()}

    # ------------------------------------------------------------------
    # vectorized internals
    # ------------------------------------------------------------------
    def _query_batch(self, extra_edges: Overlay):
        """Stored worlds, extended with deterministic overlay coins."""
        extra = list(extra_edges) if extra_edges else None
        if not extra:
            return self._plan, self._batch
        plan = extend_with_overlay(self._plan, extra)
        rows = np.empty(
            (len(extra), self._batch.num_words), dtype=np.uint64
        )
        for offset, (u, v, p) in enumerate(extra):
            rows[offset] = self._overlay_coin_row(u, v, p)
        alive = np.vstack([self._batch.alive, rows])
        batch = WorldBatch(
            alive=alive,
            num_samples=self.num_samples,
            valid=self._batch.valid,
        )
        return plan, batch

    def _overlay_coin_row(self, u: int, v: int, p: float) -> "np.ndarray":
        """Deterministic Bernoulli(p) bits per world for one overlay edge.

        Keyed by the canonical edge so every query sees the same overlay
        edge states (consistency across a pair workload's sources),
        while states stay independent across worlds.  Tuples of ints
        hash deterministically across processes, so the derived seed is
        stable.
        """
        key = (u, v) if u <= v else (v, u)
        derived = hash((self.seed, _OVERLAY_SALT, key)) & 0x7FFFFFFF
        coins = np.random.default_rng(derived).random(self.num_samples)
        return pack_bool_matrix(
            (coins < p)[None, :], self.num_samples
        )[0]

    # ------------------------------------------------------------------
    # scalar internals (fallback path)
    # ------------------------------------------------------------------
    def _check(self, graph: UncertainGraph) -> None:
        if graph is not self.graph:
            raise ValueError(
                "BFSSharingIndex answers queries only for the graph it "
                "indexed; rebuild the index for a different graph"
            )

    def _overlay_coin(self, world_index: int, u: int, v: int, p: float) -> bool:
        """Deterministic Bernoulli(p) per (world, overlay edge)."""
        if p >= 1.0:
            return True
        key = (u, v) if u <= v else (v, u)
        seed = hash((self.seed, world_index, key)) & 0x7FFFFFFF
        return random.Random(seed).random() < p

    def _reaches(self, world, overlay, source, target, world_index) -> bool:
        return target in self._reach_set(world, overlay, source, world_index)

    def _reach_set(
        self,
        world: Dict[int, List[int]],
        overlay: Dict[int, List[Tuple[int, float]]],
        source: int,
        world_index: int,
    ) -> Set[int]:
        visited = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v in world.get(u, ()):
                if v not in visited:
                    visited.add(v)
                    frontier.append(v)
            if overlay and u in overlay:
                for v, p in overlay[u]:
                    if v in visited:
                        continue
                    if self._overlay_coin(world_index, u, v, p):
                        visited.add(v)
                        frontier.append(v)
        return visited
