"""BFS-sharing index: pre-sampled worlds shared across queries.

The paper's related work (§7, citing the in-depth comparison of s-t
reliability algorithms) includes *BFSSharing* — an offline index that
samples ``Z`` possible worlds once and answers every subsequent query by
traversing the stored worlds.  Amortized over a query workload (e.g. the
multi-source-target loops, which re-evaluate hundreds of pairs on the
same graph) this is far cheaper than re-sampling per query.

Overlay (``extra_edges``) support: stored worlds cover only the indexed
graph; overlay edges are Bernoulli-sampled per (query, world) with a
deterministic per-index seed, so marginals match plain Monte Carlo.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Sequence, Set, Tuple

from ..graph import UncertainGraph
from .estimator import Overlay, ReliabilityEstimator, build_overlay


class BFSSharingIndex(ReliabilityEstimator):
    """Offline sampled-worlds index over one uncertain graph.

    Parameters
    ----------
    graph:
        The graph to index.  The index snapshots the graph at build
        time; later mutations are NOT reflected (rebuild instead).
    num_samples:
        Number of stored possible worlds ``Z``.
    seed:
        Sampling seed; also derives per-query overlay coin seeds.
    """

    name = "bfs-sharing"

    def __init__(
        self,
        graph: UncertainGraph,
        num_samples: int = 500,
        seed: int = 0,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        self.graph = graph
        self.num_samples = num_samples
        self.seed = seed
        self._worlds: List[Dict[int, List[int]]] = []
        self._build()

    def _build(self) -> None:
        rng = random.Random(self.seed)
        rand = rng.random
        edges = list(self.graph.edges())
        directed = self.graph.directed
        for _ in range(self.num_samples):
            adjacency: Dict[int, List[int]] = {}
            for u, v, p in edges:
                if p >= 1.0 or rand() < p:
                    adjacency.setdefault(u, []).append(v)
                    if not directed:
                        adjacency.setdefault(v, []).append(u)
            self._worlds.append(adjacency)

    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        """Fraction of stored worlds where target is reachable.

        ``graph`` must be the indexed graph (defensive check by
        identity); pass ``extra_edges`` for candidate-edge overlays.
        """
        self._check(graph)
        if source == target:
            return 1.0
        if source not in graph:
            return 0.0
        overlay = build_overlay(graph, extra_edges)
        hits = 0
        for index, world in enumerate(self._worlds):
            if self._reaches(world, overlay, source, target, index):
                hits += 1
        return hits / self.num_samples

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        self._check(graph)
        if source not in graph:
            return {}
        overlay = build_overlay(graph, extra_edges)
        counts: Dict[int, int] = {}
        for index, world in enumerate(self._worlds):
            for node in self._reach_set(world, overlay, source, index):
                counts[node] = counts.get(node, 0) + 1
        result = {node: c / self.num_samples for node, c in counts.items()}
        result[source] = 1.0
        return result

    def pair_reliabilities(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Overlay = None,
    ) -> Dict[Tuple[int, int], float]:
        """Worlds are shared across all pairs — the index's sweet spot."""
        self._check(graph)
        overlay = build_overlay(graph, extra_edges)
        counts = {pair: 0 for pair in pairs}
        by_source: Dict[int, List[Tuple[int, int]]] = {}
        for s, t in pairs:
            by_source.setdefault(s, []).append((s, t))
        for index, world in enumerate(self._worlds):
            for s, spairs in by_source.items():
                reach = self._reach_set(world, overlay, s, index)
                for pair in spairs:
                    if pair[1] in reach or pair[1] == s:
                        counts[pair] += 1
        return {pair: c / self.num_samples for pair, c in counts.items()}

    # ------------------------------------------------------------------
    def _check(self, graph: UncertainGraph) -> None:
        if graph is not self.graph:
            raise ValueError(
                "BFSSharingIndex answers queries only for the graph it "
                "indexed; rebuild the index for a different graph"
            )

    def _overlay_coin(self, world_index: int, u: int, v: int, p: float) -> bool:
        """Deterministic Bernoulli(p) per (world, overlay edge).

        Keyed by world and canonical edge so every query sees the same
        overlay edge state inside one world (consistency across the
        sources of a pair workload), while states stay independent
        across worlds.
        """
        if p >= 1.0:
            return True
        key = (u, v) if u <= v else (v, u)
        # Tuples of ints hash deterministically across processes, so the
        # derived seed is stable; Random() itself needs an int.
        seed = hash((self.seed, world_index, key)) & 0x7FFFFFFF
        return random.Random(seed).random() < p

    def _reaches(self, world, overlay, source, target, world_index) -> bool:
        return target in self._reach_set(world, overlay, source, world_index)

    def _reach_set(
        self,
        world: Dict[int, List[int]],
        overlay: Dict[int, List[Tuple[int, float]]],
        source: int,
        world_index: int,
    ) -> Set[int]:
        visited = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v in world.get(u, ()):
                if v not in visited:
                    visited.add(v)
                    frontier.append(v)
            if overlay and u in overlay:
                for v, p in overlay[u]:
                    if v in visited:
                        continue
                    if self._overlay_coin(world_index, u, v, p):
                        visited.add(v)
                        frontier.append(v)
        return visited
