"""Monte Carlo reliability estimation.

The fundamental estimator (Fishman 1986): sample ``Z`` possible worlds
and report the fraction in which the target is reachable.  Two
implementations share one statistical contract:

* the **vectorized engine** (default, :mod:`repro.engine`) flips coins
  for all ``Z`` samples with one seeded ``numpy`` generator and runs a
  bit-packed batch BFS that advances every sample per sweep;
* the **scalar fallback** flips edge coins *during* a per-sample BFS —
  an edge's state is only decided when the traversal first relaxes it,
  which is equivalent in distribution and touches only the reachable
  region (the "MC + BFS" refinement of Jin et al., PVLDB'11).

Both are unbiased with variance ``R(1-R)/Z`` and deterministic given a
seed, but they consume different PRNG streams, so estimates are not
bit-for-bit identical across the two paths (only statistically so).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..graph import UncertainGraph
from .estimator import (
    Overlay,
    ReliabilityEstimator,
    SelectionBackend,
    build_overlay,
)

try:
    from ..engine import VectorizedSamplingEngine
except ImportError:  # pragma: no cover - numpy-less fallback
    VectorizedSamplingEngine = None  # type: ignore[assignment,misc]


class MonteCarloEstimator(ReliabilityEstimator):
    """Monte Carlo sampling with per-sample lazily-sampled BFS.

    Parameters
    ----------
    num_samples:
        Number of sampled possible worlds ``Z``.
    seed:
        Seed for the internal PRNG.  Two estimators with the same seed
        produce identical estimates for identical query sequences.
    vectorized:
        ``True`` delegates to the batch engine, ``False`` forces the
        legacy scalar BFS, ``None`` (default) auto-selects the engine
        when numpy is importable.

    Notes
    -----
    Complexity is ``O(Z * (n + m))`` per query.  The estimator is
    unbiased; its variance shrinks as ``R(1-R)/Z``.
    """

    name = "mc"

    def __init__(
        self,
        num_samples: int = 1000,
        seed: int = 0,
        vectorized: Optional[bool] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if vectorized is None:
            vectorized = VectorizedSamplingEngine is not None
        elif vectorized and VectorizedSamplingEngine is None:
            raise RuntimeError("vectorized=True requires numpy")
        self.num_samples = num_samples
        self.vectorized = vectorized
        self._rng = random.Random(seed)
        self._engine = (
            VectorizedSamplingEngine(seed) if vectorized else None
        )

    def selection_backend(self) -> Optional[Tuple[int, int]]:
        """Plain fixed-Z hit rates on the engine batch into the
        selection-gain kernel; ``None`` on the scalar path."""
        if self._engine is None:
            return None
        return SelectionBackend(self.num_samples, self._engine.seed)

    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        if source == target:
            return 1.0
        if source not in graph or target not in graph:
            return 0.0
        if self._engine is not None:
            return self._engine.reliability(
                graph, source, target, self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        hits = 0
        rand = self._rng.random
        succ = graph.successors
        for _ in range(self.num_samples):
            if self._sampled_bfs_hits_target(succ, overlay, source, target, rand):
                hits += 1
        return hits / self.num_samples

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        if source not in graph:
            return {}
        if self._engine is not None:
            return self._engine.reachability_from(
                graph, source, self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        counts: Dict[int, int] = {}
        rand = self._rng.random
        succ = graph.successors
        for _ in range(self.num_samples):
            for node in self._sampled_bfs_reach_set(succ, overlay, source, rand):
                counts[node] = counts.get(node, 0) + 1
        result = {node: c / self.num_samples for node, c in counts.items()}
        result[source] = 1.0
        return result

    def pair_reliabilities(
        self,
        graph: UncertainGraph,
        pairs: Sequence[Tuple[int, int]],
        extra_edges: Overlay = None,
    ) -> Dict[Tuple[int, int], float]:
        """Shared-world evaluation of many pairs.

        Each sample fixes one possible world (via a shared coin cache) and
        answers every pair inside it, so pair estimates are consistent —
        exactly how the paper evaluates multi-source-target objectives.
        """
        if not pairs:
            return {}
        if self._engine is not None:
            return self._engine.pair_reliabilities(
                graph, list(pairs), self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        sources = sorted({s for s, _ in pairs})
        counts = {pair: 0 for pair in pairs}
        by_source: Dict[int, List[Tuple[int, int]]] = {}
        for s, t in pairs:
            by_source.setdefault(s, []).append((s, t))
        rand = self._rng.random
        succ = graph.successors
        canonical = not graph.directed
        for _ in range(self.num_samples):
            coin_cache: Dict[Tuple[int, int], bool] = {}
            for s in sources:
                reach = self._sampled_bfs_reach_set(
                    succ, overlay, s, rand,
                    coin_cache=coin_cache, canonical=canonical,
                )
                for pair in by_source[s]:
                    if pair[1] in reach or pair[1] == s:
                        counts[pair] += 1
        return {pair: c / self.num_samples for pair, c in counts.items()}

    def multi_source_reachability(
        self,
        graph: UncertainGraph,
        sources: Sequence[int],
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        if self._engine is not None:
            return self._engine.multi_source_reachability(
                graph, list(sources), self.num_samples,
                list(extra_edges) if extra_edges else None,
            )
        overlay = build_overlay(graph, extra_edges)
        counts: Dict[int, int] = {}
        rand = self._rng.random
        succ = graph.successors
        canonical = not graph.directed
        valid_sources = [s for s in sources if s in graph]
        for _ in range(self.num_samples):
            coin_cache: Dict[Tuple[int, int], bool] = {}
            union: Set[int] = set()
            for s in valid_sources:
                if s in union:
                    continue  # already reached by an earlier source's world
                union |= self._sampled_bfs_reach_set(
                    succ, overlay, s, rand,
                    coin_cache=coin_cache, canonical=canonical,
                )
            for node in union:
                counts[node] = counts.get(node, 0) + 1
        result = {node: c / self.num_samples for node, c in counts.items()}
        for s in valid_sources:
            result[s] = 1.0
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _sampled_bfs_hits_target(succ, overlay, source, target, rand) -> bool:
        """One world: BFS with on-the-fly coin flips, early exit at target."""
        visited = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v, p in succ(u).items():
                if v in visited:
                    continue
                if p >= 1.0 or rand() < p:
                    if v == target:
                        return True
                    visited.add(v)
                    frontier.append(v)
            if overlay:
                for v, p in overlay.get(u, ()):
                    if v in visited:
                        continue
                    if p >= 1.0 or rand() < p:
                        if v == target:
                            return True
                        visited.add(v)
                        frontier.append(v)
        return False

    @staticmethod
    def _sampled_bfs_reach_set(
        succ,
        overlay,
        source,
        rand,
        coin_cache: Optional[Dict[Tuple[int, int], bool]] = None,
        canonical: bool = True,
    ) -> Set[int]:
        """One world: full reach set from ``source``.

        With ``coin_cache`` the edge states are shared across calls, so
        several sources can be evaluated inside the *same* world.
        ``canonical`` collapses ``(u, v)``/``(v, u)`` cache keys — required
        for undirected graphs where both orientations are one edge.
        """
        visited = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            neighbors = list(succ(u).items())
            if overlay and u in overlay:
                neighbors.extend(overlay[u])
            for v, p in neighbors:
                if v in visited:
                    continue
                if coin_cache is None:
                    alive = p >= 1.0 or rand() < p
                else:
                    if canonical and v < u:
                        key = (v, u)
                    else:
                        key = (u, v)
                    alive = coin_cache.get(key)
                    if alive is None:
                        alive = p >= 1.0 or rand() < p
                        coin_cache[key] = alive
                if alive:
                    visited.add(v)
                    frontier.append(v)
        return visited
