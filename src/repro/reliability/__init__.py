"""Reliability estimation: exact, Monte Carlo, RSS, lazy propagation."""

from .estimator import (
    Overlay,
    ReliabilityEstimator,
    SelectionBackend,
    build_overlay,
    resolve_selection_backend,
    reverse_overlay,
)
from .exact import (
    ExactEstimator,
    exact_reliability,
    exact_reliability_by_enumeration,
)
from .monte_carlo import MonteCarloEstimator
from .rss import RecursiveStratifiedSampler
from .lazy import LazyPropagationEstimator
from .bfs_sharing import BFSSharingIndex
from .adaptive import AdaptiveEstimate, AdaptiveMonteCarlo, wilson_interval
from .bounds import (
    ReliabilityBounds,
    reliability_bounds,
    reliability_lower_bound,
    reliability_upper_bound,
)
from .convergence import (
    estimator_bias_check,
    index_of_dispersion,
    required_samples,
)
from .registry import (
    EstimatorSpec,
    estimator_names,
    estimator_spec,
    make_estimator,
    register_estimator,
)

__all__ = [
    "Overlay",
    "ReliabilityEstimator",
    "SelectionBackend",
    "build_overlay",
    "resolve_selection_backend",
    "reverse_overlay",
    "ExactEstimator",
    "exact_reliability",
    "exact_reliability_by_enumeration",
    "MonteCarloEstimator",
    "RecursiveStratifiedSampler",
    "LazyPropagationEstimator",
    "BFSSharingIndex",
    "AdaptiveEstimate",
    "AdaptiveMonteCarlo",
    "wilson_interval",
    "ReliabilityBounds",
    "reliability_bounds",
    "reliability_lower_bound",
    "reliability_upper_bound",
    "estimator_bias_check",
    "index_of_dispersion",
    "required_samples",
    "EstimatorSpec",
    "estimator_names",
    "estimator_spec",
    "make_estimator",
    "register_estimator",
]
