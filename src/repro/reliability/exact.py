"""Exact s-t reliability.

Exact computation is #P-complete (Valiant 1979; Ball 1986) so these
routines only scale to small graphs.  They exist to (a) validate the
sampling estimators in tests, (b) power the paper's Figure 2 / Figure 3 /
Table 2 worked examples, and (c) drive the exhaustive Exact Solution
baseline (Table 11) on the Intel-Lab-sized network.

Two algorithms are provided:

* :func:`exact_reliability` — recursive *factoring* (conditioning on one
  edge at a time) with relevance pruning and certain-path early exit;
  practical up to a few dozen relevant edges.
* :func:`exact_reliability_by_enumeration` — brute-force possible-world
  enumeration; only for ~20 edges, used to cross-check the factoring
  implementation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set, Tuple

from ..graph import UncertainGraph
from .estimator import Overlay, ReliabilityEstimator


def _forward_reachable(graph: UncertainGraph, source: int, min_p: float = 0.0) -> Set[int]:
    """Nodes reachable from source via edges with p > min_p."""
    seen = {source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v, p in graph.successors(u).items():
            if v not in seen and p > min_p:
                seen.add(v)
                frontier.append(v)
    return seen


def _backward_reachable(graph: UncertainGraph, target: int, min_p: float = 0.0) -> Set[int]:
    """Nodes that can reach target via edges with p > min_p."""
    seen = {target}
    frontier = deque([target])
    while frontier:
        u = frontier.popleft()
        for v, p in graph.predecessors(u).items():
            if v not in seen and p > min_p:
                seen.add(v)
                frontier.append(v)
    return seen


def _certainly_reachable(graph: UncertainGraph, source: int) -> Set[int]:
    """Nodes reachable from source via probability-1 edges only."""
    seen = {source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v, p in graph.successors(u).items():
            if v not in seen and p >= 1.0:
                seen.add(v)
                frontier.append(v)
    return seen


def exact_reliability(
    graph: UncertainGraph,
    source: int,
    target: int,
    extra_edges: Overlay = None,
    max_edges: int = 64,
) -> float:
    """Exact ``R(source, target)`` by recursive edge factoring.

    ``R = p(e) * R(G | e present) + (1 - p(e)) * R(G | e absent)``

    At every step the graph is pruned to edges that lie on some
    source→target path, and the recursion exits early once a
    probability-1 path exists.  ``max_edges`` guards against accidentally
    factoring a graph that is too large (raises ``ValueError``).
    """
    if source == target:
        return 1.0
    if source not in graph or target not in graph:
        return 0.0
    work = graph.copy() if extra_edges is None else graph.with_edges(extra_edges)
    relevant = _relevant_subgraph(work, source, target)
    if relevant is None:
        return 0.0
    if relevant.num_edges > max_edges:
        raise ValueError(
            f"graph has {relevant.num_edges} relevant edges; factoring is "
            f"limited to {max_edges} (pass max_edges= to override)"
        )
    return _factor(relevant, source, target)


def _relevant_subgraph(
    graph: UncertainGraph,
    source: int,
    target: int,
) -> Optional[UncertainGraph]:
    """Subgraph of edges on some s→t path with p > 0; None if disconnected."""
    fwd = _forward_reachable(graph, source)
    if target not in fwd:
        return None
    bwd = _backward_reachable(graph, target)
    keep = fwd & bwd
    keep.add(source)
    keep.add(target)
    sub = UncertainGraph(directed=graph.directed)
    sub.add_node(source)
    sub.add_node(target)
    for u, v, p in graph.edges():
        if p <= 0.0:
            continue
        if graph.directed:
            if u in keep and v in keep:
                sub.add_edge(u, v, p)
        else:
            if u in keep and v in keep:
                sub.add_edge(u, v, p)
    return sub


def _factor(graph: UncertainGraph, source: int, target: int) -> float:
    """Recursive factoring on a pre-pruned graph."""
    sure = _certainly_reachable(graph, source)
    if target in sure:
        return 1.0
    # Pick an uncertain edge leaving the certain region (guaranteed to
    # exist: target is reachable with p > 0 but not certainly).
    pivot: Optional[Tuple[int, int, float]] = None
    for u in sure:
        for v, p in graph.successors(u).items():
            if p < 1.0 and (v not in sure):
                pivot = (u, v, p)
                break
        if pivot:
            break
    if pivot is None:
        return 0.0
    u, v, p = pivot

    present = graph.copy()
    present.set_probability(u, v, 1.0)
    prob_present = _factor_pruned(present, source, target)

    absent = graph.copy()
    absent.remove_edge(u, v)
    prob_absent = _factor_pruned(absent, source, target)

    return p * prob_present + (1.0 - p) * prob_absent


def _factor_pruned(graph: UncertainGraph, source: int, target: int) -> float:
    sub = _relevant_subgraph(graph, source, target)
    if sub is None:
        return 0.0
    return _factor(sub, source, target)


def exact_reliability_by_enumeration(
    graph: UncertainGraph,
    source: int,
    target: int,
    extra_edges: Overlay = None,
) -> float:
    """Brute-force Eq. 2: sum of world probabilities where t is reachable."""
    if source == target:
        return 1.0
    work = graph.copy() if extra_edges is None else graph.with_edges(extra_edges)
    if source not in work or target not in work:
        return 0.0
    total = 0.0
    for present, prob in work.possible_worlds():
        if _world_reaches(work, present, source, target):
            total += prob
    return total


def _world_reaches(
    graph: UncertainGraph,
    present: Set[Tuple[int, int]],
    source: int,
    target: int,
) -> bool:
    adjacency: Dict[int, list] = {}
    for u, v in present:
        adjacency.setdefault(u, []).append(v)
        if not graph.directed:
            adjacency.setdefault(v, []).append(u)
    seen = {source}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in adjacency.get(u, ()):
            if v == target:
                return True
            if v not in seen:
                seen.add(v)
                frontier.append(v)
    return target in seen


class ExactEstimator(ReliabilityEstimator):
    """Estimator facade over :func:`exact_reliability`.

    Lets the selection algorithms run with *exact* reliability on small
    graphs — used by tests and the worked-example benchmarks.
    """

    name = "exact"

    def __init__(self, max_edges: int = 64) -> None:
        self.max_edges = max_edges

    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        return exact_reliability(
            graph, source, target, extra_edges, max_edges=self.max_edges
        )

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        extra = list(extra_edges) if extra_edges else None
        result = {}
        for node in graph.nodes():
            value = self.reliability(graph, source, node, extra)
            if value > 0.0:
                result[node] = value
        return result
