"""Estimator convergence diagnostics (the paper's index of dispersion).

§5.3: the variance of an estimator is measured by repeating the same
query set with different seeds; the ratio ``rho_Z = V_Z / R_Z`` of the
average variance to the mean reliability (the *index of dispersion*)
decides convergence — an estimator is converged when ``rho_Z < 0.001``.
Tables 6 and 7 report the sample size each sampler needs to reach that
point, which is what :func:`required_samples` computes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..graph import UncertainGraph
from .estimator import ReliabilityEstimator

EstimatorFactory = Callable[[int, int], ReliabilityEstimator]
"""``factory(num_samples, seed) -> estimator``"""


def index_of_dispersion(
    factory: EstimatorFactory,
    graph: UncertainGraph,
    queries: Sequence[Tuple[int, int]],
    num_samples: int,
    repeats: int = 10,
    seed: int = 0,
) -> float:
    """``rho_Z``: average variance across repeats / mean reliability.

    Each repeat re-estimates every query with an independently seeded
    estimator; the variance is computed per query across repeats and then
    averaged, matching the paper's protocol (100 queries x 100 repeats,
    scaled down by callers as needed).
    """
    if repeats < 2:
        raise ValueError("need at least 2 repeats to measure variance")
    estimates = np.zeros((repeats, len(queries)))
    for rep in range(repeats):
        estimator = factory(num_samples, seed + 1000 * rep + 1)
        for qi, (s, t) in enumerate(queries):
            estimates[rep, qi] = estimator.reliability(graph, s, t)
    variance_per_query = estimates.var(axis=0, ddof=1)
    mean_reliability = float(estimates.mean())
    if mean_reliability <= 0.0:
        return float("inf")
    return float(variance_per_query.mean()) / mean_reliability


def required_samples(
    factory: EstimatorFactory,
    graph: UncertainGraph,
    queries: Sequence[Tuple[int, int]],
    candidate_sizes: Sequence[int] = (50, 100, 250, 500, 750, 1000, 2000),
    rho_threshold: float = 1e-3,
    repeats: int = 10,
    seed: int = 0,
) -> Tuple[int, Dict[int, float]]:
    """Smallest candidate ``Z`` with ``rho_Z < rho_threshold``.

    Returns ``(Z, {candidate: rho})``.  When no candidate converges, the
    largest candidate is returned (with its measured rho in the map), so
    callers can still proceed while reporting the miss.
    """
    history: Dict[int, float] = {}
    for num_samples in sorted(candidate_sizes):
        rho = index_of_dispersion(
            factory, graph, queries, num_samples, repeats=repeats, seed=seed
        )
        history[num_samples] = rho
        if rho < rho_threshold:
            return num_samples, history
    return max(candidate_sizes), history


def estimator_bias_check(
    factory: EstimatorFactory,
    graph: UncertainGraph,
    query: Tuple[int, int],
    truth: float,
    num_samples: int = 2000,
    repeats: int = 20,
    seed: int = 0,
) -> Tuple[float, float]:
    """Mean estimate and absolute bias against a known ground truth.

    Test helper: validates that samplers are unbiased on graphs small
    enough for :func:`repro.reliability.exact_reliability`.
    """
    values: List[float] = []
    s, t = query
    for rep in range(repeats):
        estimator = factory(num_samples, seed + 7 * rep + 3)
        values.append(estimator.reliability(graph, s, t))
    mean = float(np.mean(values))
    return mean, abs(mean - truth)
