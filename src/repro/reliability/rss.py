"""Recursive stratified sampling (RSS) for s-t reliability.

Follows Li et al., "Recursive Stratified Sampling: A New Framework for
Query Evaluation on Uncertain Graphs" (TKDE 2016), the advanced sampler
the paper plugs into its pipeline in §5.3: select ``r`` edges, partition
the probability space into ``r + 1`` non-overlapping strata (stratum ``i``
fixes edges ``1..i-1`` absent and edge ``i`` present), allocate samples
proportionally to stratum probability, recurse, and fall back to plain
Monte Carlo when a stratum's sample budget drops below a threshold.

The estimator keeps MC's ``O(Z (n + m))`` complexity but has a strictly
smaller variance, so fewer samples reach the same index of dispersion —
the effect Tables 6 and 7 measure.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..graph import UncertainGraph
from .estimator import (
    Overlay,
    ReliabilityEstimator,
    SelectionBackend,
    build_overlay,
)

try:
    import numpy as np

    from ..engine import (
        VectorizedSamplingEngine,
        build_query_plan,
        sample_worlds,
        sample_worlds_stratified,
    )
except ImportError:  # pragma: no cover - numpy-less fallback
    np = None  # type: ignore[assignment]
    VectorizedSamplingEngine = None  # type: ignore[assignment,misc]
    build_query_plan = None  # type: ignore[assignment]
    sample_worlds = sample_worlds_stratified = None  # type: ignore

EdgeKey = Tuple[int, int]


class _Adjacency:
    """Merged view of graph + overlay edges with stable edge keys."""

    def __init__(self, graph: UncertainGraph, overlay: Dict[int, List[Tuple[int, float]]]):
        self._succ = graph.successors
        self._overlay = overlay
        self._canonical = not graph.directed

    def key(self, u: int, v: int) -> EdgeKey:
        if self._canonical and v < u:
            return (v, u)
        return (u, v)

    def neighbors(self, u: int) -> Iterable[Tuple[int, float, EdgeKey]]:
        for v, p in self._succ(u).items():
            yield v, p, self.key(u, v)
        for v, p in self._overlay.get(u, ()):
            yield v, p, self.key(u, v)


class RecursiveStratifiedSampler(ReliabilityEstimator):
    """RSS estimator with proportional sample allocation.

    Parameters
    ----------
    num_samples:
        Total sample budget ``Z`` (shared across strata).
    num_stratify_edges:
        ``r`` — how many frontier edges define the strata at each level.
    mc_threshold:
        Strata whose allocated budget falls below this run plain MC.
    max_depth:
        Recursion guard; deeper strata fall back to MC.
    seed:
        PRNG seed.
    vectorized:
        ``True`` runs the Monte Carlo leaves of the stratification tree
        on the batch engine (stratum recursion itself stays scalar —
        it is structure discovery, not sampling), ``False`` forces the
        legacy per-sample BFS, ``None`` auto-selects.

    Notes
    -----
    Not thread-safe: beyond the PRNG, the estimator briefly stores the
    active query's compiled plan while the recursion runs.
    """

    name = "rss"

    def __init__(
        self,
        num_samples: int = 250,
        num_stratify_edges: int = 6,
        mc_threshold: int = 40,
        max_depth: int = 8,
        seed: int = 0,
        vectorized: Optional[bool] = None,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if num_stratify_edges < 1:
            raise ValueError("num_stratify_edges must be positive")
        if vectorized is None:
            vectorized = VectorizedSamplingEngine is not None
        elif vectorized and VectorizedSamplingEngine is None:
            raise RuntimeError("vectorized=True requires numpy")
        self.num_samples = num_samples
        self.num_stratify_edges = num_stratify_edges
        self.mc_threshold = mc_threshold
        self.max_depth = max_depth
        self.vectorized = vectorized
        self._rng = random.Random(seed)
        self._engine = (
            VectorizedSamplingEngine(seed) if vectorized else None
        )
        self._active_plan = None

    # ------------------------------------------------------------------
    # batched selection backend (per-stratum shared worlds)
    # ------------------------------------------------------------------
    def selection_backend(self):
        """Per-stratum shared-world backend on the engine path.

        Selection loops score every candidate against one *stratified*
        base batch built by :meth:`selection_batch`: the estimator's
        level-1 stratification of the query's source frontier, with
        samples allocated proportionally to stratum probability — the
        same variance-reduction idea as the recursive estimate, flat
        enough to serve as a single shared world batch.  ``None`` on
        the scalar path (selection then stays per-candidate).
        """
        if self._engine is None:
            return None
        return SelectionBackend(
            self.num_samples, self._engine.seed,
            make_batch=self.selection_batch,
        )

    def selection_batch(self, graph, plan, source, target):
        """Level-1 stratified world batch for shared-world selection.

        Strata follow the estimator's own scheme (§5.3 / Li et al.):
        rank the undetermined edges on the frontier of ``source``'s
        certain region, stratum ``i`` pins edges ``1..i-1`` absent and
        edge ``i`` present, the remainder stratum pins all ``r``
        absent.  Proportional largest-remainder allocation keeps the
        uniform batch average equal to the stratified estimator (up to
        integer rounding), so the gain kernel can treat the batch
        exactly like a plain one.  Deterministic for a fixed seed; no
        strata (no undetermined frontier) degrades to plain sampling.
        """
        rng = np.random.default_rng(self._engine.seed)
        if source not in graph:
            return sample_worlds(plan, self.num_samples, rng)
        adj = _Adjacency(graph, {})
        certain = self._certain_region(adj, source, {})
        ranked = self._select_strata_edges(adj, certain, {})
        strata = []
        absent: List[int] = []
        prefix = 1.0
        for _u, _v, p, key in ranked:
            ids = list(plan.edge_index.get(key, ()))
            if not ids:  # pragma: no cover - plan/graph mismatch guard
                continue
            strata.append((ids, list(absent), prefix * p))
            absent.extend(ids)
            prefix *= 1.0 - p
        if not strata:
            return sample_worlds(plan, self.num_samples, rng)
        strata.append(([], absent, prefix))
        return sample_worlds_stratified(
            plan, strata, self.num_samples, rng
        )

    # ------------------------------------------------------------------
    def reliability(
        self,
        graph: UncertainGraph,
        source: int,
        target: int,
        extra_edges: Overlay = None,
    ) -> float:
        if source == target:
            return 1.0
        if source not in graph or target not in graph:
            return 0.0
        extra = list(extra_edges) if extra_edges else None
        adj = _Adjacency(graph, build_overlay(graph, extra))
        self._active_plan = (
            build_query_plan(graph, extra) if self._engine else None
        )
        try:
            return self._estimate(adj, source, target, {}, self.num_samples, 0)
        finally:
            self._active_plan = None

    def reachability_from(
        self,
        graph: UncertainGraph,
        source: int,
        extra_edges: Overlay = None,
    ) -> Dict[int, float]:
        if source not in graph:
            return {}
        extra = list(extra_edges) if extra_edges else None
        adj = _Adjacency(graph, build_overlay(graph, extra))
        self._active_plan = (
            build_query_plan(graph, extra) if self._engine else None
        )
        counts: Dict[int, float] = {}
        try:
            self._estimate_vector(
                adj, source, {}, self.num_samples, 0, 1.0, counts
            )
        finally:
            self._active_plan = None
        counts[source] = 1.0
        return counts

    # ------------------------------------------------------------------
    # scalar (s-t) recursion
    # ------------------------------------------------------------------
    def _estimate(
        self,
        adj: _Adjacency,
        source: int,
        target: int,
        forced: Dict[EdgeKey, bool],
        budget: int,
        depth: int,
    ) -> float:
        certain = self._certain_region(adj, source, forced)
        if target in certain:
            return 1.0
        if target not in self._potential_region(adj, source, forced):
            return 0.0
        if depth >= self.max_depth or budget < self.mc_threshold:
            return self._monte_carlo(adj, source, target, forced, max(budget, 1))

        strata_edges = self._select_strata_edges(adj, certain, forced)
        if not strata_edges:
            return 0.0  # no undetermined frontier: target unreachable

        estimate = 0.0
        prefix_absent = 1.0
        forced_base = dict(forced)
        for _u, _v, p, key in strata_edges:
            pi = prefix_absent * p
            stratum_forced = dict(forced_base)
            stratum_forced[key] = True
            estimate += pi * self._recurse(
                adj, source, target, stratum_forced, pi, budget, depth
            )
            forced_base[key] = False
            prefix_absent *= 1.0 - p
        if prefix_absent > 0.0:
            estimate += prefix_absent * self._recurse(
                adj, source, target, forced_base, prefix_absent, budget, depth
            )
        return estimate

    def _recurse(
        self,
        adj: _Adjacency,
        source: int,
        target: int,
        forced: Dict[EdgeKey, bool],
        pi: float,
        budget: int,
        depth: int,
    ) -> float:
        allocated = int(round(budget * pi))
        if pi <= 1e-12:
            return 0.0
        allocated = max(allocated, 1)
        if allocated < self.mc_threshold:
            return self._monte_carlo(adj, source, target, forced, allocated)
        return self._estimate(adj, source, target, forced, allocated, depth + 1)

    # ------------------------------------------------------------------
    # vector (reachability-from) recursion
    # ------------------------------------------------------------------
    def _estimate_vector(
        self,
        adj: _Adjacency,
        source: int,
        forced: Dict[EdgeKey, bool],
        budget: int,
        depth: int,
        weight: float,
        out: Dict[int, float],
    ) -> None:
        """Accumulate ``weight * P(node reachable)`` into ``out``."""
        certain = self._certain_region(adj, source, forced)
        if depth >= self.max_depth or budget < self.mc_threshold:
            self._monte_carlo_vector(adj, source, forced, max(budget, 1), weight, out)
            return
        strata_edges = self._select_strata_edges(adj, certain, forced)
        if not strata_edges:
            for node in certain:
                out[node] = out.get(node, 0.0) + weight
            return
        prefix_absent = 1.0
        forced_base = dict(forced)
        for _u, _v, p, key in strata_edges:
            pi = prefix_absent * p
            if pi > 1e-12:
                stratum_forced = dict(forced_base)
                stratum_forced[key] = True
                allocated = max(int(round(budget * pi)), 1)
                if allocated < self.mc_threshold:
                    self._monte_carlo_vector(
                        adj, source, stratum_forced, allocated, weight * pi, out
                    )
                else:
                    self._estimate_vector(
                        adj, source, stratum_forced, allocated,
                        depth + 1, weight * pi, out,
                    )
            forced_base[key] = False
            prefix_absent *= 1.0 - p
        if prefix_absent > 1e-12:
            allocated = max(int(round(budget * prefix_absent)), 1)
            if allocated < self.mc_threshold:
                self._monte_carlo_vector(
                    adj, source, forced_base, allocated,
                    weight * prefix_absent, out,
                )
            else:
                self._estimate_vector(
                    adj, source, forced_base, allocated,
                    depth + 1, weight * prefix_absent, out,
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _certain_region(
        adj: _Adjacency,
        source: int,
        forced: Dict[EdgeKey, bool],
    ) -> Set[int]:
        """Nodes reachable via forced-present or probability-1 edges."""
        seen = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v, p, key in adj.neighbors(u):
                if v in seen:
                    continue
                status = forced.get(key)
                if status is True or (status is None and p >= 1.0):
                    seen.add(v)
                    frontier.append(v)
        return seen

    @staticmethod
    def _potential_region(
        adj: _Adjacency,
        source: int,
        forced: Dict[EdgeKey, bool],
    ) -> Set[int]:
        """Nodes reachable if every undetermined edge were present."""
        seen = {source}
        frontier = deque([source])
        while frontier:
            u = frontier.popleft()
            for v, p, key in adj.neighbors(u):
                if v in seen:
                    continue
                status = forced.get(key)
                if status is False or (status is None and p <= 0.0):
                    continue
                seen.add(v)
                frontier.append(v)
        return seen

    def _select_strata_edges(
        self,
        adj: _Adjacency,
        certain: Set[int],
        forced: Dict[EdgeKey, bool],
    ) -> List[Tuple[int, int, float, EdgeKey]]:
        """Undetermined edges on the certain-region frontier, best first."""
        candidates: Dict[EdgeKey, Tuple[int, int, float, EdgeKey]] = {}
        for u in certain:
            for v, p, key in adj.neighbors(u):
                if v in certain or key in forced or key in candidates:
                    continue
                if 0.0 < p < 1.0:
                    candidates[key] = (u, v, p, key)
        ranked = sorted(candidates.values(), key=lambda item: -item[2])
        return ranked[: self.num_stratify_edges]

    def _monte_carlo(
        self,
        adj: _Adjacency,
        source: int,
        target: int,
        forced: Dict[EdgeKey, bool],
        num_samples: int,
    ) -> float:
        if self._engine is not None and self._active_plan is not None:
            return self._engine.stratified_reliability(
                self._active_plan, source, target, forced, num_samples
            )
        rand = self._rng.random
        hits = 0
        for _ in range(num_samples):
            visited = {source}
            frontier = deque([source])
            found = False
            while frontier and not found:
                u = frontier.popleft()
                for v, p, key in adj.neighbors(u):
                    if v in visited:
                        continue
                    status = forced.get(key)
                    if status is False:
                        continue
                    if status is True or p >= 1.0 or rand() < p:
                        if v == target:
                            found = True
                            break
                        visited.add(v)
                        frontier.append(v)
            if found:
                hits += 1
        return hits / num_samples

    def _monte_carlo_vector(
        self,
        adj: _Adjacency,
        source: int,
        forced: Dict[EdgeKey, bool],
        num_samples: int,
        weight: float,
        out: Dict[int, float],
    ) -> None:
        if self._engine is not None and self._active_plan is not None:
            counts = self._engine.stratified_reach_counts(
                self._active_plan, source, forced, num_samples
            )
            for node, fraction in counts.items():
                out[node] = out.get(node, 0.0) + weight * fraction
            return
        rand = self._rng.random
        unit = weight / num_samples
        for _ in range(num_samples):
            visited = {source}
            frontier = deque([source])
            while frontier:
                u = frontier.popleft()
                for v, p, key in adj.neighbors(u):
                    if v in visited:
                        continue
                    status = forced.get(key)
                    if status is False:
                        continue
                    if status is True or p >= 1.0 or rand() < p:
                        visited.add(v)
                        frontier.append(v)
            for node in visited:
                out[node] = out.get(node, 0.0) + unit
