"""String-keyed estimator registry.

One construction path for every sampler in the repo.  The CLI, the
:class:`~repro.core.facade.ReliabilityMaximizer` facade, the experiments
harness and the :mod:`repro.api` session layer all used to build
estimators with hand-rolled ``if name == "mc": ...`` ladders; they now
all call :func:`make_estimator`.

Each entry is an :class:`EstimatorSpec` describing, besides the factory,
the capabilities the session layer needs to plan execution:

``supports_vectorized``
    The constructor accepts a ``vectorized=`` flag and can run on the
    batch engine (:mod:`repro.engine`).
``shares_worlds``
    Estimates are a plain hit-rate over ``Z`` i.i.d. possible worlds, so
    a :class:`~repro.api.Session` may answer the query from a *shared*
    fixed-Z world batch (true for plain MC and lazy propagation, whose
    scalar trick is only a sampling-order optimization).  Stratified and
    adaptive samplers condition or grow their sample sets and must run
    per query.
``fixed_samples``
    ``Z`` is a fixed budget.  Adaptive estimators choose ``Z`` at query
    time, which is exactly what a pre-sampled shared batch cannot serve.

Selection-backend support matrix
--------------------------------
Every registered estimator's *vectorized* instance reports an engine
:meth:`~repro.reliability.estimator.ReliabilityEstimator.selection_backend`,
so ``hill_climbing`` / ``individual_top_k`` (and session maximize
queries) auto-route all of them through the batched selection-gain
kernel (:mod:`repro.engine.selection`); scalar instances
(``vectorized=False``) return ``None`` and keep the per-candidate loop.
What differs is the *base batch* candidates are scored against:

========== =============== ============================================
name       shares_worlds   selection_backend base batch
========== =============== ============================================
mc         yes             plain i.i.d. shared batch (session-cachable)
lazy       yes             plain i.i.d. shared batch (session-cachable)
rss        no              per-stratum: level-1 stratified batch via
                           ``make_batch`` (proportional allocation)
adaptive   no              per-block: batch grown until the base
                           query's Wilson interval is tight
========== =============== ============================================

``shares_worlds`` stays about *reliability queries* (may a session
answer them from one cached fixed-Z batch); the factory-built selection
batches of ``rss`` / ``adaptive`` are query-conditioned, so those two
still run reliability queries individually.

Third-party estimators can join via :func:`register_estimator`; every
registered name immediately works in the CLI (``--estimator``), the
facade, ``Session`` workloads, and the HTTP serving layer
(:mod:`repro.serve`).  See ``docs/architecture.md`` ("Estimator
registry") for how these capabilities drive execution planning end to
end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .adaptive import AdaptiveMonteCarlo
from .estimator import ReliabilityEstimator
from .lazy import LazyPropagationEstimator
from .monte_carlo import MonteCarloEstimator
from .rss import RecursiveStratifiedSampler

EstimatorFactory = Callable[..., ReliabilityEstimator]
"""``factory(samples, seed, vectorized, **kwargs) -> estimator``."""


@dataclass(frozen=True)
class EstimatorSpec:
    """Registry entry: factory plus execution-planning capabilities."""

    name: str
    factory: EstimatorFactory
    description: str = ""
    supports_vectorized: bool = True
    shares_worlds: bool = False
    fixed_samples: bool = True


_REGISTRY: Dict[str, EstimatorSpec] = {}
_ALIASES: Dict[str, str] = {}


def register_estimator(
    name: str,
    factory: EstimatorFactory,
    *,
    description: str = "",
    supports_vectorized: bool = True,
    shares_worlds: bool = False,
    fixed_samples: bool = True,
    aliases: Tuple[str, ...] = (),
    overwrite: bool = False,
) -> EstimatorSpec:
    """Register ``factory`` under ``name`` (and optional aliases).

    Parameters
    ----------
    name : str
        Registry key (case-insensitive).
    factory : callable
        ``factory(samples, seed, **kwargs) -> ReliabilityEstimator``.
    description : str, optional
        One-line human-readable summary.
    supports_vectorized, shares_worlds, fixed_samples : bool, optional
        Execution-planning capabilities (see the module docstring).
    aliases : tuple of str, optional
        Additional lookup keys for the same entry.
    overwrite : bool, optional
        Replace an existing entry instead of raising.

    Returns
    -------
    EstimatorSpec
        The stored registry entry.

    Examples
    --------
    A registered name immediately works everywhere estimators are
    named — CLI, sessions, and the serving layer:

    >>> from repro.reliability import (
    ...     MonteCarloEstimator, make_estimator, register_estimator)
    >>> _ = register_estimator(
    ...     "tutorial-mc",
    ...     lambda samples, seed, **kw: MonteCarloEstimator(
    ...         samples, seed=seed, **kw),
    ...     description="plain MC registered from a tutorial",
    ...     shares_worlds=True,
    ...     overwrite=True,
    ... )
    >>> make_estimator("tutorial-mc", 500, seed=3).num_samples
    500
    """
    key = name.lower()
    alias_keys = [alias.lower() for alias in aliases]
    if not overwrite:
        # Validate every key before inserting any, so a conflicting
        # alias cannot leave a half-registered entry behind.
        if key in _REGISTRY or key in _ALIASES:
            raise ValueError(f"estimator {name!r} is already registered")
        for alias, alias_key in zip(aliases, alias_keys, strict=True):
            if alias_key in _REGISTRY or alias_key in _ALIASES:
                raise ValueError(
                    f"estimator alias {alias!r} is already taken"
                )
    spec = EstimatorSpec(
        name=key,
        factory=factory,
        description=description,
        supports_vectorized=supports_vectorized,
        shares_worlds=shares_worlds,
        fixed_samples=fixed_samples,
    )
    _REGISTRY[key] = spec
    for alias_key in alias_keys:
        _ALIASES[alias_key] = key
    return spec


def estimator_spec(name: str) -> EstimatorSpec:
    """Look up a spec by name or alias; raises ``ValueError`` if absent."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; registered: {estimator_names()}"
        ) from None


def estimator_names() -> Tuple[str, ...]:
    """Canonical names of all registered estimators."""
    return tuple(sorted(_REGISTRY))


def make_estimator(
    name: str,
    samples: int = 1000,
    seed: int = 0,
    vectorized: Optional[bool] = None,
    **kwargs,
) -> ReliabilityEstimator:
    """Build any registered estimator by name.

    Parameters
    ----------
    name : str
        Registry name or alias (``"mc"``, ``"rss"``, ``"lazy"``,
        ``"adaptive"``, or anything registered).
    samples : int, optional
        Sample budget ``Z`` (the cap for adaptive estimators).
    seed : int, optional
        Sampler seed; equal seeds give deterministic estimates per
        backend path.
    vectorized : bool or None, optional
        Forwarded when the entry supports the engine path; ``None``
        keeps the estimator's default, ``False`` forces the scalar BFS.
    **kwargs
        Passed to the registered factory verbatim.

    Returns
    -------
    ReliabilityEstimator
        A fresh estimator instance.

    Examples
    --------
    >>> from repro.graph import UncertainGraph
    >>> from repro.reliability import make_estimator
    >>> g = UncertainGraph.from_edges([(0, 1, 0.7)])
    >>> est = make_estimator("mc", 2000, seed=5)
    >>> round(est.reliability(g, 0, 1), 1)
    0.7
    """
    spec = estimator_spec(name)
    if spec.supports_vectorized:
        kwargs.setdefault("vectorized", vectorized)
    elif vectorized:
        raise ValueError(f"estimator {name!r} has no vectorized path")
    return spec.factory(samples, seed, **kwargs)


# ----------------------------------------------------------------------
# built-in entries
# ----------------------------------------------------------------------
register_estimator(
    "mc",
    lambda samples, seed, **kw: MonteCarloEstimator(samples, seed=seed, **kw),
    description="plain Monte Carlo over Z possible worlds",
    shares_worlds=True,
    aliases=("monte-carlo", "montecarlo"),
)
register_estimator(
    "rss",
    lambda samples, seed, **kw: RecursiveStratifiedSampler(
        num_samples=samples, seed=seed, **kw
    ),
    description="recursive stratified sampling (Li et al., TKDE'16)",
    shares_worlds=False,  # strata condition edge states per query
    aliases=("stratified",),
)
register_estimator(
    "lazy",
    lambda samples, seed, **kw: LazyPropagationEstimator(
        samples, seed=seed, **kw
    ),
    description="lazy-propagation MC (geometric coin skipping)",
    shares_worlds=True,  # same i.i.d.-worlds contract as plain MC
    aliases=("lazy-propagation",),
)
def _make_adaptive(samples, seed, **kw):
    # The registry treats ``samples`` as the hard cap; keep the default
    # block size valid for small caps.
    kw.setdefault("block_size", min(200, samples))
    return AdaptiveMonteCarlo(max_samples=samples, seed=seed, **kw)


register_estimator(
    "adaptive",
    _make_adaptive,
    description="adaptive-precision MC with Wilson confidence stopping",
    shares_worlds=False,
    fixed_samples=False,  # Z grows until the interval is tight
    aliases=("adaptive-mc",),
)
