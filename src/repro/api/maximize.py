"""Execution of :class:`MaximizeQuery` — the paper's full pipeline.

This is the estimate → eliminate → select pipeline that used to live
inside :meth:`ReliabilityMaximizer.maximize`, lifted to the session
layer so a workload of maximize queries shares one compiled plan and one
paired-evaluation world batch.  The legacy facade now delegates here.
"""

from __future__ import annotations

import time
import warnings
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..graph import UncertainGraph, fixed_new_edge_probability
from ..reliability import ReliabilityEstimator, make_estimator
from ..baselines import (
    all_missing_edges,
    betweenness_centrality_selection,
    degree_centrality_selection,
    eigenvalue_selection,
    exact_solution,
    hill_climbing,
    individual_top_k,
    random_selection,
)
from ..baselines.common import NewEdgeProbability, ProbEdge
from ..core.search_space import (
    CandidateSpace,
    eliminate_search_space,
    select_top_l_paths,
)
from ..core.selection import batch_selection, individual_path_selection
from ..core.mrp_improvement import improve_most_reliable_path
from ..core.facade import METHODS
from .queries import MaximizeQuery
from .results import MaximizeResult, Provenance, Timings

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .session import Session


def resolve_selection_estimator(
    session: "Session", query: MaximizeQuery
) -> Tuple[ReliabilityEstimator, str]:
    """The sampler driving selection loops for this query.

    Priority: an estimator instance on the query, a registry name on the
    query, then the session's default — rebuilt through the registry
    whenever the query overrides ``samples`` or ``seed``, so those
    fields are honored even without an explicit estimator name.
    Returns ``(estimator, name)``.
    """
    seed = query.seed if query.seed is not None else session.seed
    if isinstance(query.estimator, ReliabilityEstimator):
        return query.estimator, getattr(
            type(query.estimator), "name", type(query.estimator).__name__
        )
    name = (
        query.estimator if isinstance(query.estimator, str)
        else session.estimator_name
    )
    overrides = query.samples is not None or query.seed is not None
    if name is not None and (isinstance(query.estimator, str) or overrides):
        samples = (
            query.samples if query.samples is not None
            else session.selection_samples
        )
        return make_estimator(name, samples, seed=seed), name
    if overrides:
        # The session's default sampler is a custom instance the
        # registry cannot rebuild with the requested configuration.
        warnings.warn(
            "MaximizeQuery.samples/seed ignored: the session estimator "
            "is a custom instance; pass estimator=<registry name> to "
            "override its configuration",
            stacklevel=3,
        )
    return session.estimator, getattr(
        type(session.estimator), "name", type(session.estimator).__name__
    )


def execute_maximize(
    session: "Session",
    query: MaximizeQuery,
    base_value: Optional[float] = None,
) -> MaximizeResult:
    """Run one maximize query against the session's shared state.

    ``base_value`` lets :meth:`repro.api.Session.run` inject the paired
    base evaluation it already computed for a whole batch of maximize
    queries in one shared-world pass; it must equal what
    ``session.evaluate(query.source, query.target)`` would return.
    """
    from ..core.facade import Solution  # local: facade shims import us

    graph = session.graph
    method = query.method
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    estimator, estimator_name = resolve_selection_estimator(session, query)
    prob_model = query.new_edge_prob or fixed_new_edge_probability(query.zeta)
    seed = query.seed if query.seed is not None else session.seed

    start = time.perf_counter()
    space = _candidate_space(session, query, estimator, prob_model)
    elimination_seconds = space.elapsed_seconds

    select_start = time.perf_counter()
    edges = dispatch_selection(
        graph,
        query.source,
        query.target,
        query.k,
        method,
        prob_model,
        space,
        query.eliminate,
        estimator=estimator,
        l=session.l,
        seed=seed,
        session=session,
    )
    selection_seconds = time.perf_counter() - select_start

    # Paired evaluation: base and final reliability in the same worlds
    # for every method — batched through the session's evaluation cache.
    base = (
        base_value
        if base_value is not None
        else session.evaluate(query.source, query.target)
    )
    new = (
        session.evaluate(query.source, query.target, edges) if edges else base
    )
    solution = Solution(
        method=method,
        edges=edges,
        base_reliability=base,
        new_reliability=new,
        elimination_seconds=elimination_seconds,
        selection_seconds=selection_seconds,
        num_candidates=len(space.edges),
    )
    provenance = Provenance(
        estimator=estimator_name,
        samples=getattr(
            estimator, "num_samples",
            getattr(estimator, "max_samples", session.selection_samples),
        ),
        seed=seed,
        backend=(
            "engine" if getattr(estimator, "vectorized", False) else "scalar"
        ),
        timings=Timings(
            solve_seconds=time.perf_counter() - start,
        ),
    )
    return MaximizeResult(query=query, solution=solution, provenance=provenance)


def _candidate_space(
    session: "Session",
    query: MaximizeQuery,
    estimator: ReliabilityEstimator,
    prob_model: NewEdgeProbability,
) -> CandidateSpace:
    """Algorithm 4 elimination (or the no-elimination candidate set)."""
    if query.candidate_space is not None:
        return query.candidate_space
    graph = session.graph
    if query.eliminate:
        # Centrality/eigen baselines also benefit from elimination
        # (Table 5): restrict them to the relevant candidate set.
        return eliminate_search_space(
            graph,
            query.source,
            query.target,
            r=session.r,
            new_edge_prob=prob_model,
            estimator=estimator,
            h=session.h,
        )
    start = time.perf_counter()
    pairs = all_missing_edges(graph, h=session.h)
    return CandidateSpace(
        source_side=[],
        target_side=[],
        edges=[(u, v, prob_model(u, v)) for u, v in pairs],
        elapsed_seconds=time.perf_counter() - start,
    )


def dispatch_selection(
    graph: UncertainGraph,
    source: int,
    target: int,
    k: int,
    method: str,
    prob_model: NewEdgeProbability,
    space: CandidateSpace,
    eliminated: bool,
    estimator: ReliabilityEstimator,
    l: int,
    seed: int,
    session: Optional["Session"] = None,
) -> List[ProbEdge]:
    """Route one selection method to its implementation.

    With a ``session``, the candidate-enumerating methods (``hc``,
    ``topk``) receive the session's batched gain kernel when the
    estimator admits shared worlds — selection then reuses the cached
    compiled plan and ``(Z, seed)`` world batch instead of paying a
    fresh compile + coin-flip pass per query.
    """
    pairs = space.edge_pairs()
    kernel = (
        session.selection_kernel(estimator)
        if session is not None and method in ("hc", "topk")
        else None
    )
    if method in ("be", "ip"):
        path_set = select_top_l_paths(graph, source, target, l, space.edges)
        if method == "be":
            return batch_selection(graph, source, target, k, path_set, estimator)
        return individual_path_selection(
            graph, source, target, k, path_set, estimator
        )
    if method == "mrp":
        return improve_most_reliable_path(
            graph, source, target, k, prob_model, candidates=pairs
        ).edges
    if method == "hc":
        return hill_climbing(
            graph, source, target, k, pairs, prob_model, estimator,
            kernel=kernel,
        )
    if method == "topk":
        return individual_top_k(
            graph, source, target, k, pairs, prob_model, estimator,
            kernel=kernel,
        )
    if method == "degree":
        return degree_centrality_selection(
            graph, k, prob_model, candidates=pairs if eliminated else None
        )
    if method == "betweenness":
        return betweenness_centrality_selection(
            graph, k, prob_model,
            candidates=pairs if eliminated else None,
            seed=seed,
        )
    if method == "eigen":
        return eigenvalue_selection(
            graph, k, prob_model,
            candidates=pairs if eliminated else None,
            seed=seed,
        )
    if method == "random":
        return random_selection(pairs, k, prob_model, seed=seed)
    if method == "exact":
        return exact_solution(
            graph, source, target, k, pairs, prob_model, estimator
        )
    raise AssertionError(f"unhandled method {method!r}")  # pragma: no cover
