"""Declarative query/session API — the public entry point.

Describe *what* you want as query objects, collect them in a
:class:`Workload`, and let a :class:`Session` execute the whole batch
against one compiled plan and shared sampled worlds:

>>> from repro.api import Session, Workload, ReliabilityQuery
>>> from repro.graph import UncertainGraph
>>> g = UncertainGraph.from_edges([(0, 1, 0.8), (1, 2, 0.5), (0, 2, 0.3)])
>>> session = Session(g, seed=7)
>>> workload = Workload(
...     ReliabilityQuery(0, target=t, samples=2000) for t in (1, 2)
... )
>>> [round(r.value, 1) for r in session.run(workload)]
[0.8, 0.6]

All queries in the workload were answered inside the *same* 2000 sampled
worlds: one CSR compilation, one coin-flip pass, one batch BFS per
distinct source.  Results carry provenance — estimator, Z, seed,
engine/scalar backend, shared-world flag, timings.

The legacy entry points (:class:`repro.core.facade.ReliabilityMaximizer`
and friends) remain as thin shims over this layer.
"""

from .delta import DeltaReport, GraphDelta
from .queries import MaximizeQuery, Query, ReliabilityQuery, Workload
from .results import (
    MaximizeResult,
    Provenance,
    ReliabilityResult,
    Timings,
    results_table,
)
from .session import Session
from .maximize import METHODS, dispatch_selection, execute_maximize

__all__ = [
    "DeltaReport",
    "GraphDelta",
    "MaximizeQuery",
    "Query",
    "ReliabilityQuery",
    "Workload",
    "MaximizeResult",
    "Provenance",
    "ReliabilityResult",
    "Timings",
    "results_table",
    "Session",
    "METHODS",
    "dispatch_selection",
    "execute_maximize",
]
