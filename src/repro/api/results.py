"""Structured results with provenance.

Every query answered by a :class:`~repro.api.session.Session` comes back
as a result object carrying not just the value but *how* it was
computed: estimator, sample count, seed, engine-vs-scalar backend,
whether the worlds were shared from the session cache, and the
compile/sample/solve timings.  The CLI and the experiments harness
render these directly instead of re-deriving the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from .queries import MaximizeQuery, Pair, ReliabilityQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.facade import Solution
    from ..experiments.harness import ResultTable


@dataclass
class Timings:
    """Wall-clock breakdown of one query's execution.

    ``compile_seconds`` and ``sample_seconds`` are 0.0 when the plan or
    world batch came from the session cache — the point of batching is
    that most queries in a workload pay nothing for either.
    """

    compile_seconds: float = 0.0
    sample_seconds: float = 0.0
    solve_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end wall clock: compile + sample + solve."""
        return self.compile_seconds + self.sample_seconds + self.solve_seconds


@dataclass
class Provenance:
    """How an estimate was produced.

    Attributes
    ----------
    estimator : str
        Registry name of the sampler that answered the query.
    samples : int
        Sample budget ``Z`` (the cap for adaptive estimators).
    seed : int
        The seed actually used (query override or session default).
    backend : str
        ``"engine"`` (vectorized batch kernel) or ``"scalar"``.
    shared_worlds : bool
        Whether the answer came out of a world batch shared with other
        queries (session cache hit, or a multi-member workload group —
        how coalesced serving shows up in responses).
    timings : Timings
        Compile/sample/solve wall-clock breakdown.
    world_source : str or None
        Which tier produced the world batch: ``"memory"`` (session
        cache), ``"store"`` (memory-mapped from a persistent
        :class:`repro.index.IndexStore`), ``"sampled"`` (fresh coin
        flips), or ``None`` when no batch was needed — scalar paths,
        and shared-world queries answered entirely from the persistent
        result cache.
    cache_hits, cache_misses : int or None
        Exact-match result-cache accounting for this query's pairs
        (``None`` when the session has no store attached).  A fully
        warm query shows ``cache_misses == 0`` and never touched
        worlds.

    Examples
    --------
    >>> Provenance(estimator="mc", samples=1000, seed=7,
    ...            backend="engine", shared_worlds=True).describe()
    'mc, Z=1000, seed=7, engine, shared worlds, 0.0 ms'
    >>> Provenance(estimator="mc", samples=1000, seed=7,
    ...            backend="engine", shared_worlds=True,
    ...            cache_hits=2, cache_misses=0).describe()
    'mc, Z=1000, seed=7, engine, shared worlds, cache 2/2, 0.0 ms'
    """

    estimator: str
    samples: int
    seed: int
    backend: str  # "engine" (vectorized) or "scalar"
    shared_worlds: bool = False
    timings: Timings = field(default_factory=Timings)
    world_source: "str | None" = None
    cache_hits: "int | None" = None
    cache_misses: "int | None" = None

    def describe(self) -> str:
        """One-line human-readable provenance summary."""
        shared = ", shared worlds" if self.shared_worlds else ""
        cache = ""
        if self.cache_hits is not None and self.cache_misses is not None:
            total = self.cache_hits + self.cache_misses
            cache = f", cache {self.cache_hits}/{total}"
        return (
            f"{self.estimator}, Z={self.samples}, seed={self.seed}, "
            f"{self.backend}{shared}{cache}, "
            f"{self.timings.total_seconds * 1000:.1f} ms"
        )


@dataclass
class ReliabilityResult:
    """Answer to one :class:`ReliabilityQuery`.

    Examples
    --------
    >>> from repro.graph import UncertainGraph
    >>> from repro.api import Session
    >>> g = UncertainGraph.from_edges([(0, 1, 0.8), (0, 2, 0.2)])
    >>> result = Session(g, seed=3).reliability(0, targets=(1, 2),
    ...                                         samples=2000)
    >>> sorted(result.by_target)
    [1, 2]
    >>> [round(v, 1) for _, v in result.pairs]
    [0.8, 0.2]
    """

    query: ReliabilityQuery
    values: Tuple[float, ...]  # aligned with query.targets
    provenance: Provenance

    @property
    def value(self) -> float:
        """The estimate of a single-target query."""
        if len(self.values) != 1:
            raise ValueError(
                "multi-target query: use .values / .by_target instead"
            )
        return self.values[0]

    @property
    def by_target(self) -> Dict[int, float]:
        """Target node id -> estimated reliability."""
        return dict(zip(self.query.targets, self.values, strict=True))

    @property
    def pairs(self) -> List[Tuple[Pair, float]]:
        """((source, target), value) in query order."""
        return list(zip(self.query.pairs, self.values, strict=True))


@dataclass
class MaximizeResult:
    """Answer to one :class:`MaximizeQuery`.

    Wraps the legacy :class:`~repro.core.facade.Solution` (kept as the
    stable value object the selection machinery produces) and adds the
    session-level provenance of the sampler that drove selection.
    """

    query: MaximizeQuery
    solution: "Solution"
    provenance: Provenance

    # Convenience pass-throughs so renderers only need the result.
    @property
    def edges(self) -> List[Tuple[int, int, float]]:
        """The selected ``(u, v, p)`` edges (at most ``query.k``)."""
        return self.solution.edges

    @property
    def gain(self) -> float:
        """Reliability gain: ``new_reliability - base_reliability``."""
        return self.solution.gain

    @property
    def base_reliability(self) -> float:
        """``R(s, t)`` before any edges were added (paired sampler)."""
        return self.solution.base_reliability

    @property
    def new_reliability(self) -> float:
        """``R(s, t)`` with the selected edges added (same worlds)."""
        return self.solution.new_reliability


def results_table(
    results: Sequence[ReliabilityResult],
    title: str = "Reliability workload",
) -> "ResultTable":
    """Render reliability results as an experiments-harness table.

    Returns a :class:`repro.experiments.ResultTable` with one row per
    (source, target) pair, including provenance columns — what the CLI
    and notebook workflows print.
    """
    from ..experiments.harness import ResultTable  # local: avoid cycle

    table = ResultTable(
        title,
        ["s", "t", "R(s,t)", "estimator", "Z", "backend", "shared"],
    )
    for result in results:
        prov = result.provenance
        for (s, t), value in result.pairs:
            table.add_row(
                s, t, value, prov.estimator, prov.samples,
                prov.backend, "yes" if prov.shared_worlds else "no",
            )
    return table
